//! Compilation of GraphIR user-defined functions to a register bytecode.
//!
//! Backends do not interpret GraphIR statement trees on the hot path.
//! Instead, every UDF is compiled once into a compact register program
//! ([`UdfProgram`]) executed by [`crate::eval`]. The evaluator takes a
//! pluggable [`crate::eval::MemoryModel`], which is how the GPU/Swarm/
//! HammerBlade simulators observe every memory access with its address.

use std::collections::HashMap;
use std::fmt;

use ugc_graphir::ir::{Expr, ExprKind, Function, LValue, Program, Stmt, StmtKind};
use ugc_graphir::keys;
use ugc_graphir::types::{BinOp, Intrinsic, ReduceOp, UnOp};

use crate::properties::PropId;
use crate::value::Value;

/// Register index within a UDF frame.
pub type Reg = u16;

/// Identifier of a compiled UDF within a [`UdfSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UdfId(pub usize);

/// One bytecode instruction. Field names follow the assembly mnemonics in
/// each variant's doc line (`dst`/`src` registers, `prop` arrays, `idx`
/// element indices).
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum Instr {
    /// `dst = v`
    Const { dst: Reg, v: Value },
    /// `dst = src`
    Mov { dst: Reg, src: Reg },
    /// `dst = a op b`
    Bin { op: BinOp, dst: Reg, a: Reg, b: Reg },
    /// `dst = op a`
    Un { op: UnOp, dst: Reg, a: Reg },
    /// `dst = |a|` as float
    Abs { dst: Reg, a: Reg },
    /// `dst = prop[idx]`
    LoadProp { dst: Reg, prop: PropId, idx: Reg },
    /// `prop[idx] = val`
    StoreProp { prop: PropId, idx: Reg, val: Reg },
    /// `dst = CAS(prop[idx], expected, new)`
    Cas {
        dst: Reg,
        prop: PropId,
        idx: Reg,
        expected: Reg,
        new: Reg,
        atomic: bool,
    },
    /// `prop[idx] op= val`, optionally recording whether it changed
    ReduceProp {
        prop: PropId,
        idx: Reg,
        op: ReduceOp,
        val: Reg,
        atomic: bool,
        changed: Option<Reg>,
    },
    /// `dst = global[id]`
    LoadGlobal { dst: Reg, id: usize },
    /// `global[id] = val`
    StoreGlobal { id: usize, val: Reg },
    /// `global[id] op= val`
    ReduceGlobal {
        id: usize,
        op: ReduceOp,
        val: Reg,
        changed: Option<Reg>,
    },
    /// Append `vertex` to the operator's output frontier.
    Enqueue { vertex: Reg },
    /// Fold a new priority into `queue`'s tracked property and reschedule.
    UpdatePrio {
        queue: usize,
        vertex: Reg,
        op: ReduceOp,
        val: Reg,
        atomic: bool,
    },
    /// `dst = out_degree(v)`
    OutDegree { dst: Reg, v: Reg },
    /// `dst = in_degree(v)`
    InDegree { dst: Reg, v: Reg },
    /// `dst = weight of the edge being applied`
    EdgeWeight { dst: Reg },
    /// `dst = |N_out(a) ∩ N_out(b)|` — sorted-neighbor merge intersection.
    Intersect { dst: Reg, a: Reg, b: Reg },
    /// Call another UDF.
    Call {
        dst: Option<Reg>,
        udf: UdfId,
        args: Vec<Reg>,
    },
    /// Unconditional jump to instruction index.
    Jump { target: usize },
    /// Jump when `cond` is false.
    JumpIfNot { cond: Reg, target: usize },
    /// Return from the UDF.
    Ret,
}

/// A compiled UDF.
#[derive(Debug, Clone, PartialEq)]
pub struct UdfProgram {
    /// Source function name.
    pub name: String,
    /// Total registers used.
    pub num_regs: usize,
    /// Arguments fill registers `0..num_params`.
    pub num_params: usize,
    /// Register holding the named return value, if any.
    pub ret_reg: Option<Reg>,
    /// Instruction stream.
    pub instrs: Vec<Instr>,
}

/// All compiled UDFs of a program plus queue bindings.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UdfSet {
    /// Compiled programs, indexable by [`UdfId`].
    pub udfs: Vec<UdfProgram>,
    /// Tracked property of each priority queue (index = queue id).
    pub queue_props: Vec<PropId>,
}

impl UdfSet {
    /// Resolves a UDF by source name.
    pub fn id_of(&self, name: &str) -> Option<UdfId> {
        self.udfs.iter().position(|u| u.name == name).map(UdfId)
    }

    /// The compiled program for `id`.
    pub fn get(&self, id: UdfId) -> &UdfProgram {
        &self.udfs[id.0]
    }
}

/// Name-to-id bindings shared by compilation and execution.
#[derive(Debug, Clone, Default)]
pub struct Binding {
    /// Property name → id.
    pub props: HashMap<String, PropId>,
    /// Global name → id.
    pub globals: HashMap<String, usize>,
    /// Queue name → id.
    pub queues: HashMap<String, usize>,
}

/// Bytecode compilation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Description, naming the function and construct.
    pub message: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bytecode compile error: {}", self.message)
    }
}

impl std::error::Error for CompileError {}

/// Compiles every function of `prog` into bytecode.
///
/// # Errors
///
/// Returns [`CompileError`] if a function uses a construct not valid inside
/// UDFs (e.g. a nested `EdgeSetIterator`) or references an unbound name.
pub fn compile_udfs(prog: &Program, binding: &Binding) -> Result<UdfSet, CompileError> {
    let ids: HashMap<&str, UdfId> = prog
        .functions
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.as_str(), UdfId(i)))
        .collect();
    let mut udfs = Vec::with_capacity(prog.functions.len());
    for f in &prog.functions {
        udfs.push(compile_function(f, binding, &ids, prog)?);
    }
    let mut queue_props = Vec::new();
    for q in &prog.queues {
        let pid = *binding
            .props
            .get(&q.tracked_property)
            .ok_or_else(|| CompileError {
                message: format!(
                    "queue `{}` tracks unbound property `{}`",
                    q.name, q.tracked_property
                ),
            })?;
        queue_props.push(pid);
    }
    Ok(UdfSet { udfs, queue_props })
}

struct FnCompiler<'a> {
    binding: &'a Binding,
    ids: &'a HashMap<&'a str, UdfId>,
    prog: &'a Program,
    fname: &'a str,
    locals: HashMap<String, Reg>,
    next_reg: usize,
    instrs: Vec<Instr>,
    /// Patch lists of `Jump` indices for enclosing loops (`break`).
    break_patches: Vec<Vec<usize>>,
    ret_reg: Option<Reg>,
}

fn compile_function(
    f: &Function,
    binding: &Binding,
    ids: &HashMap<&str, UdfId>,
    prog: &Program,
) -> Result<UdfProgram, CompileError> {
    let mut c = FnCompiler {
        binding,
        ids,
        prog,
        fname: &f.name,
        locals: HashMap::new(),
        next_reg: 0,
        instrs: Vec::new(),
        break_patches: Vec::new(),
        ret_reg: None,
    };
    for p in &f.params {
        let r = c.alloc();
        c.locals.insert(p.name.clone(), r);
    }
    let num_params = f.params.len();
    let ret_reg = if let Some(r) = &f.ret {
        let reg = c.alloc();
        c.locals.insert(r.name.clone(), reg);
        // Initialize the named return to the type's zero value.
        c.instrs.push(Instr::Const {
            dst: reg,
            v: Value::zero_of(r.ty),
        });
        Some(reg)
    } else {
        None
    };
    c.ret_reg = ret_reg;
    c.block(&f.body)?;
    c.instrs.push(Instr::Ret);
    Ok(UdfProgram {
        name: f.name.clone(),
        num_regs: c.next_reg,
        num_params,
        ret_reg,
        instrs: c.instrs,
    })
}

impl FnCompiler<'_> {
    fn alloc(&mut self) -> Reg {
        let r = self.next_reg;
        self.next_reg += 1;
        r as Reg
    }

    fn err<T>(&self, msg: impl fmt::Display) -> Result<T, CompileError> {
        Err(CompileError {
            message: format!("in function `{}`: {msg}", self.fname),
        })
    }

    fn prop_id(&self, name: &str) -> Result<PropId, CompileError> {
        self.binding
            .props
            .get(name)
            .copied()
            .ok_or_else(|| CompileError {
                message: format!("in function `{}`: unbound property `{name}`", self.fname),
            })
    }

    fn block(&mut self, stmts: &[Stmt]) -> Result<(), CompileError> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match &s.kind {
            StmtKind::VarDecl { name, init, ty } => {
                let r = self.alloc();
                self.locals.insert(name.clone(), r);
                match init {
                    Some(e) => {
                        let v = self.expr(e)?;
                        if v != r {
                            self.instrs.push(Instr::Mov { dst: r, src: v });
                        }
                    }
                    None => self.instrs.push(Instr::Const {
                        dst: r,
                        v: Value::zero_of(*ty),
                    }),
                }
                Ok(())
            }
            StmtKind::Assign { target, value } => {
                let v = self.expr(value)?;
                match target {
                    LValue::Var(name) => {
                        if let Some(&r) = self.locals.get(name) {
                            if v != r {
                                self.instrs.push(Instr::Mov { dst: r, src: v });
                            }
                            Ok(())
                        } else if let Some(&g) = self.binding.globals.get(name) {
                            self.instrs.push(Instr::StoreGlobal { id: g, val: v });
                            Ok(())
                        } else {
                            self.err(format!("assignment to unbound variable `{name}`"))
                        }
                    }
                    LValue::Prop { prop, index } => {
                        let p = self.prop_id(prop)?;
                        let i = self.expr(index)?;
                        self.instrs.push(Instr::StoreProp {
                            prop: p,
                            idx: i,
                            val: v,
                        });
                        Ok(())
                    }
                }
            }
            StmtKind::Reduce {
                target,
                op,
                value,
                tracking,
            } => {
                let v = self.expr(value)?;
                let atomic = s.meta.flag(keys::IS_ATOMIC);
                let changed = match tracking {
                    Some(t) => Some(match self.locals.get(t) {
                        Some(&r) => r,
                        None => {
                            let r = self.alloc();
                            self.locals.insert(t.clone(), r);
                            r
                        }
                    }),
                    None => None,
                };
                match target {
                    LValue::Prop { prop, index } => {
                        let p = self.prop_id(prop)?;
                        let i = self.expr(index)?;
                        self.instrs.push(Instr::ReduceProp {
                            prop: p,
                            idx: i,
                            op: *op,
                            val: v,
                            atomic,
                            changed,
                        });
                        Ok(())
                    }
                    LValue::Var(name) => {
                        if let Some(&r) = self.locals.get(name) {
                            // Local reduction: plain read-modify-write.
                            let tmp = self.alloc();
                            let binop = match op {
                                ReduceOp::Sum => BinOp::Add,
                                ReduceOp::Or => BinOp::Or,
                                ReduceOp::Min | ReduceOp::Max => {
                                    // r = min(r, v) via compare + conditional move
                                    let cond = self.alloc();
                                    let cmp = if *op == ReduceOp::Min {
                                        BinOp::Lt
                                    } else {
                                        BinOp::Gt
                                    };
                                    self.instrs.push(Instr::Bin {
                                        op: cmp,
                                        dst: cond,
                                        a: v,
                                        b: r,
                                    });
                                    let skip = self.instrs.len();
                                    self.instrs.push(Instr::JumpIfNot { cond, target: 0 });
                                    self.instrs.push(Instr::Mov { dst: r, src: v });
                                    let after = self.instrs.len();
                                    self.patch_jump(skip, after);
                                    if let Some(ch) = changed {
                                        self.instrs.push(Instr::Mov { dst: ch, src: cond });
                                    }
                                    return Ok(());
                                }
                            };
                            self.instrs.push(Instr::Bin {
                                op: binop,
                                dst: tmp,
                                a: r,
                                b: v,
                            });
                            self.instrs.push(Instr::Mov { dst: r, src: tmp });
                            if let Some(ch) = changed {
                                self.instrs.push(Instr::Const {
                                    dst: ch,
                                    v: Value::Bool(true),
                                });
                            }
                            Ok(())
                        } else if let Some(&g) = self.binding.globals.get(name) {
                            self.instrs.push(Instr::ReduceGlobal {
                                id: g,
                                op: *op,
                                val: v,
                                changed,
                            });
                            Ok(())
                        } else {
                            self.err(format!("reduction on unbound variable `{name}`"))
                        }
                    }
                }
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self.expr(cond)?;
                let jump_else = self.instrs.len();
                self.instrs.push(Instr::JumpIfNot { cond: c, target: 0 });
                self.block(then_body)?;
                if else_body.is_empty() {
                    let after = self.instrs.len();
                    self.patch_jump(jump_else, after);
                } else {
                    let jump_end = self.instrs.len();
                    self.instrs.push(Instr::Jump { target: 0 });
                    let else_start = self.instrs.len();
                    self.patch_jump(jump_else, else_start);
                    self.block(else_body)?;
                    let after = self.instrs.len();
                    self.patch_jump(jump_end, after);
                }
                Ok(())
            }
            StmtKind::While { cond, body } => {
                let head = self.instrs.len();
                let c = self.expr(cond)?;
                let exit_jump = self.instrs.len();
                self.instrs.push(Instr::JumpIfNot { cond: c, target: 0 });
                self.break_patches.push(Vec::new());
                self.block(body)?;
                self.instrs.push(Instr::Jump { target: head });
                let after = self.instrs.len();
                self.patch_jump(exit_jump, after);
                for b in self.break_patches.pop().expect("pushed above") {
                    self.patch_jump(b, after);
                }
                Ok(())
            }
            StmtKind::For {
                var,
                start,
                end,
                body,
            } => {
                let i = self.alloc();
                self.locals.insert(var.clone(), i);
                let sv = self.expr(start)?;
                if sv != i {
                    self.instrs.push(Instr::Mov { dst: i, src: sv });
                }
                let ev = self.expr(end)?;
                let head = self.instrs.len();
                let cond = self.alloc();
                self.instrs.push(Instr::Bin {
                    op: BinOp::Lt,
                    dst: cond,
                    a: i,
                    b: ev,
                });
                let exit_jump = self.instrs.len();
                self.instrs.push(Instr::JumpIfNot { cond, target: 0 });
                self.break_patches.push(Vec::new());
                self.block(body)?;
                let one = self.alloc();
                self.instrs.push(Instr::Const {
                    dst: one,
                    v: Value::Int(1),
                });
                self.instrs.push(Instr::Bin {
                    op: BinOp::Add,
                    dst: i,
                    a: i,
                    b: one,
                });
                self.instrs.push(Instr::Jump { target: head });
                let after = self.instrs.len();
                self.patch_jump(exit_jump, after);
                for b in self.break_patches.pop().expect("pushed above") {
                    self.patch_jump(b, after);
                }
                Ok(())
            }
            StmtKind::Break => {
                let j = self.instrs.len();
                self.instrs.push(Instr::Jump { target: 0 });
                match self.break_patches.last_mut() {
                    Some(p) => {
                        p.push(j);
                        Ok(())
                    }
                    None => self.err("`break` outside a loop"),
                }
            }
            StmtKind::ExprStmt(e) => {
                self.expr(e)?;
                Ok(())
            }
            StmtKind::Return(e) => {
                let v = self.expr(e)?;
                if let Some(r) = self.ret_reg {
                    if v != r {
                        self.instrs.push(Instr::Mov { dst: r, src: v });
                    }
                }
                self.instrs.push(Instr::Ret);
                Ok(())
            }
            StmtKind::EnqueueVertex { set, vertex } => {
                if set.is_some() {
                    return self.err("EnqueueVertex with an explicit set inside a UDF");
                }
                let v = self.expr(vertex)?;
                self.instrs.push(Instr::Enqueue { vertex: v });
                Ok(())
            }
            StmtKind::UpdatePriority {
                queue,
                vertex,
                op,
                value,
            } => {
                let q = *self.binding.queues.get(queue).ok_or_else(|| CompileError {
                    message: format!("in function `{}`: unbound queue `{queue}`", self.fname),
                })?;
                let v = self.expr(vertex)?;
                let val = self.expr(value)?;
                let atomic = s.meta.flag(keys::IS_ATOMIC);
                self.instrs.push(Instr::UpdatePrio {
                    queue: q,
                    vertex: v,
                    op: *op,
                    val,
                    atomic,
                });
                Ok(())
            }
            other => self.err(format!("statement not valid inside a UDF: {other:?}")),
        }
    }

    fn patch_jump(&mut self, at: usize, target: usize) {
        match &mut self.instrs[at] {
            Instr::Jump { target: t } | Instr::JumpIfNot { target: t, .. } => *t = target,
            _ => unreachable!("patching a non-jump"),
        }
    }

    fn expr(&mut self, e: &Expr) -> Result<Reg, CompileError> {
        match &e.kind {
            ExprKind::Int(v) => {
                let r = self.alloc();
                self.instrs.push(Instr::Const {
                    dst: r,
                    v: Value::Int(*v),
                });
                Ok(r)
            }
            ExprKind::Float(v) => {
                let r = self.alloc();
                self.instrs.push(Instr::Const {
                    dst: r,
                    v: Value::Float(*v),
                });
                Ok(r)
            }
            ExprKind::Bool(v) => {
                let r = self.alloc();
                self.instrs.push(Instr::Const {
                    dst: r,
                    v: Value::Bool(*v),
                });
                Ok(r)
            }
            ExprKind::Var(name) => {
                if let Some(&r) = self.locals.get(name) {
                    Ok(r)
                } else if let Some(&g) = self.binding.globals.get(name) {
                    let r = self.alloc();
                    self.instrs.push(Instr::LoadGlobal { dst: r, id: g });
                    Ok(r)
                } else {
                    self.err(format!("unbound variable `{name}`"))
                }
            }
            ExprKind::PropRead { prop, index } => {
                let p = self.prop_id(prop)?;
                let i = self.expr(index)?;
                let r = self.alloc();
                self.instrs.push(Instr::LoadProp {
                    dst: r,
                    prop: p,
                    idx: i,
                });
                Ok(r)
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let a = self.expr(lhs)?;
                let b = self.expr(rhs)?;
                let r = self.alloc();
                self.instrs.push(Instr::Bin {
                    op: *op,
                    dst: r,
                    a,
                    b,
                });
                Ok(r)
            }
            ExprKind::Unary { op, operand } => {
                let a = self.expr(operand)?;
                let r = self.alloc();
                self.instrs.push(Instr::Un { op: *op, dst: r, a });
                Ok(r)
            }
            ExprKind::Intrinsic { kind, args } => match kind {
                Intrinsic::OutDegree | Intrinsic::InDegree => {
                    let v = self.expr(args.last().ok_or_else(|| CompileError {
                        message: format!(
                            "in function `{}`: degree intrinsic needs a vertex",
                            self.fname
                        ),
                    })?)?;
                    let r = self.alloc();
                    self.instrs.push(if *kind == Intrinsic::OutDegree {
                        Instr::OutDegree { dst: r, v }
                    } else {
                        Instr::InDegree { dst: r, v }
                    });
                    Ok(r)
                }
                Intrinsic::EdgeWeight => {
                    let r = self.alloc();
                    self.instrs.push(Instr::EdgeWeight { dst: r });
                    Ok(r)
                }
                Intrinsic::IntersectCount => {
                    if args.len() < 2 {
                        return self.err("intersect_count needs two vertices".to_string());
                    }
                    // Like degree intrinsics, the graph operand (if any) is
                    // implicit; compile the last two args as the vertices.
                    let a = self.expr(&args[args.len() - 2])?;
                    let b = self.expr(&args[args.len() - 1])?;
                    let r = self.alloc();
                    self.instrs.push(Instr::Intersect { dst: r, a, b });
                    Ok(r)
                }
                Intrinsic::Abs => {
                    let a = self.expr(&args[0])?;
                    let r = self.alloc();
                    self.instrs.push(Instr::Abs { dst: r, a });
                    Ok(r)
                }
                other => self.err(format!("intrinsic {other} not valid inside a UDF")),
            },
            ExprKind::Call { func, args } => {
                let udf = *self.ids.get(func.as_str()).ok_or_else(|| CompileError {
                    message: format!("in function `{}`: call to unknown UDF `{func}`", self.fname),
                })?;
                let mut regs = Vec::with_capacity(args.len());
                for a in args {
                    regs.push(self.expr(a)?);
                }
                let has_ret = self.prog.functions[udf.0].ret.is_some();
                let dst = if has_ret { Some(self.alloc()) } else { None };
                self.instrs.push(Instr::Call {
                    dst,
                    udf,
                    args: regs,
                });
                Ok(dst.unwrap_or(0))
            }
            ExprKind::CompareAndSwap {
                prop,
                index,
                expected,
                new,
            } => {
                let p = self.prop_id(prop)?;
                let i = self.expr(index)?;
                let ex = self.expr(expected)?;
                let nw = self.expr(new)?;
                let r = self.alloc();
                self.instrs.push(Instr::Cas {
                    dst: r,
                    prop: p,
                    idx: i,
                    expected: ex,
                    new: nw,
                    atomic: e.meta.flag(keys::IS_ATOMIC),
                });
                Ok(r)
            }
        }
    }
}

/// Builds a [`Binding`] straight from a program's declarations, assigning
/// ids in declaration order (matching how backends construct their
/// [`crate::PropertyStorage`] / [`crate::GlobalTable`]).
pub fn binding_of(prog: &Program) -> Binding {
    let mut b = Binding::default();
    for (i, p) in prog.properties.iter().enumerate() {
        b.props.insert(p.name.clone(), PropId(i));
    }
    for (i, g) in prog.globals.iter().enumerate() {
        b.globals.insert(g.name.clone(), i);
    }
    for (i, q) in prog.queues.iter().enumerate() {
        b.queues.insert(q.name.clone(), i);
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugc_graphir::ir::{Param, Program};
    use ugc_graphir::types::Type;

    fn bfs_like_program() -> Program {
        let mut p = Program::new();
        p.add_property("parent", Type::Vertex, Expr::int(-1));
        let mut f = Function::new(
            "updateEdge",
            vec![
                Param::new("src", Type::Vertex),
                Param::new("dst", Type::Vertex),
            ],
            None,
        );
        let mut cas = Expr::cas("parent", Expr::var("dst"), Expr::int(-1), Expr::var("src"));
        cas.meta.set(keys::IS_ATOMIC, true);
        f.body.push(Stmt::new(StmtKind::VarDecl {
            name: "enqueue".into(),
            ty: Type::Bool,
            init: Some(cas),
        }));
        f.body.push(Stmt::new(StmtKind::If {
            cond: Expr::var("enqueue"),
            then_body: vec![Stmt::new(StmtKind::EnqueueVertex {
                set: None,
                vertex: Expr::var("dst"),
            })],
            else_body: vec![],
        }));
        p.add_function(f);
        p
    }

    #[test]
    fn compiles_bfs_update_edge() {
        let p = bfs_like_program();
        let b = binding_of(&p);
        let set = compile_udfs(&p, &b).unwrap();
        let u = set.get(set.id_of("updateEdge").unwrap());
        assert_eq!(u.num_params, 2);
        assert!(u
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::Cas { atomic: true, .. })));
        assert!(u.instrs.iter().any(|i| matches!(i, Instr::Enqueue { .. })));
        assert!(matches!(u.instrs.last(), Some(Instr::Ret)));
    }

    #[test]
    fn named_return_is_initialized() {
        let mut p = Program::new();
        p.add_property("parent", Type::Vertex, Expr::int(-1));
        let mut f = Function::new(
            "toFilter",
            vec![Param::new("v", Type::Vertex)],
            Some(Param::new("output", Type::Bool)),
        );
        f.body.push(Stmt::new(StmtKind::Assign {
            target: LValue::Var("output".into()),
            value: Expr::bin(
                BinOp::Eq,
                Expr::prop("parent", Expr::var("v")),
                Expr::int(-1),
            ),
        }));
        p.add_function(f);
        let set = compile_udfs(&p, &binding_of(&p)).unwrap();
        let u = set.get(UdfId(0));
        assert_eq!(u.ret_reg, Some(1));
        assert!(matches!(u.instrs[0], Instr::Const { dst: 1, .. }));
    }

    #[test]
    fn unknown_property_errors() {
        let mut p = Program::new();
        let mut f = Function::new("f", vec![Param::new("v", Type::Vertex)], None);
        f.body.push(Stmt::new(StmtKind::ExprStmt(Expr::prop(
            "ghost",
            Expr::var("v"),
        ))));
        p.add_function(f);
        let err = compile_udfs(&p, &binding_of(&p)).unwrap_err();
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn break_outside_loop_errors() {
        let mut p = Program::new();
        let mut f = Function::new("f", vec![], None);
        f.body.push(Stmt::new(StmtKind::Break));
        p.add_function(f);
        assert!(compile_udfs(&p, &binding_of(&p)).is_err());
    }

    #[test]
    fn while_loop_compiles_with_back_edge() {
        let mut p = Program::new();
        let mut f = Function::new("f", vec![Param::new("n", Type::Int)], None);
        f.body.push(Stmt::new(StmtKind::While {
            cond: Expr::bin(BinOp::Gt, Expr::var("n"), Expr::int(0)),
            body: vec![Stmt::new(StmtKind::Assign {
                target: LValue::Var("n".into()),
                value: Expr::bin(BinOp::Sub, Expr::var("n"), Expr::int(1)),
            })],
        }));
        p.add_function(f);
        let set = compile_udfs(&p, &binding_of(&p)).unwrap();
        let u = set.get(UdfId(0));
        assert!(u
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::Jump { target } if *target == 0)));
    }

    #[test]
    fn queue_binding_resolved() {
        let mut p = bfs_like_program();
        p.add_property("dist", Type::Int, Expr::int(i32::MAX as i64));
        p.add_queue("pq", "dist", Expr::int(0));
        let b = binding_of(&p);
        let set = compile_udfs(&p, &b).unwrap();
        assert_eq!(set.queue_props, vec![PropId(1)]);
    }
}
