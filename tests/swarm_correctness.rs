//! Swarm GraphVM correctness: every algorithm × the Swarm scheduling space
//! on the speculative-task simulator, validated against references.

use ugc_algorithms::Algorithm;
use ugc_backend_swarm::{Frontiers, SwarmGraphVm, SwarmSchedule, TaskGranularity};
use ugc_integration::{compile, externs_for, test_graphs, validate};
use ugc_schedule::ScheduleRef;

fn run_and_validate(algo: Algorithm, sched: Option<SwarmSchedule>) {
    for (gname, graph) in test_graphs() {
        let prog = compile(algo, sched.clone().map(ScheduleRef::simple));
        let vm = SwarmGraphVm::default();
        let run = vm
            .execute(prog, &graph, &externs_for(algo, 0))
            .unwrap_or_else(|e| panic!("{} on {gname}: {e}", algo.name()));
        assert!(run.cycles > 0, "{} on {gname}: zero cycles", algo.name());
        validate(algo, &graph, 0, &|p| run.property_ints(p), &|p| {
            run.property_floats(p)
        });
    }
}

#[test]
fn all_algorithms_default_schedule() {
    for algo in Algorithm::ALL {
        run_and_validate(algo, None);
    }
}

#[test]
fn bfs_vertexset_to_tasks() {
    run_and_validate(
        Algorithm::Bfs,
        Some(SwarmSchedule::new().with_frontiers(Frontiers::VertexsetToTasks)),
    );
}

#[test]
fn bfs_fine_grained_hints() {
    run_and_validate(
        Algorithm::Bfs,
        Some(
            SwarmSchedule::new()
                .with_frontiers(Frontiers::VertexsetToTasks)
                .with_task_granularity(TaskGranularity::FineGrained),
        ),
    );
}

#[test]
fn cc_fine_grained_buffered() {
    run_and_validate(
        Algorithm::Cc,
        Some(SwarmSchedule::new().with_task_granularity(TaskGranularity::FineGrained)),
    );
}

#[test]
fn sssp_tasks_with_delta() {
    for delta in [1, 8] {
        run_and_validate(
            Algorithm::Sssp,
            Some(
                SwarmSchedule::new()
                    .with_frontiers(Frontiers::VertexsetToTasks)
                    .with_delta(delta),
            ),
        );
    }
}

#[test]
fn pagerank_shuffled_edges() {
    run_and_validate(
        Algorithm::PageRank,
        Some(SwarmSchedule::new().with_shuffle_edges(true)),
    );
}

#[test]
fn bc_buffered_only() {
    // BC's loop has extra statements, so it must stay on the generic path.
    run_and_validate(
        Algorithm::Bc,
        Some(SwarmSchedule::new().with_frontiers(Frontiers::VertexsetToTasks)),
    );
}

#[test]
fn task_conversion_beats_barriers_on_road_graphs() {
    let graph = ugc_graph::generators::road_grid(24, 24, 0.05, 9, true);
    let externs = externs_for(Algorithm::Bfs, 0);
    let base = SwarmGraphVm::default()
        .execute(
            compile(
                Algorithm::Bfs,
                Some(ScheduleRef::simple(SwarmSchedule::new())),
            ),
            &graph,
            &externs,
        )
        .unwrap();
    let tasks = SwarmGraphVm::default()
        .execute(
            compile(
                Algorithm::Bfs,
                Some(ScheduleRef::simple(
                    SwarmSchedule::new().with_frontiers(Frontiers::VertexsetToTasks),
                )),
            ),
            &graph,
            &externs,
        )
        .unwrap();
    assert!(
        tasks.cycles < base.cycles,
        "vertex-set→tasks {} must beat buffered {} on a road graph",
        tasks.cycles,
        base.cycles
    );
}

#[test]
fn scaling_with_cores() {
    let graph = ugc_graph::generators::road_grid(20, 20, 0.05, 4, true);
    let externs = externs_for(Algorithm::Bfs, 0);
    // The paper's optimized Swarm schedule: tasks + fine-grained hints.
    let sched = || {
        ScheduleRef::simple(
            SwarmSchedule::new()
                .with_frontiers(Frontiers::VertexsetToTasks)
                .with_task_granularity(TaskGranularity::FineGrained),
        )
    };
    let c1 = SwarmGraphVm::with_cores(1)
        .execute(compile(Algorithm::Bfs, Some(sched())), &graph, &externs)
        .unwrap()
        .cycles;
    let c16 = SwarmGraphVm::with_cores(16)
        .execute(compile(Algorithm::Bfs, Some(sched())), &graph, &externs)
        .unwrap()
        .cycles;
    assert!(
        c16 * 4 < c1,
        "16 cores ({c16}) should be at least 4x faster than 1 core ({c1})"
    );
}

#[test]
fn stats_have_commits_and_idle() {
    let graph = ugc_graph::generators::two_communities();
    let run = SwarmGraphVm::default()
        .execute(
            compile(Algorithm::Bfs, None),
            &graph,
            &externs_for(Algorithm::Bfs, 0),
        )
        .unwrap();
    assert!(run.stats.commits > 0);
    assert!(run.stats.total_core_cycles() > 0);
}
