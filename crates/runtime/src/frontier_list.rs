//! The list-of-frontiers used by betweenness centrality (`FrontierList` in
//! Table II).

use crate::vertexset::VertexSet;

/// An append-only list of frontiers recorded across rounds, walked
/// backwards by BC's dependency-accumulation pass.
///
/// # Example
///
/// ```
/// use ugc_runtime::{FrontierList, VertexSet};
///
/// let mut l = FrontierList::new();
/// l.append(VertexSet::from_members(4, vec![0]));
/// l.append(VertexSet::from_members(4, vec![1, 2]));
/// assert_eq!(l.len(), 2);
/// assert_eq!(l.pop_back().unwrap().len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FrontierList {
    sets: Vec<VertexSet>,
}

impl FrontierList {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a frontier.
    pub fn append(&mut self, set: VertexSet) {
        self.sets.push(set);
    }

    /// Number of recorded frontiers.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether no frontiers are recorded.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Removes and returns the most recently appended frontier.
    pub fn pop_back(&mut self) -> Option<VertexSet> {
        self.sets.pop()
    }

    /// A copy of the frontier at `index` (0 = first appended).
    pub fn retrieve(&self, index: usize) -> Option<VertexSet> {
        self.sets.get(index).cloned()
    }
}

impl Extend<VertexSet> for FrontierList {
    fn extend<T: IntoIterator<Item = VertexSet>>(&mut self, iter: T) {
        self.sets.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_retrieve_pop() {
        let mut l = FrontierList::new();
        assert!(l.is_empty());
        l.append(VertexSet::from_members(4, vec![0]));
        l.append(VertexSet::from_members(4, vec![1]));
        assert_eq!(l.retrieve(0).unwrap().iter(), vec![0]);
        assert_eq!(l.retrieve(2), None);
        assert_eq!(l.pop_back().unwrap().iter(), vec![1]);
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn extend_from_iterator() {
        let mut l = FrontierList::new();
        l.extend(vec![VertexSet::all(2), VertexSet::all(2)]);
        assert_eq!(l.len(), 2);
    }
}
