//! Persistent work-stealing thread pool for the runtime hot path.
//!
//! The CPU GraphVM calls a parallel-for once per edge/vertex operator per
//! traversal iteration. Spawning and joining OS threads at every call (the
//! previous [`std::thread::scope`] implementation, kept as
//! [`crate::parallel::spawn_parallel_for_with_local`] for comparison)
//! charges a full thread-creation round-trip to every operator — hundreds
//! of them for a single BFS run. GraphIt's CPU runtime amortizes that cost
//! with a persistent OpenMP worker team; this module is the equivalent for
//! the UGC reproduction, std-only per the hermetic-workspace policy.
//!
//! # Design
//!
//! * **Lazily initialized, process-wide pool.** Workers are spawned on
//!   first use and grow on demand up to the largest thread count any call
//!   site requests (call sites may deliberately oversubscribe, e.g. tests
//!   on small machines), hard-capped at [`MAX_WORKERS`]. Workers park on a
//!   condvar between jobs.
//! * **One job at a time.** A submission mutex serializes concurrent
//!   top-level `parallel_for` calls; GraphVM execution is single-threaded
//!   between operators, so jobs never queue in practice. A nested
//!   `parallel_for` issued from inside a running task executes inline
//!   (serially) on the calling worker — no deadlock, no re-entry.
//! * **Per-worker chunk queues with stealing.** Each participant owns a
//!   contiguous block of the iteration space and hands out chunk-sized
//!   pieces from its front (the size chosen by the [`chunk_feedback`]
//!   controller, with the caller's `chunk_hint` as a floor); an idle
//!   participant steals the upper half of the largest remaining victim
//!   block. Totals at or under [`SERIAL_DISPATCH_THRESHOLD`] never
//!   dispatch at all — the handoff round-trip costs more than the loop. Degree-skewed ranges can
//!   also be pre-split by the caller ([`parallel_for_chunks_with_local`])
//!   so each worker starts with an explicit queue of uneven chunks and
//!   steals whole chunks from the back of other queues.
//! * **Scoped borrows.** The caller blocks until every participant has
//!   finished, so closures may borrow from the caller's stack exactly like
//!   the scoped-thread API this replaces. Internally the closure reference
//!   is lifetime-erased while the job is in flight; safety rests on the
//!   caller never returning before the last participant decrements the
//!   job's `remaining` count.
//! * **Panic propagation without poisoning.** A panicking task is caught
//!   on the worker, the first payload is stored, every other participant
//!   drains remaining work, and the caller re-raises the original payload
//!   via [`std::panic::resume_unwind`]. Workers survive; the next
//!   `parallel_for` call runs normally.
//! * **Telemetry.** Cheap relaxed counters ([`telemetry`]) expose jobs,
//!   serial fallbacks, chunks executed, steals, parks, and spawned worker
//!   threads, so benches can print dispatch behaviour.
//!
//! `UGC_THREADS` overrides the machine's available parallelism for
//! [`default_threads`] *and* caps the pool globally: `UGC_THREADS=1` forces
//! fully deterministic serial execution through every backend.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};

use ugc_telemetry::{Counter, Histogram, Span};

/// Hard cap on persistent worker threads (a runaway-request backstop far
/// above any real machine this targets).
pub const MAX_WORKERS: usize = 128;

/// Below this many items a `parallel_for` call never dispatches to the
/// pool: the parking/handoff round-trip costs ~100ns while a tiny loop
/// finishes in ~10ns (BENCH_3 `pool_dispatch/n=64`). Mirrors the CPU
/// schedule's default serial threshold
/// (`ugc_backend_cpu::CpuSchedule::serial_threshold`), applied here so
/// every call site is protected, not just the executor's.
pub const SERIAL_DISPATCH_THRESHOLD: usize = 512;

/// Number of worker threads used by default: `UGC_THREADS` when set to a
/// positive integer, otherwise the machine's available parallelism.
pub fn default_threads() -> usize {
    if let Some(n) = env_threads() {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The `UGC_THREADS` override, when set and valid.
fn env_threads() -> Option<usize> {
    std::env::var("UGC_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// A snapshot of the pool's counters since process start.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolTelemetry {
    /// Persistent worker threads spawned so far.
    pub workers_spawned: u64,
    /// Jobs dispatched to the pool (parallel executions).
    pub jobs: u64,
    /// Calls that ran inline without dispatch (small totals, one thread,
    /// nested calls, `UGC_THREADS=1`).
    pub serial_runs: u64,
    /// Chunks of iteration space executed by participants.
    pub chunks: u64,
    /// Chunks (or block halves) taken from another participant's queue.
    pub steals: u64,
    /// Times a worker parked on the idle condvar.
    pub parks: u64,
}

/// The pool's counters, registered in the [`ugc_telemetry`] registry
/// under the `pool.` prefix (the old private `AtomicU64`s re-homed).
/// `pool.chunk_size` is a histogram of executed chunk lengths — its
/// spread is the chunk-imbalance signal `repro --profile` reports.
struct Counters {
    workers_spawned: Counter,
    jobs: Counter,
    serial_runs: Counter,
    chunks: Counter,
    steals: Counter,
    parks: Counter,
    chunk_size: Histogram,
    /// Wall time per dispatched job (`pool.job.ns` / `pool.job.calls`).
    /// `pool.job.calls` must stay equal to `pool.jobs` even when a job
    /// body panics — see the explicit guard drop in [`run_job`].
    job_span: Span,
}

fn counters() -> &'static Counters {
    static COUNTERS: OnceLock<Counters> = OnceLock::new();
    COUNTERS.get_or_init(|| Counters {
        workers_spawned: Counter::new("pool.workers_spawned"),
        jobs: Counter::new("pool.jobs"),
        serial_runs: Counter::new("pool.serial_runs"),
        chunks: Counter::new("pool.chunks"),
        steals: Counter::new("pool.steals"),
        parks: Counter::new("pool.parks"),
        chunk_size: Histogram::new("pool.chunk_size"),
        job_span: Span::new("pool.job"),
    })
}

/// Marks one executed chunk: the count plus its length for the
/// imbalance histogram.
#[inline]
fn count_chunk(range: &Range<usize>) {
    let c = counters();
    c.chunks.incr();
    c.chunk_size.record(range.len() as u64);
}

/// Reads the pool's telemetry counters (relaxed; for reporting only).
/// All zeros when telemetry is disabled via `UGC_TELEMETRY=0`.
pub fn telemetry() -> PoolTelemetry {
    let c = counters();
    PoolTelemetry {
        workers_spawned: c.workers_spawned.get(),
        jobs: c.jobs.get(),
        serial_runs: c.serial_runs.get(),
        chunks: c.chunks.get(),
        steals: c.steals.get(),
        parks: c.parks.get(),
    }
}

thread_local! {
    /// Set while this thread is executing a pool job body (as a worker or
    /// as the submitting caller); nested parallel calls run inline.
    static IN_POOL_JOB: Cell<bool> = const { Cell::new(false) };
}

fn in_pool_job() -> bool {
    IN_POOL_JOB.with(|f| f.get())
}

/// Runs `f` with the in-job flag set, restoring it afterwards (the caller
/// participates in its own job, and workers serve many jobs).
fn with_job_flag<R>(f: impl FnOnce() -> R) -> R {
    IN_POOL_JOB.with(|flag| {
        let prev = flag.replace(true);
        let r = f();
        flag.set(prev);
        r
    })
}

/// The participant body of one job, called exactly once per participant
/// with ids `1..participants` on workers (`0` runs on the caller).
type JobBody<'a> = &'a (dyn Fn(usize) + Sync);

/// A lifetime-erased in-flight job. The pointee lives on the submitting
/// caller's stack; it is only dereferenced while `remaining > 0`, and the
/// caller blocks until `remaining == 0` before returning.
struct ErasedJob {
    body: *const (dyn Fn(usize) + Sync),
    participants: usize,
    remaining: usize,
}

// SAFETY: the raw pointer is only sent to pool workers that finish using
// it before the owning caller unblocks (see `remaining` accounting).
unsafe impl Send for ErasedJob {}

#[derive(Default)]
struct PoolState {
    /// Bumped once per dispatched job; workers wait for a change.
    epoch: u64,
    job: Option<ErasedJob>,
    /// First panic payload raised by any participant of the current job.
    panic: Option<Box<dyn Any + Send>>,
    /// Worker threads spawned so far.
    spawned: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    /// Workers park here waiting for a new epoch.
    work_cv: Condvar,
    /// The caller parks here waiting for `remaining == 0`.
    done_cv: Condvar,
    /// Serializes top-level job submissions.
    submit: Mutex<()>,
}

/// Locks ignoring poison: the pool never panics while holding its locks,
/// but a poisoned submit mutex (caller panicked with the guard alive during
/// unwind) must not disable the pool forever.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState::default()),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
        submit: Mutex::new(()),
    })
}

fn worker_loop(pool: &'static Pool, index: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let mut guard = lock(&pool.state);
        let job = loop {
            if guard.epoch != seen_epoch {
                seen_epoch = guard.epoch;
                if let Some(job) = &guard.job {
                    // Participant 0 is the caller; workers take 1.. .
                    if index + 1 < job.participants {
                        break job.body;
                    }
                }
            }
            counters().parks.incr();
            guard = pool.work_cv.wait(guard).unwrap_or_else(|e| e.into_inner());
        };
        drop(guard);
        // SAFETY: the job stays alive until `remaining` hits zero, which
        // cannot happen before this participant's decrement below.
        let body: JobBody<'_> = unsafe { &*job };
        let result = catch_unwind(AssertUnwindSafe(|| with_job_flag(|| body(index + 1))));
        let mut guard = lock(&pool.state);
        if let Err(payload) = result {
            guard.panic.get_or_insert(payload);
        }
        if let Some(job) = &mut guard.job {
            job.remaining -= 1;
            if job.remaining == 0 {
                pool.done_cv.notify_all();
            }
        }
    }
}

/// Dispatches `body` to `participants` threads (the caller plus
/// `participants - 1` pool workers), blocking until all have returned and
/// re-raising the first panic payload, if any. `participants >= 2`.
fn run_job(participants: usize, body: JobBody<'_>) {
    let job_guard = counters().job_span.start();
    let pool = pool();
    let _submit = lock(&pool.submit);
    {
        let mut st = lock(&pool.state);
        // Grow the worker set to the requested width.
        while st.spawned < participants - 1 {
            let index = st.spawned;
            std::thread::Builder::new()
                .name(format!("ugc-pool-{index}"))
                .spawn(move || worker_loop(pool, index))
                .expect("spawning pool worker");
            st.spawned += 1;
            counters().workers_spawned.incr();
        }
        st.epoch += 1;
        st.panic = None;
        // SAFETY: lifetime erasure; the job is cleared below before this
        // frame (and thus the pointee) can go away.
        let body: *const (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(body) };
        st.job = Some(ErasedJob {
            body,
            participants,
            remaining: participants,
        });
        counters().jobs.incr();
        pool.work_cv.notify_all();
    }
    // The caller is participant 0.
    let result = catch_unwind(AssertUnwindSafe(|| with_job_flag(|| body(0))));
    let mut st = lock(&pool.state);
    if let Err(payload) = result {
        st.panic.get_or_insert(payload);
    }
    st.job.as_mut().expect("job in flight").remaining -= 1;
    while st.job.as_ref().expect("job in flight").remaining > 0 {
        st = pool.done_cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
    st.job = None;
    let panic = st.panic.take();
    drop(st);
    drop(_submit);
    // Close the job span before re-raising: a panicking job must not
    // leave `pool.job.calls` unbalanced against `pool.jobs`.
    drop(job_guard);
    if let Some(payload) = panic {
        resume_unwind(payload);
    }
}

/// How many participants a call may use: the request, clamped by the
/// global `UGC_THREADS` cap and the worker backstop.
fn clamp_participants(requested: usize) -> usize {
    let capped = match env_threads() {
        Some(cap) => requested.min(cap),
        None => requested,
    };
    capped.clamp(1, MAX_WORKERS + 1)
}

/// Feedback-driven chunk sizing.
///
/// The fixed `chunk_hint` policy is what lost `pool_dispatch/n=1M` to
/// naive spawn in BENCH_3: 16384 hint-sized handoffs swamped the
/// scheduling win. The pool now treats the caller's hint as a floor and
/// picks the executed chunk per size class (log2 of `total`) from
/// feedback: the first job in a class runs a probe policy (enough chunks
/// per participant for stealing, few enough to amortize handoff), and
/// every dispatched job reports its throughput back, hill-climbing the
/// class's chunk between jobs. The executed sizes land in the
/// `pool.chunk_size` telemetry histogram (via [`count_chunk`]), so the
/// distribution `repro --profile` reports *is* the controller's output;
/// the controller itself stays live even under `UGC_TELEMETRY=0`.
mod chunk_feedback {
    use super::lock;
    use std::sync::{Mutex, OnceLock};

    /// Aim for at least this many chunks per participant so idle workers
    /// always find something to steal.
    const MIN_CHUNKS_PER_WORKER: usize = 4;
    /// Probe policy: start with this many chunks per participant.
    const PROBE_CHUNKS_PER_WORKER: usize = 8;
    /// One state per log2(total) size class.
    const CLASSES: usize = (usize::BITS + 1) as usize;

    #[derive(Clone, Copy)]
    struct Class {
        /// Chunk to try on the next job (0 = no feedback yet; probe).
        next: usize,
        /// Best observed ns/item and the chunk that achieved it.
        best_ns_per_item: f64,
        best_chunk: usize,
        /// Current exploration direction (grow = fewer handoffs).
        grow: bool,
    }

    const FRESH: Class = Class {
        next: 0,
        best_ns_per_item: 0.0,
        best_chunk: 0,
        grow: true,
    };

    fn classes() -> &'static Mutex<[Class; CLASSES]> {
        static STATE: OnceLock<Mutex<[Class; CLASSES]>> = OnceLock::new();
        STATE.get_or_init(|| Mutex::new([FRESH; CLASSES]))
    }

    fn class_of(total: usize) -> usize {
        (usize::BITS - total.leading_zeros()) as usize
    }

    /// Clamps a candidate chunk into the legal band for this job: never
    /// below the caller's hint (their granularity floor), never so large
    /// that participants fall under [`MIN_CHUNKS_PER_WORKER`] chunks.
    fn clamp(candidate: usize, total: usize, t: usize, hint: usize) -> usize {
        let max_chunk = (total / (t * MIN_CHUNKS_PER_WORKER)).max(1);
        candidate.clamp(1, max_chunk).max(hint)
    }

    /// The chunk size a dispatched job over `total` items on `t`
    /// participants should use.
    pub(super) fn effective(total: usize, t: usize, hint: usize) -> usize {
        let tuned = lock(classes())[class_of(total)].next;
        let candidate = if tuned != 0 {
            tuned
        } else {
            // First-pass probe for this size class.
            hint.max(total / (t * PROBE_CHUNKS_PER_WORKER).max(1))
        };
        clamp(candidate, total, t, hint)
    }

    /// Reports a finished job's wall time back to its size class.
    pub(super) fn observe(total: usize, chunk: usize, elapsed_ns: u64) {
        if total == 0 {
            return;
        }
        let ns_per_item = elapsed_ns as f64 / total as f64;
        let c = &mut lock(classes())[class_of(total)];
        if c.best_chunk == 0 || ns_per_item < c.best_ns_per_item {
            // New best: remember it and keep exploring the same way.
            c.best_ns_per_item = ns_per_item;
            c.best_chunk = chunk;
            c.next = if c.grow {
                chunk.saturating_mul(2)
            } else {
                chunk / 2
            };
        } else {
            // Worse than the incumbent: flip direction, restart from the
            // best, and decay the incumbent so a stale lucky sample
            // cannot pin the class forever.
            c.grow = !c.grow;
            c.next = if c.grow {
                c.best_chunk.saturating_mul(2)
            } else {
                c.best_chunk / 2
            };
            c.best_ns_per_item *= 1.05;
        }
        c.next = c.next.max(1);
    }
}

/// One participant's share of a block-partitioned iteration space.
/// `next..end` is still unclaimed; owners take `chunk`-sized pieces from
/// the front, thieves take the upper half from the back.
struct Block {
    next: usize,
    end: usize,
}

struct BlockQueues {
    blocks: Vec<Mutex<Block>>,
    chunk: usize,
}

impl BlockQueues {
    /// Splits `0..total` into `t` contiguous blocks.
    fn new(total: usize, t: usize, chunk: usize) -> Self {
        let blocks = (0..t)
            .map(|i| {
                Mutex::new(Block {
                    next: i * total / t,
                    end: (i + 1) * total / t,
                })
            })
            .collect();
        BlockQueues { blocks, chunk }
    }

    /// Takes the next chunk from participant `i`'s own block.
    fn pop_own(&self, i: usize) -> Option<Range<usize>> {
        let mut b = lock(&self.blocks[i]);
        if b.next >= b.end {
            return None;
        }
        let start = b.next;
        b.next = (start + self.chunk).min(b.end);
        Some(start..b.next)
    }

    /// Steals the upper half of the fullest victim block into `i`'s own
    /// (empty) block, then pops from it. Small remainders are taken whole.
    fn steal(&self, i: usize) -> Option<Range<usize>> {
        let n = self.blocks.len();
        loop {
            // Pick the victim with the most remaining work (sampling the
            // queues without locks would need atomics; a quick lock per
            // victim is fine at chunk granularity).
            let mut best: Option<(usize, usize)> = None; // (victim, remaining)
            for d in 1..n {
                let v = (i + d) % n;
                let b = lock(&self.blocks[v]);
                let remaining = b.end.saturating_sub(b.next);
                if remaining > 0 && best.map_or(true, |(_, r)| remaining > r) {
                    best = Some((v, remaining));
                }
            }
            let (victim, _) = best?;
            let mut vb = lock(&self.blocks[victim]);
            let remaining = vb.end.saturating_sub(vb.next);
            if remaining == 0 {
                continue; // lost the race; rescan
            }
            let (lo, hi) = if remaining > 2 * self.chunk {
                let mid = vb.next + remaining / 2;
                let hi = vb.end;
                vb.end = mid;
                (mid, hi)
            } else {
                let lo = vb.next;
                vb.next = vb.end;
                (lo, vb.end)
            };
            drop(vb);
            counters().steals.incr();
            let mut own = lock(&self.blocks[i]);
            debug_assert!(own.next >= own.end, "stealing with own work left");
            own.next = (lo + self.chunk).min(hi);
            own.end = hi;
            return Some(lo..(lo + self.chunk).min(hi));
        }
    }

    fn work<F: Fn(usize, Range<usize>)>(&self, tid: usize, f: &F) {
        loop {
            let Some(range) = self.pop_own(tid).or_else(|| self.steal(tid)) else {
                return;
            };
            count_chunk(&range);
            f(tid, range);
        }
    }
}

/// Runs `f(thread_id, start..end)` over chunks of `0..total` on up to
/// `num_threads` participants of the persistent pool, with work stealing.
///
/// `f` must be safe to call concurrently. `chunk_hint` is the caller's
/// granularity floor; the executed chunk size is chosen by the
/// [`chunk_feedback`] controller. Runs inline (serially) when one
/// participant suffices, when `total` is at or under
/// [`SERIAL_DISPATCH_THRESHOLD`], when called from inside a pool task,
/// or under `UGC_THREADS=1`.
///
/// # Example
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use ugc_runtime::pool::parallel_for;
///
/// let sum = AtomicUsize::new(0);
/// parallel_for(4, 1000, 64, |_tid, range| {
///     sum.fetch_add(range.len(), Ordering::Relaxed);
/// });
/// assert_eq!(sum.load(Ordering::Relaxed), 1000);
/// ```
pub fn parallel_for<F>(num_threads: usize, total: usize, chunk_hint: usize, f: F)
where
    F: Fn(usize, Range<usize>) + Sync,
{
    if total == 0 {
        return;
    }
    let hint = chunk_hint.max(1);
    let t = clamp_participants(num_threads.max(1).min(total.div_ceil(hint)));
    if t <= 1 || total <= SERIAL_DISPATCH_THRESHOLD || in_pool_job() {
        counters().serial_runs.incr();
        f(0, 0..total);
        return;
    }
    let chunk = chunk_feedback::effective(total, t, hint);
    let queues = BlockQueues::new(total, t, chunk);
    let t0 = std::time::Instant::now();
    run_job(t, &|tid| queues.work(tid, &f));
    chunk_feedback::observe(total, chunk, t0.elapsed().as_nanos() as u64);
}

/// Runs `f(thread_id, start..end, &mut local)` like [`parallel_for`] but
/// gives each participant a `T::default()` accumulator, returning all
/// accumulators (useful for building output frontiers without contention).
///
/// Accumulator order is unspecified beyond being one per participant that
/// ran; with one participant (including `UGC_THREADS=1`) the result is a
/// single deterministic accumulator.
pub fn parallel_for_with_local<T, F>(
    num_threads: usize,
    total: usize,
    chunk_hint: usize,
    f: F,
) -> Vec<T>
where
    T: Default + Send,
    F: Fn(usize, Range<usize>, &mut T) + Sync,
{
    if total == 0 {
        return Vec::new();
    }
    let hint = chunk_hint.max(1);
    let t = clamp_participants(num_threads.max(1).min(total.div_ceil(hint)));
    if t <= 1 || total <= SERIAL_DISPATCH_THRESHOLD || in_pool_job() {
        counters().serial_runs.incr();
        let mut local = T::default();
        f(0, 0..total, &mut local);
        return vec![local];
    }
    let chunk = chunk_feedback::effective(total, t, hint);
    let queues = BlockQueues::new(total, t, chunk);
    let results: Mutex<Vec<T>> = Mutex::new(Vec::with_capacity(t));
    let t0 = std::time::Instant::now();
    run_job(t, &|tid| {
        let mut local = T::default();
        loop {
            let Some(range) = queues.pop_own(tid).or_else(|| queues.steal(tid)) else {
                break;
            };
            count_chunk(&range);
            f(tid, range, &mut local);
        }
        lock(&results).push(local);
    });
    chunk_feedback::observe(total, chunk, t0.elapsed().as_nanos() as u64);
    results.into_inner().unwrap_or_else(|e| e.into_inner())
}

/// Like [`parallel_for_with_local`], but over caller-provided chunks
/// (e.g. degree-balanced member ranges): the chunks are pre-seeded into
/// per-participant queues in contiguous blocks, and idle participants
/// steal whole chunks from the back of other queues.
pub fn parallel_for_chunks_with_local<T, F>(
    num_threads: usize,
    chunks: Vec<Range<usize>>,
    f: F,
) -> Vec<T>
where
    T: Default + Send,
    F: Fn(usize, Range<usize>, &mut T) + Sync,
{
    if chunks.is_empty() {
        return Vec::new();
    }
    let t = clamp_participants(num_threads.max(1).min(chunks.len()));
    if t <= 1 || in_pool_job() {
        counters().serial_runs.incr();
        let mut local = T::default();
        for c in chunks {
            f(0, c, &mut local);
        }
        return vec![local];
    }
    // Seed queue `i` with the i-th contiguous block of chunks, preserving
    // the caller's (typically locality-friendly) order.
    let n = chunks.len();
    let mut queues: Vec<Mutex<VecDeque<Range<usize>>>> = Vec::with_capacity(t);
    let mut iter = chunks.into_iter();
    for i in 0..t {
        let count = (i + 1) * n / t - i * n / t;
        queues.push(Mutex::new(iter.by_ref().take(count).collect()));
    }
    let queues = &queues;
    let results: Mutex<Vec<T>> = Mutex::new(Vec::with_capacity(t));
    run_job(t, &|tid| {
        let mut local = T::default();
        loop {
            let own = lock(&queues[tid]).pop_front();
            let next = own.or_else(|| {
                (1..t).find_map(|d| {
                    let c = lock(&queues[(tid + d) % t]).pop_back();
                    if c.is_some() {
                        counters().steals.incr();
                    }
                    c
                })
            });
            let Some(range) = next else { break };
            count_chunk(&range);
            f(tid, range, &mut local);
        }
        lock(&results).push(local);
    });
    results.into_inner().unwrap_or_else(|e| e.into_inner())
}

/// Covariant-free wrapper making a raw slice pointer shareable across
/// participants; soundness comes from handing out disjoint subslices.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Method (rather than field) access, so closures capture the whole
    /// `Sync` wrapper instead of the raw pointer field (edition-2021
    /// closures capture disjoint fields).
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Mutates `items` in parallel: each participant receives disjoint
/// `&mut [T]` windows of roughly `chunk_hint` elements (with stealing),
/// along with the window's starting index within `items`.
pub fn parallel_for_each_mut<T, F>(num_threads: usize, items: &mut [T], chunk_hint: usize, f: F)
where
    T: Send,
    F: Fn(usize, usize, &mut [T]) + Sync,
{
    let len = items.len();
    let base = SendPtr(items.as_mut_ptr());
    parallel_for(num_threads, len, chunk_hint, move |tid, range| {
        // SAFETY: chunk ranges partition `0..len` disjointly, so each
        // subslice is exclusively owned by one participant at a time.
        let slice =
            unsafe { std::slice::from_raw_parts_mut(base.get().add(range.start), range.len()) };
        f(tid, range.start, slice);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn covers_every_index_exactly_once_under_stealing() {
        // Skewed per-element cost provokes stealing between blocks.
        let hits: Vec<AtomicU64> = (0..5000).map(|_| AtomicU64::new(0)).collect();
        parallel_for(8, 5000, 7, |_tid, range| {
            for i in range {
                if i < 100 {
                    std::thread::sleep(std::time::Duration::from_micros(20));
                }
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn chunk_queues_cover_every_chunk_exactly_once() {
        let chunks: Vec<Range<usize>> = (0..97).map(|i| i * 10..(i + 1) * 10).collect();
        let locals =
            parallel_for_chunks_with_local::<Vec<usize>, _>(8, chunks, |_tid, range, local| {
                local.extend(range)
            });
        let mut all: Vec<usize> = locals.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..970).collect::<Vec<_>>());
    }

    #[test]
    fn nested_parallel_for_runs_inline() {
        let sum = AtomicUsize::new(0);
        parallel_for(4, 64, 4, |_tid, range| {
            for _ in range {
                // A nested call from inside a task must neither deadlock
                // nor re-enter the pool.
                parallel_for(4, 10, 2, |tid, inner| {
                    assert_eq!(tid, 0, "nested call must be inline");
                    sum.fetch_add(inner.len(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 64 * 10);
    }

    #[test]
    fn oversubscription_threads_exceed_items() {
        let locals = parallel_for_with_local::<Vec<usize>, _>(16, 3, 1, |_tid, r, local| {
            local.extend(r);
        });
        let mut all: Vec<usize> = locals.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2]);
    }

    #[test]
    fn panic_payload_propagates_and_pool_survives() {
        let err = std::panic::catch_unwind(|| {
            parallel_for(4, 100, 1, |_tid, range| {
                if range.contains(&37) {
                    panic!("boom at 37");
                }
            });
        })
        .expect_err("must propagate");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_string)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .expect("original payload");
        assert!(msg.contains("boom at 37"), "got: {msg}");
        // The pool must keep working after a panicking job.
        let sum = AtomicUsize::new(0);
        parallel_for(4, 1000, 8, |_tid, range| {
            sum.fetch_add(range.len(), Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn with_local_panic_does_not_deadlock() {
        let err = std::panic::catch_unwind(|| {
            parallel_for_with_local::<usize, _>(4, 100, 1, |_tid, range, _local| {
                if range.contains(&11) {
                    panic!("local boom");
                }
            });
        })
        .expect_err("must propagate");
        assert!(format!("{err:?}").len() > 0);
        let locals = parallel_for_with_local::<usize, _>(4, 100, 4, |_t, r, l| *l += r.len());
        assert_eq!(locals.into_iter().sum::<usize>(), 100);
    }

    #[test]
    fn parallel_for_each_mut_writes_disjoint_windows() {
        let mut items = vec![0usize; 4096];
        parallel_for_each_mut(8, &mut items, 64, |_tid, start, window| {
            for (i, x) in window.iter_mut().enumerate() {
                *x = start + i;
            }
        });
        assert!(items.iter().enumerate().all(|(i, &x)| x == i));
    }

    #[test]
    fn telemetry_counts_dispatch_and_parks() {
        if !ugc_telemetry::enabled() {
            // UGC_TELEMETRY=0: the counters are dead by design.
            assert_eq!(telemetry(), PoolTelemetry::default());
            return;
        }
        let before = telemetry();
        parallel_for(4, 10_000, 16, |_tid, _range| {});
        let after = telemetry();
        if clamp_participants(4) == 1 {
            // UGC_THREADS=1: everything runs inline.
            assert!(
                after.serial_runs > before.serial_runs,
                "serial fallback counted"
            );
            assert_eq!(after.jobs, before.jobs);
        } else {
            assert!(after.jobs > before.jobs, "dispatch must be counted");
            assert!(after.chunks > before.chunks);
            assert!(after.workers_spawned >= 3);
        }
    }

    #[test]
    fn zero_total_is_noop() {
        parallel_for(4, 0, 16, |_, _| panic!("must not run"));
        assert!(parallel_for_with_local::<usize, _>(4, 0, 16, |_, _, _| {}).is_empty());
        assert!(parallel_for_chunks_with_local::<usize, _>(4, Vec::new(), |_, _, _| {}).is_empty());
    }

    #[test]
    fn single_thread_is_serial_and_deterministic() {
        let locals = parallel_for_with_local::<Vec<usize>, _>(1, 10, 3, |tid, range, local| {
            assert_eq!(tid, 0);
            local.extend(range);
        });
        assert_eq!(locals, vec![(0..10).collect::<Vec<_>>()]);
    }
}
