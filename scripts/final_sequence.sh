#!/bin/bash
# Priority-ordered final artifact generation (single-core machine).
cd /root/repo
R=target/release/repro
{
  $R --scale small configs table8 table3
  $R --scale small fig10b fig11 fig12 table9 table10 fig10a
} > repro_small.txt 2>&1
python3 scripts/fill_experiments.py
cargo bench --workspace > bench_output.txt 2>&1
$R --scale small fig8 >> repro_small.txt 2>&1
python3 scripts/fill_experiments.py
$R --scale small fig9 >> repro_small.txt 2>&1
python3 scripts/fill_experiments.py
echo SEQUENCE_COMPLETE >> repro_small.txt
