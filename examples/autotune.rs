//! Schedule autotuning: exhaustively measure a candidate schedule space
//! per architecture and report the winner — the workflow the paper
//! delegates to OpenTuner (§IV-A).
//!
//! ```sh
//! cargo run --release --example autotune
//! ```

use ugc::{Algorithm, Target};
use ugc_bench::{autotune, baseline_schedule, candidate_schedules, measure};
use ugc_graph::{Dataset, Scale};

fn main() {
    for dataset in [Dataset::RoadNetCa, Dataset::Pokec] {
        let graph = dataset.generate(Scale::Tiny);
        println!(
            "\n=== {} stand-in ({} vertices, {} edges) ===",
            dataset.abbrev(),
            graph.num_vertices(),
            graph.num_edges()
        );
        for target in Target::ALL {
            for algo in [Algorithm::Bfs, Algorithm::Sssp] {
                let base = measure(target, algo, &graph, baseline_schedule(target, algo), 3);
                let (winner, _, best) = autotune(target, algo, &graph);
                println!(
                    "{:>12} {:>5}: best = {winner:<14} ({:.3} ms, {:.2}x over baseline, {} candidates)",
                    target.name(),
                    algo.name(),
                    best.time_ms,
                    base.time_ms / best.time_ms,
                    candidate_schedules(target, algo).len(),
                );
            }
        }
    }
}
