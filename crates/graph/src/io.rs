//! Plain-text edge-list loading and saving.
//!
//! The format is the de-facto standard used by SNAP and most graph tools:
//! one edge per line, `src dst [weight]`, `#`-prefixed comment lines
//! ignored. Vertex ids are dense non-negative integers.

use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::num::ParseIntError;
use std::path::Path;

use crate::{EdgeList, Graph, VertexId};

/// Error returned by the edge-list parser.
#[derive(Debug)]
pub enum ParseGraphError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line could not be parsed.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
}

impl std::fmt::Display for ParseGraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseGraphError::Io(e) => write!(f, "i/o error reading graph: {e}"),
            ParseGraphError::Malformed { line, reason } => {
                write!(f, "malformed edge list at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for ParseGraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseGraphError::Io(e) => Some(e),
            ParseGraphError::Malformed { .. } => None,
        }
    }
}

impl From<io::Error> for ParseGraphError {
    fn from(e: io::Error) -> Self {
        ParseGraphError::Io(e)
    }
}

impl From<ParseIntError> for ParseGraphError {
    fn from(e: ParseIntError) -> Self {
        ParseGraphError::Malformed {
            line: 0,
            reason: e.to_string(),
        }
    }
}

/// Reads an edge list from any reader. The number of vertices is
/// `max id + 1`. Note a mutable reference can be passed as the reader.
///
/// # Errors
///
/// Returns [`ParseGraphError`] on I/O failure or a malformed line.
///
/// # Example
///
/// ```
/// use ugc_graph::io::read_edge_list;
///
/// let text = "# comment\n0 1\n1 2 7\n";
/// let g = read_edge_list(text.as_bytes()).unwrap();
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.num_edges(), 2);
/// ```
pub fn read_edge_list<R: Read>(reader: R) -> Result<Graph, ParseGraphError> {
    let buf = BufReader::new(reader);
    let mut triples = Vec::new();
    let mut weighted = false;
    let mut max_id: i64 = -1;
    for (i, line) in buf.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let parse = |s: Option<&str>, what: &str| -> Result<i64, ParseGraphError> {
            s.ok_or_else(|| ParseGraphError::Malformed {
                line: i + 1,
                reason: format!("missing {what}"),
            })?
            .parse::<i64>()
            .map_err(|e| ParseGraphError::Malformed {
                line: i + 1,
                reason: format!("bad {what}: {e}"),
            })
        };
        let s = parse(parts.next(), "source")?;
        let d = parse(parts.next(), "destination")?;
        if s < 0 || d < 0 {
            return Err(ParseGraphError::Malformed {
                line: i + 1,
                reason: "negative vertex id".to_string(),
            });
        }
        let w = match parts.next() {
            Some(ws) => {
                weighted = true;
                ws.parse::<i32>().map_err(|e| ParseGraphError::Malformed {
                    line: i + 1,
                    reason: format!("bad weight: {e}"),
                })?
            }
            None => 1,
        };
        max_id = max_id.max(s).max(d);
        triples.push((s as VertexId, d as VertexId, w));
    }
    let n = (max_id + 1) as usize;
    let mut el = EdgeList::new(n);
    for (s, d, w) in triples {
        if weighted {
            el.push_weighted(s, d, w);
        } else {
            el.push(s, d);
        }
    }
    Ok(el.into_graph())
}

/// Loads an edge-list file from disk.
///
/// # Errors
///
/// Returns [`ParseGraphError`] on I/O failure or a malformed line.
pub fn load_edge_list<P: AsRef<Path>>(path: P) -> Result<Graph, ParseGraphError> {
    let f = std::fs::File::open(path)?;
    read_edge_list(f)
}

/// Writes a graph as a plain-text edge list (weights included when present).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_edge_list<W: Write>(g: &Graph, mut writer: W) -> io::Result<()> {
    let mut out = String::new();
    let weighted = g.is_weighted();
    for (s, d, w) in g.out_csr().iter_edges() {
        if weighted {
            let _ = writeln!(out, "{s} {d} {w}");
        } else {
            let _ = writeln!(out, "{s} {d}");
        }
        if out.len() > 1 << 16 {
            writer.write_all(out.as_bytes())?;
            out.clear();
        }
    }
    writer.write_all(out.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let g = read_edge_list("0 1\n2 0\n".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert!(!g.is_weighted());
    }

    #[test]
    fn parse_weighted() {
        let g = read_edge_list("0 1 5\n".as_bytes()).unwrap();
        assert!(g.is_weighted());
        assert_eq!(g.out_csr().neighbor_weights(0).unwrap(), &[5]);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let g = read_edge_list("# hi\n\n% also\n0 1\n".as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn malformed_line_reports_number() {
        let err = read_edge_list("0 1\nnope\n".as_bytes()).unwrap_err();
        match err {
            ParseGraphError::Malformed { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn negative_id_rejected() {
        let err = read_edge_list("-1 0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ParseGraphError::Malformed { .. }));
    }

    #[test]
    fn round_trip() {
        let g = crate::generators::two_communities();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g.out_csr().targets(), g2.out_csr().targets());
        assert_eq!(g.out_csr().weights(), g2.out_csr().weights());
    }

    #[test]
    fn error_display_mentions_line() {
        let err = read_edge_list("x\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }
}
