//! Thread-count invariance of the CPU GraphVM on the persistent pool:
//! for random graphs, BFS and SSSP answers are identical whether the
//! pool runs 1, 2, or 8 threads.
//!
//! SSSP distances are compared exactly (monotone min-relaxation converges
//! to shortest distances under any interleaving). BFS parent arrays are
//! race-dependent across thread counts — any same-level predecessor is a
//! valid parent — so the comparison is on the derived level of each
//! vertex (parent-chain depth), which every valid BFS tree agrees on.

use ugc_algorithms::Algorithm;
use ugc_backend_cpu::{CpuGraphVm, CpuSchedule};
use ugc_graph::{EdgeList, Graph};
use ugc_integration::{compile, externs_for};
use ugc_schedule::{Parallelization, ScheduleRef};
use ugc_testkit::{check, Config, Prng};

type RawGraph = (usize, Vec<(u32, u32, i32)>);

fn gen_raw(rng: &mut Prng) -> RawGraph {
    // Sizes reach well past the executor chunk hints (64/128 vertices,
    // 2048 edges per degree chunk) so frontiers really split across
    // multiple pool participants; the low end still covers tiny graphs.
    let n = rng.gen_range(4..320usize);
    let len = rng.gen_range(1..4096usize);
    let edges = (0..len)
        .map(|_| {
            (
                rng.gen_range(0..n as u32),
                rng.gen_range(0..n as u32),
                rng.gen_range(1i32..32),
            )
        })
        .collect();
    (n, edges)
}

fn build(raw: &RawGraph) -> Graph {
    let (n, edges) = raw;
    let mut el = EdgeList::new(*n);
    for &(s, d, w) in edges {
        el.push_weighted(s, d, w);
    }
    el.symmetrize();
    el.dedup_and_strip_loops();
    el.into_graph()
}

/// Depth of each vertex's parent chain: the BFS level, which is identical
/// for every valid BFS tree of the same graph. `-1` stays unreachable.
fn levels_from_parents(parents: &[i64], start: u32) -> Vec<i64> {
    let n = parents.len();
    parents
        .iter()
        .enumerate()
        .map(|(v, &p)| {
            if p == -1 {
                return -1;
            }
            let mut cur = v as u32;
            let mut depth = 0i64;
            while cur != start {
                let pv = parents[cur as usize];
                assert!(pv >= 0, "vertex {v}: broken parent chain at {cur}");
                cur = pv as u32;
                depth += 1;
                assert!(depth <= n as i64, "vertex {v}: parent cycle");
            }
            depth
        })
        .collect()
}

/// Runs `algo` once per thread count and returns the named property.
fn runs_for_threads(
    algo: Algorithm,
    sched: ScheduleRef,
    graph: &Graph,
    prop: &str,
) -> Vec<Vec<i64>> {
    [1usize, 2, 8]
        .iter()
        .map(|&t| {
            let prog = compile(algo, Some(sched.clone()));
            let vm = CpuGraphVm::with_threads(t);
            let run = vm
                .execute(prog, graph, &externs_for(algo, 0))
                .unwrap_or_else(|e| panic!("{} with {t} threads: {e}", algo.name()));
            run.property_ints(prop)
        })
        .collect()
}

/// Schedules that actually engage the parallel paths on small graphs
/// (serial_threshold 0), with and without edge-aware chunking.
fn parallel_scheds() -> Vec<ScheduleRef> {
    vec![
        ScheduleRef::simple(CpuSchedule::new().with_serial_threshold(0)),
        ScheduleRef::simple(
            CpuSchedule::new()
                .with_serial_threshold(0)
                .with_parallelization(Parallelization::EdgeAwareVertexBased),
        ),
    ]
}

#[test]
fn bfs_levels_invariant_across_thread_counts() {
    check(
        "bfs_levels_invariant_across_thread_counts",
        Config::with_cases(12),
        gen_raw,
        |raw| {
            let graph = build(raw);
            for sched in parallel_scheds() {
                let runs = runs_for_threads(Algorithm::Bfs, sched, &graph, "parent");
                let levels: Vec<Vec<i64>> = runs
                    .iter()
                    .map(|parents| levels_from_parents(parents, 0))
                    .collect();
                assert_eq!(levels[0], levels[1], "1 vs 2 threads");
                assert_eq!(levels[0], levels[2], "1 vs 8 threads");
            }
        },
    );
}

#[test]
fn sssp_distances_invariant_across_thread_counts() {
    check(
        "sssp_distances_invariant_across_thread_counts",
        Config::with_cases(12),
        gen_raw,
        |raw| {
            let graph = build(raw);
            for sched in parallel_scheds() {
                let runs = runs_for_threads(Algorithm::Sssp, sched, &graph, "dist");
                assert_eq!(runs[0], runs[1], "1 vs 2 threads");
                assert_eq!(runs[0], runs[2], "1 vs 8 threads");
            }
        },
    );
}

/// The global `UGC_THREADS` cap, as the pool reads it: `None` means
/// uncapped, `Some(1)` (or 0, which the pool clamps up) means every
/// `parallel_for` in this process runs inline on the caller.
fn threads_cap() -> Option<usize> {
    std::env::var("UGC_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
}

/// Telemetry: under forced stealing (8 participants, chunk hint 1, work
/// skewed onto participant 0's block) the pool's steal/park counters stay
/// consistent with its chunk accounting — and under `UGC_THREADS=1`, where
/// dispatch is impossible, steals and parks are exactly zero for the whole
/// process no matter what the sibling tests in this binary did.
#[test]
fn steal_and_park_counters_consistent_under_forced_stealing() {
    use ugc_runtime::pool::{telemetry, PoolTelemetry};

    let total = 4096usize;
    let before = telemetry();
    // Chunk hint 1 makes every index its own chunk; the first 64 indices
    // (all inside participant 0's block) burn enough cycles that the other
    // seven participants drain their trivial blocks and must steal the
    // upper half of block 0 to finish.
    ugc_runtime::pool::parallel_for(8, total, 1, |_tid, range| {
        for i in range {
            if i < 64 {
                std::hint::black_box((0..200_000u64).sum::<u64>());
            }
        }
    });
    let after = telemetry();

    if !ugc_telemetry::enabled() {
        // UGC_TELEMETRY=0: every pool counter is dead by design.
        assert_eq!(after, PoolTelemetry::default());
        return;
    }
    if threads_cap().is_some_and(|cap| cap <= 1) {
        // UGC_THREADS=1: inline execution only — no job was ever
        // dispatched in this process, so stealing and parking cannot
        // have happened even once.
        assert_eq!(after.jobs, 0, "single-thread cap must never dispatch");
        assert_eq!(after.steals, 0, "single-thread cap must never steal");
        assert_eq!(after.parks, 0, "single-thread cap must never park");
        assert!(
            after.serial_runs > before.serial_runs,
            "the inline fallback must be counted"
        );
        return;
    }
    // Multi-threaded: the job dispatched, the range split into many
    // counted chunks, and the skew forced at least one steal. The chunk
    // hint is only a floor now — the adaptive controller may coarsen
    // chunks up to total/(participants · 4), so with 8 participants the
    // guaranteed minimum is 4·8 = 32 chunks, not one per index.
    assert!(after.jobs > before.jobs, "dispatch must be counted");
    assert!(
        after.chunks - before.chunks >= 32,
        "8 participants must count at least 32 chunks (delta {})",
        after.chunks - before.chunks
    );
    assert!(
        after.steals > before.steals,
        "skewed tiny blocks must force stealing"
    );
    // Consistency: a steal always hands the thief work that executes as a
    // counted chunk, so globally steals can never outnumber chunks; and
    // both counters are monotone.
    assert!(
        after.steals <= after.chunks,
        "steals ({}) cannot exceed executed chunks ({})",
        after.steals,
        after.chunks
    );
    assert!(after.parks >= before.parks, "park counter went backwards");
}

/// A panicking job must close its `pool.job` telemetry span before the
/// payload is re-raised to the caller: `pool.job.calls` stays balanced
/// against `pool.jobs` no matter how the job ended. Sibling tests may
/// have jobs in flight, so the balance is polled to quiescence — a leaked
/// span never converges and times the assertion out.
#[test]
fn panicking_job_leaves_job_span_balanced() {
    // Total sits above SERIAL_DISPATCH_THRESHOLD so the call really
    // dispatches to the pool — a serial inline run would re-raise the
    // panic without ever opening a job span.
    let result = std::panic::catch_unwind(|| {
        ugc_runtime::pool::parallel_for(8, 2048, 1, |_tid, range| {
            for i in range {
                if i == 1024 {
                    panic!("injected job panic");
                }
            }
        });
    });
    assert!(result.is_err(), "the panic must propagate to the caller");
    if !ugc_telemetry::enabled() || threads_cap().is_some_and(|cap| cap <= 1) {
        // Disabled counters or inline execution: nothing to balance.
        return;
    }
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let snap = ugc_telemetry::snapshot();
        let closes = snap.get("pool.job.calls").unwrap_or(0);
        let jobs = snap.get("pool.jobs").unwrap_or(0);
        assert!(
            closes <= jobs,
            "span closes ({closes}) exceed dispatched jobs ({jobs})"
        );
        if closes == jobs {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "pool.job span left open: {closes} closes vs {jobs} jobs"
        );
        std::thread::yield_now();
    }
}

/// Adaptive chunking must be invisible under `UGC_THREADS=1`: with the
/// process-wide cap every `parallel_for` runs inline on the caller, so
/// repeated runs — each of which feeds the chunk-feedback controller a
/// fresh timing sample — and different requested thread counts all
/// produce byte-identical raw results. The comparison is on the raw
/// parent array (not derived levels): serial execution has exactly one
/// valid interleaving, so even race-dependent properties must match.
#[test]
fn adaptive_chunking_is_deterministic_under_thread_cap() {
    if !threads_cap().is_some_and(|cap| cap <= 1) {
        // Only meaningful when the cap forces inline execution; the
        // uncapped run of this binary exercises the parallel paths via
        // the invariance tests above.
        return;
    }
    let mut rng = Prng::new(0x5eed_c41f);
    for _ in 0..4 {
        let raw = gen_raw(&mut rng);
        let graph = build(&raw);
        for sched in parallel_scheds() {
            let mut first: Option<Vec<i64>> = None;
            // Three repeats per schedule: each run advances the
            // controller's hill-climb state, none may change the answer.
            for _ in 0..3 {
                for parents in runs_for_threads(Algorithm::Bfs, sched.clone(), &graph, "parent") {
                    match &first {
                        None => first = Some(parents),
                        Some(f) => {
                            assert_eq!(f, &parents, "inline runs must be byte-identical")
                        }
                    }
                }
            }
        }
    }
}

/// The zero-steal guarantee holds for an explicitly serial call too:
/// one participant never dispatches, steals, or parks, regardless of the
/// `UGC_THREADS` setting.
#[test]
fn one_participant_never_steals() {
    use ugc_runtime::pool::telemetry;

    let before = telemetry();
    let hits = std::sync::atomic::AtomicUsize::new(0);
    ugc_runtime::pool::parallel_for(1, 512, 1, |tid, range| {
        assert_eq!(tid, 0, "serial run must stay on the caller");
        hits.fetch_add(range.len(), std::sync::atomic::Ordering::Relaxed);
    });
    assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), 512);
    let after = telemetry();
    if !ugc_telemetry::enabled() {
        return;
    }
    assert!(
        after.serial_runs > before.serial_runs,
        "one participant must take the serial path"
    );
    if threads_cap().is_some_and(|cap| cap <= 1) {
        // With the process-wide cap at 1, nothing in this binary may
        // have stolen — the counter is exactly zero, not merely stable.
        assert_eq!(after.steals, 0);
        assert_eq!(after.parks, 0);
    }
}
