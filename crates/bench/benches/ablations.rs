//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * GPU kernel fusion on/off (road vs social),
//! * GPU load-balancing strategy sweep on a skewed graph,
//! * Swarm vertex-set→tasks vs buffered frontiers,
//! * Swarm fine-grained splitting + hints vs coarse tasks,
//! * HammerBlade blocked access vs plain demand access,
//! * CPU hybrid direction vs push-only,
//! * Table IX's blocked-access experiment as a bench.
//!
//! Runs on the in-tree timing harness (warmup + median-of-N + one JSON
//! line per variant on stdout).

use std::time::Duration;

use ugc::{Algorithm, Target};
use ugc_backend_cpu::CpuSchedule;
use ugc_backend_gpu::{GpuSchedule, LoadBalance};
use ugc_backend_hb::HbSchedule;
use ugc_backend_swarm::{Frontiers, SwarmSchedule, TaskGranularity};
use ugc_bench::{measure, Harness};
use ugc_graph::{Dataset, Scale};
use ugc_schedule::{SchedDirection, ScheduleRef};

fn sim_bench(
    h: &Harness,
    group_name: &str,
    target: Target,
    algo: Algorithm,
    dataset: Dataset,
    variants: Vec<(&'static str, ScheduleRef)>,
) {
    let graph = dataset.generate(Scale::Tiny);
    for (label, sched) in variants {
        h.bench(group_name, label, || {
            let m = measure(target, algo, &graph, sched.clone(), 1);
            Duration::from_secs_f64(m.time_ms / 1e3)
        });
    }
}

fn gpu_kernel_fusion(h: &Harness) {
    for (ds, name) in [
        (Dataset::RoadNetCa, "ablation/gpu_fusion/road"),
        (Dataset::Pokec, "ablation/gpu_fusion/social"),
    ] {
        sim_bench(
            h,
            name,
            Target::Gpu,
            Algorithm::Bfs,
            ds,
            vec![
                ("unfused", ScheduleRef::simple(GpuSchedule::new())),
                (
                    "fused",
                    ScheduleRef::simple(GpuSchedule::new().with_kernel_fusion(true)),
                ),
            ],
        );
    }
}

fn gpu_load_balance(h: &Harness) {
    let variants = LoadBalance::ALL
        .iter()
        .map(|&lb| {
            let label: &'static str = match lb {
                LoadBalance::VertexBased => "VERTEX_BASED",
                LoadBalance::Twc => "TWC",
                LoadBalance::Cm => "CM",
                LoadBalance::Wm => "WM",
                LoadBalance::Strict => "STRICT",
                LoadBalance::EdgeOnly => "EDGE_ONLY",
                LoadBalance::Etwc => "ETWC",
            };
            (
                label,
                ScheduleRef::simple(GpuSchedule::new().with_load_balance(lb)),
            )
        })
        .collect();
    sim_bench(
        h,
        "ablation/gpu_load_balance/bfs_social",
        Target::Gpu,
        Algorithm::Bfs,
        Dataset::Hollywood,
        variants,
    );
}

fn swarm_task_conversion(h: &Harness) {
    sim_bench(
        h,
        "ablation/swarm_frontiers/bfs_road",
        Target::Swarm,
        Algorithm::Bfs,
        Dataset::RoadNetCa,
        vec![
            ("buffered", ScheduleRef::simple(SwarmSchedule::new())),
            (
                "vertexset_to_tasks",
                ScheduleRef::simple(
                    SwarmSchedule::new().with_frontiers(Frontiers::VertexsetToTasks),
                ),
            ),
            (
                "tasks_fine_hints",
                ScheduleRef::simple(
                    SwarmSchedule::new()
                        .with_frontiers(Frontiers::VertexsetToTasks)
                        .with_task_granularity(TaskGranularity::FineGrained),
                ),
            ),
        ],
    );
}

fn swarm_privatization(h: &Harness) {
    sim_bench(
        h,
        "ablation/swarm_privatization/bfs_road",
        Target::Swarm,
        Algorithm::Bfs,
        Dataset::RoadNetCa,
        vec![
            (
                "shared_round_var",
                ScheduleRef::simple(
                    SwarmSchedule::new()
                        .with_frontiers(Frontiers::VertexsetToTasks)
                        .with_privatization(false),
                ),
            ),
            (
                "privatized",
                ScheduleRef::simple(
                    SwarmSchedule::new().with_frontiers(Frontiers::VertexsetToTasks),
                ),
            ),
        ],
    );
}

fn hb_blocked_access(h: &Harness) {
    sim_bench(
        h,
        "ablation/hb_blocked_access/pr_social",
        Target::HammerBlade,
        Algorithm::PageRank,
        Dataset::Pokec,
        vec![
            ("demand", ScheduleRef::simple(HbSchedule::new())),
            (
                "blocked",
                ScheduleRef::simple(HbSchedule::new().with_blocked_access(true)),
            ),
        ],
    );
}

fn cpu_hybrid_direction(h: &Harness) {
    sim_bench(
        h,
        "ablation/cpu_direction/bfs_social",
        Target::Cpu,
        Algorithm::Bfs,
        Dataset::Hollywood,
        vec![
            ("push", ScheduleRef::simple(CpuSchedule::new())),
            (
                "pull",
                ScheduleRef::simple(CpuSchedule::new().with_direction(SchedDirection::Pull)),
            ),
            (
                "hybrid",
                ScheduleRef::simple(CpuSchedule::new().with_direction(SchedDirection::Hybrid)),
            ),
        ],
    );
}

fn main() {
    let h = Harness::from_args();
    gpu_kernel_fusion(&h);
    gpu_load_balance(&h);
    swarm_task_conversion(&h);
    swarm_privatization(&h);
    hb_blocked_access(&h);
    cpu_hybrid_direction(&h);
}
