#!/usr/bin/env python3
"""Inlines the latest `repro_small.txt` into EXPERIMENTS.md's measured
block. Run after `cargo run --release -p ugc-bench --bin repro -- --scale
small all > repro_small.txt`."""

import pathlib
import re

root = pathlib.Path(__file__).resolve().parent.parent
experiments = root / "EXPERIMENTS.md"
measured = (root / "repro_small.txt").read_text().strip()

text = experiments.read_text()
new = re.sub(
    r"```text\nMEASURED_ALL\n```",
    "```text\n" + measured + "\n```",
    text,
)
if new == text:
    # Replace an existing inlined block (idempotent re-runs).
    new = re.sub(
        r"## Measured output\n\n.*\Z",
        "## Measured output\n\nVerbatim `repro --scale small all` output follows.\n\n```text\n"
        + measured
        + "\n```\n",
        text,
        flags=re.S,
    )
experiments.write_text(new)
print(f"inlined {len(measured)} bytes into EXPERIMENTS.md")
