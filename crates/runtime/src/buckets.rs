//! Bucketed priority queue for ordered algorithms (∆-stepping SSSP).
//!
//! Implements GraphIt's lazy-bucketing design: `update_min` pushes the
//! vertex into the bucket of its *new* priority without removing stale
//! entries; `pop_ready` filters stale entries by re-checking the tracked
//! priority at dequeue time.

use crate::vertexset::VertexSet;

/// A bucketed priority queue over vertices with integer priorities.
///
/// The queue does not own the priorities — they live in a property vector —
/// so the staleness checks take the current priority as a closure. This is
/// exactly the shape backends need: the CPU backend passes a closure over
/// `PropertyStorage`, simulators pass closures over their memory models.
///
/// # Example
///
/// ```
/// use ugc_runtime::BucketQueue;
///
/// let mut q = BucketQueue::new(8, 2, 0); // universe 8, delta 2, source 0
/// let prio = |v: u32| if v == 0 { 0 } else { i64::MAX };
/// assert!(!q.finished());
/// let ready = q.pop_ready(prio);
/// assert_eq!(ready.iter(), vec![0]);
/// ```
#[derive(Debug, Clone)]
pub struct BucketQueue {
    universe: usize,
    delta: i64,
    /// buckets[i] holds vertices whose priority (at push time) fell in
    /// bucket `first_bucket + i`.
    buckets: Vec<Vec<u32>>,
    /// Bucket index of `buckets[0]`.
    first_bucket: i64,
    /// Total pushes not yet popped (upper bound; stale entries included).
    pending: usize,
}

impl BucketQueue {
    /// Creates a queue seeded with `source` at priority 0.
    ///
    /// # Panics
    ///
    /// Panics if `delta < 1`.
    pub fn new(universe: usize, delta: i64, source: u32) -> Self {
        assert!(delta >= 1, "delta must be >= 1");
        let mut q = BucketQueue {
            universe,
            delta,
            buckets: Vec::new(),
            first_bucket: 0,
            pending: 0,
        };
        q.push(source, 0);
        q
    }

    /// The ∆ bucket width.
    pub fn delta(&self) -> i64 {
        self.delta
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.universe
    }

    fn bucket_of(&self, prio: i64) -> i64 {
        prio.div_euclid(self.delta)
    }

    /// Schedules `v` at `prio` (lazy: stale earlier entries stay behind).
    pub fn push(&mut self, v: u32, prio: i64) {
        let b = self.bucket_of(prio);
        if b < self.first_bucket {
            // Re-base: prepend empty buckets (rare; happens only if a
            // priority drops below the current window).
            let shift = (self.first_bucket - b) as usize;
            let mut newbuckets = vec![Vec::new(); shift];
            newbuckets.append(&mut self.buckets);
            self.buckets = newbuckets;
            self.first_bucket = b;
        }
        let idx = (b - self.first_bucket) as usize;
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, Vec::new());
        }
        self.buckets[idx].push(v);
        self.pending += 1;
    }

    /// Whether no pending entries remain.
    pub fn finished(&self) -> bool {
        self.pending == 0
    }

    /// Pops the lowest non-empty bucket, filtering stale entries (whose
    /// current priority no longer falls in that bucket) and duplicates.
    /// Returns an empty set when the queue is drained.
    pub fn pop_ready(&mut self, current_prio: impl Fn(u32) -> i64) -> VertexSet {
        while let Some(pos) = self.buckets.iter().position(|b| !b.is_empty()) {
            let bucket_idx = self.first_bucket + pos as i64;
            let entries = std::mem::take(&mut self.buckets[pos]);
            self.pending -= entries.len();
            let mut out = VertexSet::empty_sparse(self.universe);
            for v in entries {
                if self.bucket_of(current_prio(v)) == bucket_idx {
                    out.add(v);
                }
            }
            out.dedup();
            if !out.is_empty() {
                return out;
            }
            // Entire bucket was stale; try the next one.
        }
        VertexSet::empty_sparse(self.universe)
    }

    /// Upper bound on entries still queued (stale included).
    pub fn pending_upper_bound(&self) -> usize {
        self.pending
    }

    /// Drops every pending entry (used by backends that drain the queue
    /// through their own task machinery, e.g. Swarm's vertex-set→tasks).
    pub fn clear(&mut self) {
        self.buckets.clear();
        self.pending = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn pops_in_priority_order() {
        let mut q = BucketQueue::new(10, 1, 0);
        let mut prio: HashMap<u32, i64> = HashMap::new();
        prio.insert(0, 0);
        prio.insert(5, 2);
        prio.insert(7, 1);
        q.push(5, 2);
        q.push(7, 1);
        let p = |v: u32| prio[&v];
        assert_eq!(q.pop_ready(p).iter(), vec![0]);
        assert_eq!(q.pop_ready(p).iter(), vec![7]);
        assert_eq!(q.pop_ready(p).iter(), vec![5]);
        assert!(q.finished());
    }

    #[test]
    fn delta_groups_buckets() {
        let mut q = BucketQueue::new(10, 4, 0);
        let prio = |v: u32| v as i64; // vertex id = priority
        q.push(1, 1);
        q.push(3, 3);
        q.push(5, 5);
        let first = q.pop_ready(prio);
        assert_eq!(first.iter(), vec![0, 1, 3]); // bucket [0,4)
        let second = q.pop_ready(prio);
        assert_eq!(second.iter(), vec![5]);
    }

    #[test]
    fn stale_entries_filtered() {
        let mut q = BucketQueue::new(10, 1, 0);
        // Vertex 3 first scheduled at prio 5, then improved to 2.
        q.push(3, 5);
        q.push(3, 2);
        let prio = |v: u32| match v {
            0 => 0,
            3 => 2,
            _ => i64::MAX,
        };
        assert_eq!(q.pop_ready(prio).iter(), vec![0]);
        assert_eq!(q.pop_ready(prio).iter(), vec![3]); // from bucket 2
                                                       // The stale bucket-5 entry is dropped.
        assert_eq!(q.pop_ready(prio).iter(), Vec::<u32>::new());
        assert!(q.finished());
    }

    #[test]
    fn duplicates_within_bucket_collapse() {
        let mut q = BucketQueue::new(10, 1, 0);
        q.push(2, 1);
        q.push(2, 1);
        let prio = |v: u32| if v == 0 { 0 } else { 1 };
        q.pop_ready(prio);
        let s = q.pop_ready(prio);
        assert_eq!(s.iter(), vec![2]);
    }

    #[test]
    fn empty_queue_returns_empty_set() {
        let mut q = BucketQueue::new(4, 1, 0);
        let prio = |_| 0;
        q.pop_ready(prio);
        assert!(q.finished());
        assert!(q.pop_ready(prio).is_empty());
    }

    #[test]
    #[should_panic(expected = "delta must be")]
    fn zero_delta_rejected() {
        let _ = BucketQueue::new(4, 0, 0);
    }

    #[test]
    fn negative_priorities_rebase() {
        let mut q = BucketQueue::new(4, 2, 0);
        q.push(1, -4);
        let prio = |v: u32| if v == 1 { -4 } else { 0 };
        assert_eq!(q.pop_ready(prio).iter(), vec![1]);
        assert_eq!(q.pop_ready(prio).iter(), vec![0]);
    }
}
