//! The CPU GraphVM entry point.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use ugc_graph::Graph;
use ugc_graphir::ir::Program;
use ugc_runtime::interp::{contain, run_main, ExecError, ProgramState};
use ugc_runtime::value::Value;

use crate::executor::{CpuAttribution, CpuExecutor};

/// The CPU GraphVM: executes midend-processed GraphIR on host threads.
#[derive(Debug, Clone, Default)]
pub struct CpuGraphVm {
    /// Operator executor (thread count lives here).
    pub executor: CpuExecutor,
}

/// The result of one execution: final program state plus wall-clock time.
pub struct Execution<'g> {
    /// Final state (properties, globals, prints).
    pub state: ProgramState<'g>,
    /// Wall-clock time of `main` (excludes state setup).
    pub elapsed: Duration,
    /// Where the wall time went; components sum to `attr.total()`.
    /// All zeros when telemetry is disabled.
    pub attr: CpuAttribution,
}

impl std::fmt::Debug for Execution<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Execution")
            .field("elapsed", &self.elapsed)
            .finish()
    }
}

impl Execution<'_> {
    /// Snapshot of a property by name as integers.
    ///
    /// # Panics
    ///
    /// Panics if the property does not exist (a compile bug, not a data
    /// error).
    pub fn property_ints(&self, name: &str) -> Vec<i64> {
        let id = self.state.props.id_of(name).expect("property exists");
        self.state
            .props
            .snapshot(id)
            .into_iter()
            .map(|v| v.as_int())
            .collect()
    }

    /// Snapshot of a property by name as floats.
    ///
    /// # Panics
    ///
    /// Panics if the property does not exist.
    pub fn property_floats(&self, name: &str) -> Vec<f64> {
        let id = self.state.props.id_of(name).expect("property exists");
        self.state
            .props
            .snapshot(id)
            .into_iter()
            .map(|v| v.as_float())
            .collect()
    }
}

impl CpuGraphVm {
    /// A VM with `num_threads` workers.
    pub fn with_threads(num_threads: usize) -> Self {
        CpuGraphVm {
            executor: CpuExecutor::with_threads(num_threads),
        }
    }

    /// Enables or disables compiled edge kernels for this VM's runs
    /// (overriding the `UGC_CPU_KERNELS` process default). With kernels
    /// off every traversal goes through the interpreter — the
    /// differential oracle the kernel library is tested against.
    pub fn with_kernels(mut self, on: bool) -> Self {
        self.executor.use_kernels = on;
        self
    }

    /// Executes a program (already lowered and passed through the midend)
    /// on `graph`, binding extern consts from `externs`.
    ///
    /// Runs under [`contain`]: panics anywhere in the execution (broken
    /// invariants, watchdog payloads) come back as classed [`ExecError`]s
    /// instead of unwinding into the caller.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] for unbound externs or execution failures.
    pub fn execute<'g>(
        &self,
        prog: Program,
        graph: &'g Graph,
        externs: &HashMap<String, Value>,
    ) -> Result<Execution<'g>, ExecError> {
        contain(std::panic::AssertUnwindSafe(|| {
            let mut state = ProgramState::new(prog, graph, externs)?;
            let mut exec = self.executor.clone();
            let start = Instant::now();
            let result = run_main(&mut state, &mut exec);
            let elapsed = start.elapsed();
            // Attribute even on error so global counters stay consistent.
            let attr = exec.finish_run(elapsed.as_nanos() as u64);
            result?;
            Ok(Execution {
                state,
                elapsed,
                attr,
            })
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vm_runs_and_times() {
        let src = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load("g");
const x : vector{Vertex}(int) = 7;
func main()
    print 42;
end
"#;
        let prog = ugc_midend::frontend_to_ir(src).unwrap();
        let graph = ugc_graph::generators::path(3);
        let vm = CpuGraphVm::with_threads(2);
        let run = vm.execute(prog, &graph, &HashMap::new()).unwrap();
        assert_eq!(run.state.prints, vec!["42"]);
        assert_eq!(run.property_ints("x"), vec![7, 7, 7]);
    }

    #[test]
    fn attribution_components_sum_to_total_time() {
        let src = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load("g");
const vertices : vertexset{Vertex} = edges.getVertices();
const parent : vector{Vertex}(int) = -1;
func toFilter(v : Vertex) -> output : bool
    output = (parent[v] == -1);
end
func updateEdge(src : Vertex, dst : Vertex)
    parent[dst] = src;
end
func reset(v : Vertex)
    parent[v] = -1;
end
func main()
    vertices.apply(reset);
    var frontier : vertexset{Vertex} = new vertexset{Vertex}(0);
    frontier.addVertex(0);
    parent[0] = 0;
    while (frontier.getVertexSetSize() != 0)
        var output : vertexset{Vertex} = edges.from(frontier).to(toFilter).applyModified(updateEdge, parent, true);
        delete frontier;
        frontier = output;
    end
end
"#;
        let mut prog = ugc_midend::frontend_to_ir(src).unwrap();
        ugc_midend::run_passes(&mut prog).unwrap();
        let graph = ugc_graph::generators::uniform_random(256, 1024, 7, false);
        let vm = CpuGraphVm::with_threads(2);
        let run = vm.execute(prog, &graph, &HashMap::new()).unwrap();
        if ugc_telemetry::enabled() {
            // Components sum exactly to the attributed total, which covers
            // the whole elapsed window.
            assert_eq!(
                run.attr.components().iter().map(|(_, v)| v).sum::<u64>(),
                run.attr.total()
            );
            assert!(run.attr.total() >= run.elapsed.as_nanos() as u64);
            assert!(run.attr.edge_push + run.attr.edge_pull > 0);
            assert!(run.attr.vertex_apply > 0);
        } else {
            assert_eq!(run.attr, CpuAttribution::default());
        }
    }
}
