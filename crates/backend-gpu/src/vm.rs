//! The GPU GraphVM entry point.

use std::collections::HashMap;

use ugc_graph::Graph;
use ugc_graphir::ir::Program;
use ugc_runtime::interp::{contain, run_main, ExecError, ProgramState};
use ugc_runtime::value::Value;
use ugc_sim_gpu::{GpuConfig, GpuSim, GpuStats};

use crate::executor::GpuExecutor;

/// The GPU GraphVM: runs GraphIR on the SIMT timing simulator.
#[derive(Debug, Clone, Default)]
pub struct GpuGraphVm {
    /// Simulated device configuration.
    pub config: GpuConfig,
}

/// Result of one simulated execution.
pub struct GpuExecution<'g> {
    /// Final program state (properties, globals, prints).
    pub state: ProgramState<'g>,
    /// Simulated device cycles.
    pub cycles: u64,
    /// Simulated time in milliseconds.
    pub time_ms: f64,
    /// Device statistics.
    pub stats: GpuStats,
}

impl std::fmt::Debug for GpuExecution<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GpuExecution")
            .field("cycles", &self.cycles)
            .field("stats", &self.stats)
            .finish()
    }
}

impl GpuExecution<'_> {
    /// Snapshot of an integer property.
    ///
    /// # Panics
    ///
    /// Panics if the property does not exist.
    pub fn property_ints(&self, name: &str) -> Vec<i64> {
        let id = self.state.props.id_of(name).expect("property exists");
        self.state
            .props
            .snapshot(id)
            .into_iter()
            .map(|v| v.as_int())
            .collect()
    }

    /// Snapshot of a float property.
    ///
    /// # Panics
    ///
    /// Panics if the property does not exist.
    pub fn property_floats(&self, name: &str) -> Vec<f64> {
        let id = self.state.props.id_of(name).expect("property exists");
        self.state
            .props
            .snapshot(id)
            .into_iter()
            .map(|v| v.as_float())
            .collect()
    }
}

impl GpuGraphVm {
    /// A VM over the given device configuration.
    pub fn new(config: GpuConfig) -> Self {
        GpuGraphVm { config }
    }

    /// Executes a midend-processed program on `graph`. Runs the GPU
    /// GraphVM's hardware-specific passes (kernel fusion marking) first.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] for unbound externs or execution failures.
    pub fn execute<'g>(
        &self,
        mut prog: Program,
        graph: &'g Graph,
        externs: &HashMap<String, Value>,
    ) -> Result<GpuExecution<'g>, ExecError> {
        contain(std::panic::AssertUnwindSafe(|| {
            crate::passes::run(&mut prog);
            let mut state = ProgramState::new(prog, graph, externs)?;
            let mut exec = GpuExecutor::new(GpuSim::new(self.config.clone()));
            run_main(&mut state, &mut exec)?;
            Ok(GpuExecution {
                cycles: exec.sim.time_cycles(),
                time_ms: exec.sim.time_ms(),
                stats: exec.sim.stats,
                state,
            })
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::GpuSchedule;
    use ugc_schedule::{apply_schedule, ScheduleRef};

    const BFS: &str = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load("g");
const parent : vector{Vertex}(int) = -1;
const start_vertex : Vertex;
func toFilter(v : Vertex) -> output : bool
    output = (parent[v] == -1);
end
func updateEdge(src : Vertex, dst : Vertex)
    parent[dst] = src;
end
func main()
    var frontier : vertexset{Vertex} = new vertexset{Vertex}(0);
    frontier.addVertex(start_vertex);
    parent[start_vertex] = start_vertex;
    #s0# while (frontier.getVertexSetSize() != 0)
        #s1# var output : vertexset{Vertex} = edges.from(frontier).to(toFilter).applyModified(updateEdge, parent, true);
        delete frontier;
        frontier = output;
    end
end
"#;

    fn run_bfs(sched: Option<GpuSchedule>) -> (Vec<i64>, u64, GpuStats) {
        let mut prog = ugc_midend::frontend_to_ir(BFS).unwrap();
        if let Some(s) = sched {
            apply_schedule(&mut prog, "s0:s1", ScheduleRef::simple(s)).unwrap();
        }
        ugc_midend::run_passes(&mut prog).unwrap();
        let graph = ugc_graph::generators::two_communities();
        let mut externs = HashMap::new();
        externs.insert("start_vertex".to_string(), Value::Int(0));
        let vm = GpuGraphVm::default();
        let run = vm.execute(prog, &graph, &externs).unwrap();
        (run.property_ints("parent"), run.cycles, run.stats)
    }

    #[test]
    fn bfs_default_runs_correctly() {
        let (parents, cycles, stats) = run_bfs(None);
        assert!(parents.iter().all(|&p| p != -1));
        assert!(cycles > 0);
        assert!(stats.kernels > 0);
    }

    #[test]
    fn kernel_fusion_reduces_launches() {
        let (_, cycles_unfused, stats_unfused) = run_bfs(Some(GpuSchedule::new()));
        let (parents, cycles_fused, stats_fused) =
            run_bfs(Some(GpuSchedule::new().with_kernel_fusion(true)));
        assert!(parents.iter().all(|&p| p != -1));
        assert!(
            stats_fused.kernels < stats_unfused.kernels,
            "fused {} vs unfused {}",
            stats_fused.kernels,
            stats_unfused.kernels
        );
        assert!(stats_fused.grid_syncs > 0);
        // On this tiny high-round graph, fusion must win.
        assert!(cycles_fused < cycles_unfused);
    }
}
