//! Telemetry invariants, cross-layer:
//!
//! 1. Per-component attributions sum to each backend's reported total
//!    *exactly* (the simulators account every cycle; the CPU backend
//!    accounts every nanosecond of `main`).
//! 2. Registry counters are monotonic across iterations.
//! 3. With `UGC_TELEMETRY=0` the registry stays empty and algorithm
//!    results are unaffected (CI runs this binary under both settings).
//! 4. Snapshots of the deterministic simulators are byte-stable across
//!    two identical seeded runs.
//!
//! Registry deltas are only exact while no other thread is mid-
//! measurement, so every measuring test in this binary serializes on
//! [`measure_lock`].

use std::sync::{Mutex, MutexGuard, OnceLock};

use ugc::{Algorithm, Target};
use ugc_bench::profile::{attribution_from, counter_prefix};
use ugc_bench::{baseline_schedule, try_measure};
use ugc_graph::{Dataset, Graph, Scale};
use ugc_telemetry::Collector;

fn measure_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    // A poisoned lock only means another test failed; the registry is
    // still usable.
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

fn workload_graph() -> Graph {
    Dataset::Pokec.generate(Scale::Tiny)
}

fn run_workload(target: Target, algo: Algorithm, graph: &Graph) {
    try_measure(target, algo, graph, baseline_schedule(target, algo), 1)
        .unwrap_or_else(|e| panic!("{}/{}: {e}", target.name(), algo.name()));
}

#[test]
fn attribution_components_sum_to_each_backends_total() {
    let _guard = measure_lock();
    let graph = workload_graph();
    for target in Target::ALL {
        let col = Collector::start();
        // The mix spans every operator family: push/pull traversals (BFS,
        // SSSP), dense sweeps (PR), neighbor intersection (TC), active-set
        // peeling via vertex filters (k-core), and min-reduction label
        // exchange (LP) — so attribution must balance for all of them.
        for algo in [
            Algorithm::PageRank,
            Algorithm::Bfs,
            Algorithm::Sssp,
            Algorithm::Tc,
            Algorithm::KCore,
            Algorithm::Lp,
        ] {
            run_workload(target, algo, &graph);
        }
        let attr = attribution_from(target, &col.snapshot());
        if ugc_telemetry::enabled() {
            assert!(attr.total > 0, "{}: nothing attributed", target.name());
            assert_eq!(
                attr.component_sum(),
                attr.total,
                "{}: components {:?} do not sum to total {}",
                target.name(),
                attr.components,
                attr.total
            );
        } else {
            assert_eq!(attr.total, 0);
            assert_eq!(attr.component_sum(), 0);
        }
    }
}

#[test]
fn counters_are_monotonic_across_iterations() {
    let _guard = measure_lock();
    let graph = workload_graph();
    let mut previous = ugc_telemetry::snapshot();
    for _ in 0..3 {
        for target in Target::ALL {
            run_workload(target, Algorithm::Bfs, &graph);
        }
        let current = ugc_telemetry::snapshot();
        for (name, value) in previous.entries() {
            let now = current.value(name);
            assert!(
                now >= *value,
                "counter `{name}` went backwards: {value} -> {now}"
            );
        }
        previous = current;
    }
}

#[test]
fn disabled_telemetry_keeps_registry_empty_and_results_intact() {
    let _guard = measure_lock();
    let graph = workload_graph();
    // The run must produce correct results in either mode...
    let mut c = ugc::Compiler::new(Algorithm::Bfs);
    c.start_vertex(0);
    let run = c.run(Target::Cpu, &graph).expect("runs");
    ugc_algorithms::validate::check_bfs_parents(&graph, 0, run.property_ints("parent"))
        .expect("valid BFS tree regardless of telemetry mode");
    // ...and with UGC_TELEMETRY=0 nothing may ever have been registered.
    if !ugc_telemetry::enabled() {
        assert!(
            ugc_telemetry::Registry::global().is_empty(),
            "disabled telemetry must register no counters"
        );
        assert!(ugc_telemetry::snapshot().is_empty());
    }
}

/// Serving accounting invariant: every query the admission gate accepts
/// settles as exactly one of served (`ok`), errored, or shed — so
/// `serve.ok + serve.errored + serve.shed.* == serve.admitted`, both on
/// the wire `stats` line and (when telemetry is on) in the registry
/// delta. The traffic mix deliberately spans all the ledger's columns:
/// clean queries, permanent errors (which also trip a circuit, adding
/// `err circuit_open` rejections to `errored`), and tight deadlines.
#[test]
fn serve_accounting_balances_served_plus_errored_plus_shed() {
    use std::io::{BufRead, BufReader, Write};

    let _guard = measure_lock();
    let col = Collector::start();
    let handle = ugc_serve::Server::start(ugc_serve::ServeConfig {
        bind: ugc_serve::Bind::Tcp(0),
        admit: 1,
        queue_cap: 32,
        ..ugc_serve::ServeConfig::default()
    })
    .expect("server starts");
    let addr = match handle.addr() {
        ugc_serve::ServeAddr::Tcp(a) => *a,
        other => panic!("expected TCP, bound {other}"),
    };
    let ask = |line: &str| -> String {
        let mut s = std::net::TcpStream::connect(addr).expect("connect");
        writeln!(s, "{line}").expect("send");
        s.flush().expect("flush");
        let mut reply = String::new();
        BufReader::new(s).read_line(&mut reply).expect("reply");
        reply.trim_end().to_string()
    };

    for q in [
        "query bfs RN source=0",
        "query sssp RN source=1",
        "query bfs RN source=0 deadline_ms=30000", // generous: executes
        "query bfs PK source=999999999",           // err permanent ×4 →
        "query bfs PK source=999999999",           //   the circuit opens,
        "query bfs PK source=999999999",           //   so the last one is
        "query bfs PK source=999999999",           //   err circuit_open
        "query cc RN",
    ] {
        let reply = ask(q);
        assert!(
            reply.starts_with("ok ") || reply.starts_with("err "),
            "`{q}` got an untyped reply: {reply}"
        );
    }

    let stats = ask("stats");
    let get = |key: &str| -> u64 {
        stats
            .split_whitespace()
            .find_map(|w| w.strip_prefix(&format!("{key}=")[..]))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("no `{key}=` in stats: {stats}"))
    };
    let settled = get("ok")
        + get("errored")
        + get("shed_deadline")
        + get("shed_overload")
        + get("shed_drain");
    assert_eq!(settled, get("admitted"), "wire stats imbalance: {stats}");
    assert!(
        get("errored") >= 4,
        "permanent errors must be in the ledger: {stats}"
    );

    ask("shutdown");
    handle.join();

    if ugc_telemetry::enabled() {
        let snap = col.snapshot();
        let sum = |keys: &[&str]| -> u64 { keys.iter().map(|k| snap.get(k).unwrap_or(0)).sum() };
        assert_eq!(
            sum(&[
                "serve.ok",
                "serve.errored",
                "serve.shed.deadline",
                "serve.shed.overload",
                "serve.shed.drain",
            ]),
            sum(&["serve.admitted"]),
            "registry delta imbalance: {snap:?}"
        );
        assert!(
            sum(&["serve.admitted"]) > 0,
            "the soak admitted nothing — the invariant was vacuous"
        );
    }
}

#[test]
fn simulator_snapshots_are_byte_stable_across_identical_runs() {
    let _guard = measure_lock();
    let graph = workload_graph();
    // Wall-clock counters (cpu.*, pool.*, frontend/midend spans) are
    // legitimately noisy; the simulators are deterministic and their
    // snapshots must match byte-for-byte between identical seeded runs.
    let sim_targets = [Target::Gpu, Target::Swarm, Target::HammerBlade];
    let mut passes = Vec::new();
    for _ in 0..2 {
        let mut lines = String::new();
        for target in sim_targets {
            let col = Collector::start();
            run_workload(target, Algorithm::Sssp, &graph);
            run_workload(target, Algorithm::Cc, &graph);
            lines.push_str(&col.snapshot_prefix(counter_prefix(target)).to_json_lines());
        }
        passes.push(lines);
    }
    assert_eq!(
        passes[0], passes[1],
        "simulator telemetry must be byte-stable across identical runs"
    );
    if ugc_telemetry::enabled() {
        assert!(!passes[0].is_empty());
        assert!(passes[0].lines().all(|l| l.starts_with("{\"counter\":\"")));
    } else {
        assert!(passes[0].is_empty());
    }
}
