//! Property-based tests on the graph substrate's invariants.

use proptest::prelude::*;
use ugc_graph::{Csr, EdgeList, Graph};

/// Strategy: a vertex count and a set of in-range edges.
fn edges_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..64).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        (Just(n), proptest::collection::vec(edge, 0..256))
    })
}

proptest! {
    #[test]
    fn csr_preserves_edge_multiset((n, edges) in edges_strategy()) {
        let csr = Csr::from_edges(n, &edges);
        prop_assert_eq!(csr.num_edges(), edges.len());
        let mut expect = edges.clone();
        expect.sort_unstable();
        let mut got: Vec<(u32, u32)> = csr.iter_edges().map(|(s, d, _)| (s, d)).collect();
        got.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn degrees_sum_to_edge_count((n, edges) in edges_strategy()) {
        let csr = Csr::from_edges(n, &edges);
        let total: usize = (0..n as u32).map(|v| csr.degree(v)).sum();
        prop_assert_eq!(total, edges.len());
    }

    #[test]
    fn transpose_is_involution((n, edges) in edges_strategy()) {
        let csr = Csr::from_edges(n, &edges);
        prop_assert_eq!(csr.transpose().transpose(), csr);
    }

    #[test]
    fn transpose_preserves_edge_count((n, edges) in edges_strategy()) {
        let csr = Csr::from_edges(n, &edges);
        let t = csr.transpose();
        prop_assert_eq!(t.num_edges(), csr.num_edges());
        // Every edge reversed is present.
        for (s, d, _) in csr.iter_edges() {
            prop_assert!(t.neighbors(d).contains(&s));
        }
    }

    #[test]
    fn in_degree_equals_incoming_edges((n, edges) in edges_strategy()) {
        let g = Graph::from_edges(n, &edges);
        for v in 0..n as u32 {
            let expect = edges.iter().filter(|&&(_, d)| d == v).count();
            prop_assert_eq!(g.in_degree(v), expect);
        }
    }

    #[test]
    fn symmetrize_makes_symmetric((n, edges) in edges_strategy()) {
        let mut el = EdgeList::new(n);
        for &(s, d) in &edges {
            el.push(s, d);
        }
        el.symmetrize();
        el.dedup_and_strip_loops();
        let g = el.into_graph();
        for v in 0..n as u32 {
            for &u in g.out_neighbors(v) {
                prop_assert!(g.out_neighbors(u).contains(&v), "missing {u}->{v}");
            }
        }
    }

    #[test]
    fn dedup_removes_all_duplicates((n, edges) in edges_strategy()) {
        let mut el = EdgeList::new(n);
        for &(s, d) in &edges {
            el.push(s, d);
            el.push(s, d); // force duplicates
        }
        el.dedup_and_strip_loops();
        let mut seen = std::collections::HashSet::new();
        for &(s, d, _) in el.edges() {
            prop_assert!(s != d, "self loop survived");
            prop_assert!(seen.insert((s, d)), "duplicate ({s},{d}) survived");
        }
    }

    #[test]
    fn io_round_trip((n, edges) in edges_strategy()) {
        let g = Graph::from_edges(n.max(1), &edges);
        let mut buf = Vec::new();
        ugc_graph::io::write_edge_list(&g, &mut buf).unwrap();
        if g.num_edges() > 0 {
            let g2 = ugc_graph::io::read_edge_list(buf.as_slice()).unwrap();
            prop_assert_eq!(g.out_csr().targets(), g2.out_csr().targets());
        }
    }

    #[test]
    fn rmat_deterministic_for_seed(seed in 0u64..500) {
        let a = ugc_graph::generators::rmat(6, 4, seed, true);
        let b = ugc_graph::generators::rmat(6, 4, seed, true);
        prop_assert_eq!(a.out_csr().targets(), b.out_csr().targets());
        prop_assert_eq!(a.out_csr().weights(), b.out_csr().weights());
    }
}
