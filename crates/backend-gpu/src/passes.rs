//! GPU-specific GraphIR passes (paper §III-C2, "Code generation for kernel
//! fusion").
//!
//! The kernel-fusion pass scans `while` loops: when an inner
//! `EdgeSetIterator`'s attached [`GpuSchedule`] requests fusion, the loop
//! statement is marked [`keys::NEEDS_FUSION`] and the loop-local variables
//! are recorded as [`keys::HOISTED_VARS`] (the paper hoists these into
//! device-resident state so the megakernel never returns to the host).

use ugc_graphir::ir::{Program, Stmt, StmtKind};
use ugc_graphir::keys;
use ugc_graphir::visit::{walk_stmts, walk_stmts_mut};
use ugc_schedule::schedule_of;

use crate::schedule::GpuSchedule;

/// Runs the GPU GraphVM's hardware-specific passes.
pub fn run(prog: &mut Program) {
    mark_fusion(prog);
}

/// Marks fusable loops. See the module docs.
pub fn mark_fusion(prog: &mut Program) {
    walk_stmts_mut(&mut prog.main, &mut |s| {
        if let StmtKind::While { body, .. } = &s.kind {
            let mut wants_fusion = false;
            let mut wants_async = false;
            let mut hoisted: Vec<String> = Vec::new();
            walk_stmts(body, &mut |inner: &Stmt| {
                if matches!(
                    inner.kind,
                    StmtKind::EdgeSetIterator(_) | StmtKind::VertexSetIterator { .. }
                ) {
                    if let Some(sched) = schedule_of(inner) {
                        if let Some(simple) = sched.as_simple() {
                            if let Some(g) = simple.as_any().downcast_ref::<GpuSchedule>() {
                                wants_fusion |= g.kernel_fusion();
                                wants_async |= g.async_execution();
                            }
                        }
                    }
                }
                match &inner.kind {
                    StmtKind::VarDecl { name, .. } => hoisted.push(name.clone()),
                    StmtKind::EdgeSetIterator(d) => {
                        if let Some(o) = &d.output {
                            hoisted.push(o.clone());
                        }
                    }
                    _ => {}
                }
            });
            if wants_fusion {
                s.meta.set(keys::NEEDS_FUSION, true);
                s.meta.set(keys::HOISTED_VARS, hoisted);
            }
            if wants_async {
                s.meta.set("async_execution", true);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugc_schedule::{apply_schedule, ScheduleRef};

    const BFS: &str = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load("g");
const parent : vector{Vertex}(int) = -1;
const start_vertex : Vertex;
func updateEdge(src : Vertex, dst : Vertex)
    parent[dst] = src;
end
func main()
    var frontier : vertexset{Vertex} = new vertexset{Vertex}(0);
    frontier.addVertex(start_vertex);
    #s0# while (frontier.getVertexSetSize() != 0)
        #s1# var output : vertexset{Vertex} = edges.from(frontier).applyModified(updateEdge, parent, true);
        delete frontier;
        frontier = output;
    end
end
"#;

    #[test]
    fn fusion_marked_when_schedule_requests() {
        let mut p = ugc_midend::frontend_to_ir(BFS).unwrap();
        apply_schedule(
            &mut p,
            "s0:s1",
            ScheduleRef::simple(GpuSchedule::new().with_kernel_fusion(true)),
        )
        .unwrap();
        ugc_midend::run_passes(&mut p).unwrap();
        run(&mut p);
        let s0 = ugc_graphir::visit::find_labeled(&p, "s0").unwrap();
        assert!(s0.meta.flag(keys::NEEDS_FUSION));
        let hoisted = s0.meta.get_str_list(keys::HOISTED_VARS).unwrap();
        assert!(hoisted.contains(&"output".to_string()), "{hoisted:?}");
    }

    #[test]
    fn no_fusion_without_request() {
        let mut p = ugc_midend::frontend_to_ir(BFS).unwrap();
        apply_schedule(&mut p, "s0:s1", ScheduleRef::simple(GpuSchedule::new())).unwrap();
        ugc_midend::run_passes(&mut p).unwrap();
        run(&mut p);
        let s0 = ugc_graphir::visit::find_labeled(&p, "s0").unwrap();
        assert!(!s0.meta.flag(keys::NEEDS_FUSION));
    }
}
