//! Deterministic synthetic graph generators.
//!
//! All generators take an explicit seed and produce identical graphs on every
//! run, which keeps benchmarks and tests reproducible. Two families matter
//! for the paper's evaluation:
//!
//! * **Power-law graphs** ([`rmat`]) stand in for the social/web graphs
//!   (Orkut, Twitter, LiveJournal, …): a few very-high-degree hubs, low
//!   diameter.
//! * **Road-like graphs** ([`road_grid`]) stand in for RoadUSA/RoadNetCA/
//!   RoadCentral: bounded degree, huge diameter.

use crate::prng::Prng;
use crate::{EdgeList, Graph, VertexId, Weight};

/// Maximum random edge weight produced by the weighted generators.
pub const MAX_WEIGHT: Weight = 64;

/// R-MAT recursive-matrix generator (Chakrabarti et al.), the standard
/// power-law graph model (Graph500 uses a=0.57, b=c=0.19).
///
/// Produces `num_vertices * edge_factor` directed edges, then symmetrizes and
/// deduplicates, matching the undirected convention of Table VIII (each edge
/// counted once per direction).
///
/// # Example
///
/// ```
/// use ugc_graph::generators::rmat;
///
/// let g = rmat(10, 8, 42, false); // 2^10 vertices, ~8 * 2^10 edges
/// assert_eq!(g.num_vertices(), 1024);
/// assert!(g.num_edges() > 1024);
/// ```
pub fn rmat(scale: u32, edge_factor: usize, seed: u64, weighted: bool) -> Graph {
    let n = 1usize << scale;
    let mut rng = Prng::new(seed);
    let (a, b, c) = (0.57, 0.19, 0.19);
    let mut el = EdgeList::new(n);
    let target = n * edge_factor;
    for _ in 0..target {
        let (mut x0, mut x1) = (0usize, n - 1);
        let (mut y0, mut y1) = (0usize, n - 1);
        while x0 < x1 {
            // Add noise per level so degrees smooth out (standard practice).
            let r: f64 = rng.gen_f64();
            let (da, db, dc) = (
                a * (0.9 + 0.2 * rng.gen_f64()),
                b * (0.9 + 0.2 * rng.gen_f64()),
                c * (0.9 + 0.2 * rng.gen_f64()),
            );
            let norm = da + db + dc + (1.0 - a - b - c);
            let (pa, pb, pc) = (da / norm, db / norm, dc / norm);
            let xm = (x0 + x1) / 2;
            let ym = (y0 + y1) / 2;
            if r < pa {
                x1 = xm;
                y1 = ym;
            } else if r < pa + pb {
                x1 = xm;
                y0 = ym + 1;
            } else if r < pa + pb + pc {
                x0 = xm + 1;
                y1 = ym;
            } else {
                x0 = xm + 1;
                y0 = ym + 1;
            }
        }
        let (s, d) = (x0 as VertexId, y0 as VertexId);
        if weighted {
            el.push_weighted(s, d, rng.gen_range(1..=MAX_WEIGHT));
        } else {
            el.push(s, d);
        }
    }
    el.symmetrize();
    el.dedup_and_strip_loops();
    el.into_graph()
}

/// Road-network-like generator: a `width × height` grid where each vertex
/// connects to its right and down neighbors, plus a sprinkling of random
/// "highway" diagonals (`extra_fraction` of the grid edges). High diameter,
/// degree ≤ ~6 — the structural profile of the DIMACS road graphs.
///
/// # Example
///
/// ```
/// use ugc_graph::generators::road_grid;
///
/// let g = road_grid(16, 16, 0.05, 7, true);
/// assert_eq!(g.num_vertices(), 256);
/// assert!(g.is_weighted());
/// ```
pub fn road_grid(
    width: usize,
    height: usize,
    extra_fraction: f64,
    seed: u64,
    weighted: bool,
) -> Graph {
    let n = width * height;
    let mut rng = Prng::new(seed);
    let mut el = EdgeList::new(n);
    let idx = |x: usize, y: usize| (y * width + x) as VertexId;
    let push = |el: &mut EdgeList, s: VertexId, d: VertexId, rng: &mut Prng| {
        if weighted {
            el.push_weighted(s, d, rng.gen_range(1..=MAX_WEIGHT));
        } else {
            el.push(s, d);
        }
    };
    for y in 0..height {
        for x in 0..width {
            if x + 1 < width {
                push(&mut el, idx(x, y), idx(x + 1, y), &mut rng);
            }
            if y + 1 < height {
                push(&mut el, idx(x, y), idx(x, y + 1), &mut rng);
            }
        }
    }
    let extras = ((el.len() as f64) * extra_fraction) as usize;
    for _ in 0..extras {
        let s = rng.gen_range(0..n) as VertexId;
        // Short-range shortcut: jump a few rows/columns away, like ramps.
        let dx = rng.gen_range(0..width.min(8));
        let dy = rng.gen_range(0..height.min(8));
        let d = ((s as usize + dy * width + dx) % n) as VertexId;
        if s != d {
            push(&mut el, s, d, &mut rng);
        }
    }
    el.symmetrize();
    el.dedup_and_strip_loops();
    el.into_graph()
}

/// Uniform random graph with `num_edges` directed edges drawn uniformly
/// (Erdős–Rényi G(n, m) style), symmetrized and deduplicated.
pub fn uniform_random(num_vertices: usize, num_edges: usize, seed: u64, weighted: bool) -> Graph {
    let mut rng = Prng::new(seed);
    let mut el = EdgeList::new(num_vertices);
    for _ in 0..num_edges {
        let s = rng.gen_range(0..num_vertices) as VertexId;
        let d = rng.gen_range(0..num_vertices) as VertexId;
        if weighted {
            el.push_weighted(s, d, rng.gen_range(1..=MAX_WEIGHT));
        } else {
            el.push(s, d);
        }
    }
    el.symmetrize();
    el.dedup_and_strip_loops();
    el.into_graph()
}

/// A directed path `0 -> 1 -> … -> n-1`. Useful as a worst-case-diameter
/// fixture.
pub fn path(num_vertices: usize) -> Graph {
    let edges: Vec<_> = (0..num_vertices.saturating_sub(1))
        .map(|i| (i as VertexId, (i + 1) as VertexId))
        .collect();
    Graph::from_edges(num_vertices, &edges)
}

/// A star: vertex 0 connects to every other vertex (both directions). The
/// canonical load-imbalance fixture.
pub fn star(num_vertices: usize) -> Graph {
    let mut edges = Vec::new();
    for i in 1..num_vertices {
        edges.push((0, i as VertexId));
        edges.push((i as VertexId, 0));
    }
    Graph::from_edges(num_vertices, &edges)
}

/// A complete directed graph on `n` vertices (no self loops).
pub fn complete(n: usize) -> Graph {
    let mut edges = Vec::new();
    for s in 0..n {
        for d in 0..n {
            if s != d {
                edges.push((s as VertexId, d as VertexId));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// A batch of `count` disjoint `k`-cliques (each symmetric, no self
/// loops). Maximizes triangles per edge: every clique contributes
/// `C(k,3)` triangles, and every vertex has coreness `k-1`.
pub fn clique_batch(count: usize, k: usize) -> Graph {
    let mut edges = Vec::new();
    for c in 0..count {
        let base = c * k;
        for s in 0..k {
            for d in 0..k {
                if s != d {
                    edges.push(((base + s) as VertexId, (base + d) as VertexId));
                }
            }
        }
    }
    Graph::from_edges(count * k, &edges)
}

/// A barbell: two `k`-cliques joined by a path of `bridge` vertices.
/// The k-core peeling cascade strips the bridge (coreness 1 or 2) before
/// settling the cliques at coreness `k-1`.
pub fn barbell(k: usize, bridge: usize) -> Graph {
    let n = 2 * k + bridge;
    let mut el = EdgeList::new(n);
    let undirected = |el: &mut EdgeList, s: usize, d: usize| {
        el.push(s as VertexId, d as VertexId);
        el.push(d as VertexId, s as VertexId);
    };
    for base in [0, k + bridge] {
        for s in 0..k {
            for d in (s + 1)..k {
                undirected(&mut el, base + s, base + d);
            }
        }
    }
    // Chain: last vertex of clique A — bridge vertices — first of clique B.
    let mut prev = k - 1;
    for b in 0..bridge {
        undirected(&mut el, prev, k + b);
        prev = k + b;
    }
    undirected(&mut el, prev, k + bridge);
    el.into_graph()
}

/// A complete bipartite graph `K(left, right)` (symmetric). Triangle-free
/// by construction, and its connected LP fixpoints are two-colorings:
/// the adversarial case for label-propagation oscillation.
pub fn bipartite(left: usize, right: usize) -> Graph {
    let mut edges = Vec::new();
    for l in 0..left {
        for r in 0..right {
            let (a, b) = (l as VertexId, (left + r) as VertexId);
            edges.push((a, b));
            edges.push((b, a));
        }
    }
    Graph::from_edges(left + right, &edges)
}

/// A small fixed 8-vertex graph with two communities joined by a bridge —
/// handy in unit tests where exact results are asserted.
///
/// Structure (undirected, weight = index+1 in push order):
/// community A = {0,1,2,3} (cycle + chord), community B = {4,5,6,7}
/// (cycle + chord), bridge 3–4.
pub fn two_communities() -> Graph {
    let und = [
        (0, 1),
        (1, 2),
        (2, 3),
        (3, 0),
        (0, 2),
        (4, 5),
        (5, 6),
        (6, 7),
        (7, 4),
        (5, 7),
        (3, 4),
    ];
    let mut el = EdgeList::new(8);
    for (i, &(s, d)) in und.iter().enumerate() {
        el.push_weighted(s, d, (i + 1) as Weight);
        el.push_weighted(d, s, (i + 1) as Weight);
    }
    el.into_graph()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn rmat_is_deterministic() {
        let a = rmat(8, 4, 1, false);
        let b = rmat(8, 4, 1, false);
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.out_csr().targets(), b.out_csr().targets());
    }

    #[test]
    fn rmat_different_seed_differs() {
        let a = rmat(8, 4, 1, false);
        let b = rmat(8, 4, 2, false);
        assert_ne!(a.out_csr().targets(), b.out_csr().targets());
    }

    #[test]
    fn rmat_is_symmetric() {
        let g = rmat(7, 4, 3, false);
        for v in 0..g.num_vertices() as VertexId {
            for &u in g.out_neighbors(v) {
                assert!(
                    g.out_neighbors(u).contains(&v),
                    "missing reverse of ({v},{u})"
                );
            }
        }
    }

    #[test]
    fn rmat_is_power_law_ish() {
        let g = rmat(10, 8, 5, false);
        let s = stats::degree_stats(&g);
        // Hubs should be far above the mean degree.
        assert!(s.max_degree as f64 > 8.0 * s.avg_degree, "{s:?}");
    }

    #[test]
    fn road_grid_bounded_degree_high_diameter() {
        let g = road_grid(32, 32, 0.05, 9, true);
        let s = stats::degree_stats(&g);
        assert!(s.max_degree <= 16, "road degree too high: {s:?}");
        assert_eq!(g.num_vertices(), 1024);
        assert!(g.is_weighted());
    }

    #[test]
    fn road_grid_weights_in_range() {
        let g = road_grid(8, 8, 0.1, 2, true);
        for (_, _, w) in g.out_csr().iter_edges() {
            assert!((1..=MAX_WEIGHT).contains(&w));
        }
    }

    #[test]
    fn uniform_random_edge_count_close() {
        let g = uniform_random(100, 500, 11, false);
        // Symmetrized then deduped: between 500 and 1000 directed edges.
        assert!(
            g.num_edges() > 400 && g.num_edges() <= 1000,
            "{}",
            g.num_edges()
        );
    }

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_neighbors(0), &[1]);
        assert_eq!(g.out_degree(4), 0);
    }

    #[test]
    fn star_shape() {
        let g = star(5);
        assert_eq!(g.out_degree(0), 4);
        assert_eq!(g.out_degree(3), 1);
    }

    #[test]
    fn complete_shape() {
        let g = complete(4);
        assert_eq!(g.num_edges(), 12);
        assert_eq!(g.out_degree(2), 3);
    }

    #[test]
    fn clique_batch_shape() {
        let g = clique_batch(3, 4);
        assert_eq!(g.num_vertices(), 12);
        // 3 cliques × k(k-1) directed edges.
        assert_eq!(g.num_edges(), 3 * 12);
        assert!(g.out_neighbors(0).contains(&3));
        assert!(!g.out_neighbors(0).contains(&4));
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(4, 2);
        assert_eq!(g.num_vertices(), 10);
        // Clique members have degree 3 (+1 for the attachment points).
        assert_eq!(g.out_degree(1), 3);
        assert_eq!(g.out_degree(3), 4);
        // Bridge vertices have degree 2.
        assert_eq!(g.out_degree(4), 2);
        assert_eq!(g.out_degree(5), 2);
    }

    #[test]
    fn bipartite_is_triangle_free() {
        let g = bipartite(3, 4);
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 2 * 12);
        for v in 0..g.num_vertices() as VertexId {
            for &u in g.out_neighbors(v) {
                assert_eq!(g.out_csr().intersect_count(v, u), 0);
            }
        }
    }

    #[test]
    fn two_communities_bridge() {
        let g = two_communities();
        assert_eq!(g.num_vertices(), 8);
        assert!(g.out_neighbors(3).contains(&4));
        assert!(g.is_weighted());
    }
}
