#![warn(missing_docs)]

//! In-tree property-based testing harness.
//!
//! A hermetic, std-only replacement for the `proptest` crate, so the
//! workspace builds and tests offline with zero external dependencies. It
//! keeps the three ingredients the seed tests actually used:
//!
//! * **Seeded case generation** — every test derives one independent,
//!   reproducible [`Prng`] stream per case from a base seed
//!   (overridable via `UGC_TESTKIT_SEED`), so failures replay exactly.
//! * **Failure reporting** — a failing property panics with the base seed,
//!   case index, original and shrunk inputs, and the inner panic message.
//! * **Bounded shrinking** — on failure the input is shrunk toward a
//!   smaller counterexample via the [`Shrink`] trait (or a custom
//!   shrinker), capped at [`Config::max_shrink_steps`] steps.
//!
//! # Example
//!
//! ```
//! use ugc_testkit::{check, Config, Prng};
//!
//! check(
//!     "reverse_is_involution",
//!     Config::default(),
//!     |rng: &mut Prng| {
//!         let len = rng.gen_range(0..32usize);
//!         (0..len).map(|_| rng.gen_range(0..100u32)).collect::<Vec<u32>>()
//!     },
//!     |v| {
//!         let mut w = v.clone();
//!         w.reverse();
//!         w.reverse();
//!         assert_eq!(&w, v);
//!     },
//! );
//! ```

use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};

pub use ugc_graph::prng::{Prng, SplitMix64};

/// Knobs for a property run. `UGC_TESTKIT_SEED` and `UGC_TESTKIT_CASES`
/// environment variables override the defaults, which is how a failure
/// printed by the reporter is replayed.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Base seed; case `i` uses the independent stream `(seed, i)`.
    pub seed: u64,
    /// Maximum accepted shrink steps before reporting.
    pub max_shrink_steps: u32,
}

impl Default for Config {
    fn default() -> Self {
        let seed = env_u64("UGC_TESTKIT_SEED").unwrap_or(0x5EED_CAFE);
        let cases = env_u64("UGC_TESTKIT_CASES").unwrap_or(64) as u32;
        Self {
            cases,
            seed,
            max_shrink_steps: 512,
        }
    }
}

impl Config {
    /// A config running `cases` cases (other fields default).
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok()?.trim().parse().ok()
}

/// Types that can propose strictly-simpler variants of themselves.
///
/// Candidates should be ordered simplest-first and must be "smaller" by
/// some well-founded measure so shrinking terminates; the harness
/// additionally bounds the number of accepted steps.
pub trait Shrink: Sized {
    /// Returns candidate simplifications of `self` (possibly empty).
    fn shrink(&self) -> Vec<Self>;
}

macro_rules! impl_shrink_int {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let v = *self;
                let mut out = Vec::new();
                if v == 0 {
                    return out;
                }
                out.push(0);
                if v / 2 != 0 && v / 2 != v {
                    out.push(v / 2);
                }
                if v > 0 {
                    out.push(v - 1);
                }
                out.dedup();
                out
            }
        }
    )*};
}

impl_shrink_int!(usize, u64, u32, u16, u8);

macro_rules! impl_shrink_signed {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let v = *self;
                let mut out = Vec::new();
                if v == 0 {
                    return out;
                }
                out.push(0);
                if v < 0 && v != <$t>::MIN {
                    out.push(-v);
                }
                if v / 2 != 0 && v / 2 != v {
                    out.push(v / 2);
                }
                out.dedup();
                out
            }
        }
    )*};
}

impl_shrink_signed!(isize, i64, i32, i16, i8);

impl Shrink for bool {
    fn shrink(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            vec![]
        }
    }
}

impl<T: Clone + Shrink> Shrink for Vec<T> {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        if self.is_empty() {
            return out;
        }
        // Structural shrinks first: drop whole chunks (empty, halves),
        // then drop single elements, then shrink individual elements.
        out.push(Vec::new());
        if self.len() > 1 {
            out.push(self[..self.len() / 2].to_vec());
            out.push(self[self.len() / 2..].to_vec());
        }
        for i in 0..self.len().min(8) {
            let mut v = self.clone();
            v.remove(i);
            out.push(v);
        }
        for i in 0..self.len().min(4) {
            for cand in self[i].shrink() {
                let mut v = self.clone();
                v[i] = cand;
                out.push(v);
            }
        }
        out
    }
}

impl<A: Clone + Shrink, B: Clone + Shrink> Shrink for (A, B) {
    fn shrink(&self) -> Vec<Self> {
        let mut out: Vec<Self> = self
            .0
            .shrink()
            .into_iter()
            .map(|a| (a, self.1.clone()))
            .collect();
        out.extend(self.1.shrink().into_iter().map(|b| (self.0.clone(), b)));
        out
    }
}

impl<A: Clone + Shrink, B: Clone + Shrink, C: Clone + Shrink> Shrink for (A, B, C) {
    fn shrink(&self) -> Vec<Self> {
        let mut out: Vec<Self> = self
            .0
            .shrink()
            .into_iter()
            .map(|a| (a, self.1.clone(), self.2.clone()))
            .collect();
        out.extend(
            self.1
                .shrink()
                .into_iter()
                .map(|b| (self.0.clone(), b, self.2.clone())),
        );
        out.extend(
            self.2
                .shrink()
                .into_iter()
                .map(|c| (self.0.clone(), self.1.clone(), c)),
        );
        out
    }
}

/// Wrapper that disables shrinking for its contents (used when no
/// meaningful simplification order exists).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NoShrink<T>(pub T);

impl<T> Shrink for NoShrink<T>
where
    T: Clone,
{
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

/// Runs `prop` against [`Config::cases`] inputs drawn from `gen`, shrinking
/// failures with [`Shrink`]. Panics (with a replayable report) on the first
/// failing case.
pub fn check<T, G, P>(name: &str, cfg: Config, gen: G, prop: P)
where
    T: Debug + Clone + Shrink,
    G: Fn(&mut Prng) -> T,
    P: Fn(&T),
{
    check_with_shrink(name, cfg, gen, |v| v.shrink(), prop);
}

/// Like [`check`] but with an explicit shrinker, for inputs whose validity
/// invariants the generic [`Shrink`] impls would not preserve (e.g. keep a
/// vertex count fixed while only removing edges).
pub fn check_with_shrink<T, G, S, P>(name: &str, cfg: Config, gen: G, shrink: S, prop: P)
where
    T: Debug + Clone,
    G: Fn(&mut Prng) -> T,
    S: Fn(&T) -> Vec<T>,
    P: Fn(&T),
{
    for case in 0..cfg.cases {
        let mut rng = Prng::with_stream(cfg.seed, case as u64);
        let input = gen(&mut rng);
        if let Err(payload) = run_one(&prop, &input) {
            let (shrunk, steps) =
                shrink_failure(&shrink, &prop, input.clone(), cfg.max_shrink_steps);
            let msg = payload_message(&payload);
            panic!(
                "property '{name}' failed\n\
                 \x20 base seed : {seed} (replay: UGC_TESTKIT_SEED={seed})\n\
                 \x20 case      : {case} of {cases}\n\
                 \x20 original  : {input:?}\n\
                 \x20 shrunk    : {shrunk:?} (after {steps} accepted shrink steps)\n\
                 \x20 panic     : {msg}",
                seed = cfg.seed,
                cases = cfg.cases,
            );
        }
    }
}

/// Runs the property once, catching panics. `Ok(())` means it passed.
fn run_one<T, P: Fn(&T)>(prop: &P, input: &T) -> Result<(), Box<dyn std::any::Any + Send>> {
    let hook = PanicHookSilencer::engage();
    let r = catch_unwind(AssertUnwindSafe(|| prop(input)));
    drop(hook);
    r.map(|_| ())
}

/// Greedy first-fit shrinking: repeatedly take the first candidate that
/// still fails, up to `max_steps` accepted steps.
fn shrink_failure<T, S, P>(shrink: &S, prop: &P, mut current: T, max_steps: u32) -> (T, u32)
where
    T: Debug + Clone,
    S: Fn(&T) -> Vec<T>,
    P: Fn(&T),
{
    let mut steps = 0;
    'outer: while steps < max_steps {
        for cand in shrink(&current) {
            if run_one(prop, &cand).is_err() {
                current = cand;
                steps += 1;
                continue 'outer;
            }
        }
        break; // local minimum: no candidate still fails
    }
    (current, steps)
}

fn payload_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Suppresses the default "thread panicked at" stderr spam while the
/// harness probes shrink candidates (hundreds of expected panics).
///
/// The hook is global to the process, and `cargo test` runs tests on many
/// threads, so the silencer keeps a refcount: the hook is replaced when the
/// first silencer engages and restored when the last disengages. Panics
/// from non-harness threads during that window still abort their test via
/// `catch_unwind`-less propagation; only the *printing* is suppressed.
struct PanicHookSilencer;

static SILENCE: std::sync::Mutex<u32> = std::sync::Mutex::new(0);

impl PanicHookSilencer {
    fn engage() -> Self {
        let mut n = SILENCE.lock().unwrap();
        if *n == 0 {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if *SILENCE.lock().unwrap() == 0 {
                    prev(info);
                }
            }));
        }
        *n += 1;
        PanicHookSilencer
    }
}

impl Drop for PanicHookSilencer {
    fn drop(&mut self) {
        let mut n = SILENCE.lock().unwrap();
        *n -= 1;
        // The replacement hook stays installed; with the count at zero it
        // delegates to the previous hook, so behavior is transparent.
    }
}

/// Common generator combinators.
pub mod gen {
    use super::Prng;

    /// A `Vec` of `len_range`-many elements drawn from `f`.
    pub fn vec_of<T>(
        rng: &mut Prng,
        len_range: std::ops::Range<usize>,
        mut f: impl FnMut(&mut Prng) -> T,
    ) -> Vec<T> {
        let len = rng.gen_range(len_range);
        (0..len).map(|_| f(rng)).collect()
    }

    /// One element of `choices`, uniformly.
    pub fn one_of<T: Copy>(rng: &mut Prng, choices: &[T]) -> T {
        choices[rng.gen_range(0..choices.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut seen = 0u32;
        let counter = std::cell::Cell::new(0u32);
        check(
            "always_true",
            Config {
                cases: 17,
                seed: 1,
                max_shrink_steps: 16,
            },
            |rng| rng.gen_range(0..100u32),
            |_| {
                counter.set(counter.get() + 1);
            },
        );
        seen += counter.get();
        assert_eq!(seen, 17);
    }

    #[test]
    fn cases_are_reproducible_per_seed() {
        let collect = |seed| {
            let vals = std::cell::RefCell::new(Vec::new());
            check(
                "collect",
                Config {
                    cases: 8,
                    seed,
                    max_shrink_steps: 0,
                },
                |rng| rng.gen_u64(),
                |v| vals.borrow_mut().push(*v),
            );
            vals.into_inner()
        };
        assert_eq!(collect(42), collect(42));
        assert_ne!(collect(42), collect(43));
    }

    #[test]
    fn failing_property_reports_and_shrinks() {
        let r = std::panic::catch_unwind(|| {
            check(
                "has_no_big_element",
                Config {
                    cases: 64,
                    seed: 7,
                    max_shrink_steps: 256,
                },
                |rng| {
                    let len = rng.gen_range(1..20usize);
                    (0..len)
                        .map(|_| rng.gen_range(0..100u32))
                        .collect::<Vec<u32>>()
                },
                |v| assert!(v.iter().all(|&x| x < 50), "found big element"),
            );
        });
        let msg = payload_message(&r.expect_err("property must fail"));
        assert!(msg.contains("has_no_big_element"), "{msg}");
        assert!(msg.contains("UGC_TESTKIT_SEED=7"), "{msg}");
        assert!(msg.contains("found big element"), "{msg}");
        // Greedy shrinking over this input space converges to one element.
        assert!(msg.contains("shrunk    : [50]"), "{msg}");
    }

    #[test]
    fn custom_shrinker_preserves_invariants() {
        // n stays fixed; only members shrink.
        let r = std::panic::catch_unwind(|| {
            check_with_shrink(
                "members_short",
                Config {
                    cases: 32,
                    seed: 3,
                    max_shrink_steps: 128,
                },
                |rng| {
                    let n = rng.gen_range(50..60usize);
                    let members = gen::vec_of(rng, 0..40, |r| r.gen_range(0..50u32));
                    (n, members)
                },
                |(n, members)| {
                    members
                        .shrink()
                        .into_iter()
                        .map(|m| (*n, m))
                        .collect::<Vec<_>>()
                },
                |(n, members)| {
                    assert!(*n >= 50, "invariant broken by shrinking");
                    assert!(members.len() < 30, "too many members");
                },
            );
        });
        let msg = payload_message(&r.expect_err("property must fail"));
        assert!(msg.contains("too many members"), "{msg}");
        assert!(!msg.contains("invariant broken"), "{msg}");
    }

    #[test]
    fn int_shrink_is_well_founded() {
        // Every candidate is strictly smaller in magnitude, so shrinking
        // terminates without the step bound.
        for v in [1u32, 2, 17, u32::MAX] {
            for c in v.shrink() {
                assert!(c < v);
            }
        }
        for v in [-1i32, -2, 5, i32::MIN + 1] {
            for c in v.shrink() {
                assert!(c.unsigned_abs() < v.unsigned_abs() || (c >= 0 && v < 0));
            }
        }
    }

    #[test]
    fn noshrink_never_shrinks() {
        assert!(NoShrink(vec![1, 2, 3]).shrink().is_empty());
    }
}
