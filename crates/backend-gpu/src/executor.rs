//! The GPU operator executor: lowers operators to simulator kernels.

use std::cell::RefCell;

use ugc_graph::Csr;
use ugc_graphir::ir::{EdgeSetIteratorData, Stmt, StmtKind};
use ugc_graphir::keys;
use ugc_graphir::types::{Direction, VertexSetRepr};
use ugc_runtime::eval::{BufferedOutput, EdgeCtx, Evaluator, MemoryModel, NullOutput};
use ugc_runtime::interp::{run_block, ExecError, OperatorExecutor, ProgramState};
use ugc_runtime::properties::PropId;
use ugc_runtime::value::Value;
use ugc_runtime::vertexset::VertexSet;
use ugc_runtime::UdfId;
use ugc_schedule::schedule_of;
use ugc_sim_gpu::{AccessKind, GpuSim, LaneTrace, MemAccess, WarpTrace};

use crate::load_balance::{self, LoadBalance, WarpAssignment};
use crate::schedule::{FrontierCreation, GpuSchedule};

/// Synthetic array ids for graph structure and frontier buffers (property
/// ids are small, so these never collide).
pub mod arrays {
    /// CSR offsets of the traversal direction in use.
    pub const GRAPH_OFFSETS: u32 = 0x100;
    /// CSR targets.
    pub const GRAPH_TARGETS: u32 = 0x101;
    /// CSR weights.
    pub const GRAPH_WEIGHTS: u32 = 0x102;
    /// Sparse input frontier array.
    pub const FRONTIER_IN: u32 = 0x110;
    /// Sparse output frontier array.
    pub const FRONTIER_OUT: u32 = 0x111;
    /// Output cursor for fused frontier creation.
    pub const FRONTIER_CURSOR: u32 = 0x112;
    /// Bool/bitmap marking buffer (unfused creation, pull membership).
    pub const FRONTIER_MAP: u32 = 0x113;
}

/// Records one lane's memory behaviour while the evaluator runs.
#[derive(Default)]
struct LaneRecorder {
    trace: LaneTrace,
}

impl MemoryModel for LaneRecorder {
    fn load(&mut self, prop: PropId, idx: u32) {
        self.trace.mem.push(MemAccess {
            kind: AccessKind::Load,
            prop: prop.0 as u32,
            idx,
        });
    }
    fn store(&mut self, prop: PropId, idx: u32) {
        self.trace.mem.push(MemAccess {
            kind: AccessKind::Store,
            prop: prop.0 as u32,
            idx,
        });
    }
    fn atomic(&mut self, prop: PropId, idx: u32) {
        self.trace.mem.push(MemAccess {
            kind: AccessKind::Atomic,
            prop: prop.0 as u32,
            idx,
        });
    }
    fn compute(&mut self, n: u32) {
        self.trace.computes += n;
    }
}

impl LaneRecorder {
    fn raw(&mut self, kind: AccessKind, prop: u32, idx: u32) {
        self.trace.mem.push(MemAccess { kind, prop, idx });
    }
}

/// Executes GraphIR operators as simulated GPU kernels.
#[derive(Debug)]
pub struct GpuExecutor {
    /// The simulated device.
    pub sim: GpuSim,
    fused_depth: u32,
}

impl GpuExecutor {
    /// Creates an executor over a fresh simulator.
    pub fn new(sim: GpuSim) -> Self {
        GpuExecutor {
            sim,
            fused_depth: 0,
        }
    }

    fn fused(&self) -> bool {
        self.fused_depth > 0
    }
}

struct GpuPlan {
    udf: UdfId,
    takes_weight: bool,
    src_filter: Option<UdfId>,
    dst_filter: Option<UdfId>,
    requires_output: bool,
    dedup: bool,
    out_repr: VertexSetRepr,
    load_balance: LoadBalance,
    frontier_creation: FrontierCreation,
    edge_blocking: Option<u32>,
    pull_bitmap: bool,
}

fn plan(
    state: &ProgramState<'_>,
    stmt: &Stmt,
    data: &EdgeSetIteratorData,
) -> Result<GpuPlan, ExecError> {
    let udf = state
        .udfs
        .id_of(&data.apply)
        .ok_or_else(|| ExecError::new(format!("unknown UDF `{}`", data.apply)))?;
    let lookup = |name: &Option<String>| -> Result<Option<UdfId>, ExecError> {
        match name {
            None => Ok(None),
            Some(n) => state
                .udfs
                .id_of(n)
                .map(Some)
                .ok_or_else(|| ExecError::new(format!("unknown filter `{n}`"))),
        }
    };
    let gpu_sched = schedule_of(stmt)
        .and_then(|r| r.as_simple().cloned())
        .and_then(|s| s.as_any().downcast_ref::<GpuSchedule>().cloned())
        .unwrap_or_default();
    Ok(GpuPlan {
        udf,
        takes_weight: state.udfs.get(udf).num_params == 3,
        src_filter: lookup(&data.src_filter)?,
        dst_filter: lookup(&data.dst_filter)?,
        requires_output: data.output.is_some(),
        dedup: stmt.meta.flag(keys::APPLY_DEDUPLICATION)
            || !matches!(gpu_sched.frontier_creation(), FrontierCreation::Fused),
        out_repr: stmt
            .meta
            .get_repr(keys::OUTPUT_REPRESENTATION)
            .unwrap_or(VertexSetRepr::Sparse),
        load_balance: gpu_sched.load_balance(),
        frontier_creation: gpu_sched.frontier_creation(),
        edge_blocking: gpu_sched.edge_blocking(),
        pull_bitmap: stmt.meta.get_repr(keys::PULL_INPUT_FRONTIER) == Some(VertexSetRepr::Bitmap),
    })
}

fn passes_filter(ev: &Evaluator<'_>, f: Option<UdfId>, v: u32, rec: &mut LaneRecorder) -> bool {
    match f {
        None => true,
        Some(id) => ev
            .call(
                id,
                &[Value::Int(v as i64)],
                EdgeCtx::default(),
                &mut NullOutput,
                rec,
            )
            .is_none_or(|r| r.as_bool()),
    }
}

impl GpuExecutor {
    /// Runs a traversal kernel from pre-computed warp assignments (push
    /// direction), returning enqueued vertices and priority updates.
    #[allow(clippy::too_many_arguments)]
    fn traversal_kernel(
        &mut self,
        state: &ProgramState<'_>,
        csr: &Csr,
        warps: &[WarpAssignment],
        plan: &GpuPlan,
        name: &str,
    ) -> BufferedOutput {
        let ev = Evaluator {
            udfs: &state.udfs,
            props: &state.props,
            globals: &state.globals,
            graph: state.graph,
            really_atomic: false,
        };
        let output = RefCell::new(BufferedOutput::default());
        let fused = self.fused();
        let weighted = csr.is_weighted() || plan.takes_weight;
        let trace_iter = warps.iter().enumerate().map(|(wi, warp)| {
            let mut lanes = Vec::with_capacity(warp.len());
            for (li, lane_work) in warp.iter().enumerate() {
                let mut rec = LaneRecorder::default();
                let mut out = output.borrow_mut();
                for lw in lane_work {
                    // Read the frontier slot and this vertex's offsets.
                    rec.raw(AccessKind::Load, arrays::FRONTIER_IN, (wi * 32 + li) as u32);
                    rec.raw(AccessKind::Load, arrays::GRAPH_OFFSETS, lw.src);
                    rec.trace.computes += lw.overhead + 4;
                    if !passes_filter(&ev, plan.src_filter, lw.src, &mut rec) {
                        continue;
                    }
                    let weights = csr.neighbor_weights(lw.src);
                    let base = csr.edge_offset(lw.src);
                    for k in lw.edges.clone() {
                        rec.raw(AccessKind::Load, arrays::GRAPH_TARGETS, k as u32);
                        let dst = csr.targets()[k];
                        if !passes_filter(&ev, plan.dst_filter, dst, &mut rec) {
                            continue;
                        }
                        let w = weights.map_or(1, |ws| ws[k - base]) as i64;
                        if weighted {
                            rec.raw(AccessKind::Load, arrays::GRAPH_WEIGHTS, k as u32);
                        }
                        let mut args = vec![Value::Int(lw.src as i64), Value::Int(dst as i64)];
                        if plan.takes_weight {
                            args.push(Value::Int(w));
                        }
                        let before = out.enqueued.len();
                        ev.call(plan.udf, &args, EdgeCtx { weight: w }, &mut *out, &mut rec);
                        charge_enqueues(&mut rec, plan, &out.enqueued[before..]);
                    }
                }
                lanes.push(rec.trace);
            }
            WarpTrace { lanes }
        });
        self.sim.run_kernel(name, trace_iter, fused);
        output.into_inner()
    }

    /// Pull-direction kernel: lanes own destinations, scan in-edges, and
    /// stop early once the destination filter fails.
    fn pull_kernel(
        &mut self,
        state: &ProgramState<'_>,
        in_csr: &Csr,
        membership: Option<&VertexSet>,
        plan: &GpuPlan,
        name: &str,
    ) -> BufferedOutput {
        let ev = Evaluator {
            udfs: &state.udfs,
            props: &state.props,
            globals: &state.globals,
            graph: state.graph,
            really_atomic: false,
        };
        let n = state.graph.num_vertices();
        let all: Vec<u32> = (0..n as u32).collect();
        let warps = load_balance::assign(in_csr, &all, plan.load_balance);
        let output = RefCell::new(BufferedOutput::default());
        let fused = self.fused();
        let div = if plan.pull_bitmap { 8 } else { 4 };
        let trace_iter = warps.iter().map(|warp| {
            let mut lanes = Vec::with_capacity(warp.len());
            for lane_work in warp {
                let mut rec = LaneRecorder::default();
                let mut out = output.borrow_mut();
                'work: for lw in lane_work {
                    let dst = lw.src; // lanes own destinations in pull
                    rec.raw(AccessKind::Load, arrays::GRAPH_OFFSETS, dst);
                    rec.trace.computes += lw.overhead + 4;
                    if !passes_filter(&ev, plan.dst_filter, dst, &mut rec) {
                        continue;
                    }
                    let weights = in_csr.neighbor_weights(dst);
                    let base = in_csr.edge_offset(dst);
                    for k in lw.edges.clone() {
                        rec.raw(AccessKind::Load, arrays::GRAPH_TARGETS, k as u32);
                        let src = in_csr.targets()[k];
                        if let Some(m) = membership {
                            rec.raw(AccessKind::Load, arrays::FRONTIER_MAP, src / div);
                            if !m.contains(src) {
                                continue;
                            }
                        }
                        if !passes_filter(&ev, plan.src_filter, src, &mut rec) {
                            continue;
                        }
                        let w = weights.map_or(1, |ws| ws[k - base]) as i64;
                        let mut args = vec![Value::Int(src as i64), Value::Int(dst as i64)];
                        if plan.takes_weight {
                            args.push(Value::Int(w));
                        }
                        let before = out.enqueued.len();
                        ev.call(plan.udf, &args, EdgeCtx { weight: w }, &mut *out, &mut rec);
                        charge_enqueues(&mut rec, plan, &out.enqueued[before..]);
                        if plan.dst_filter.is_some()
                            && !passes_filter(&ev, plan.dst_filter, dst, &mut rec)
                        {
                            continue 'work;
                        }
                    }
                }
                lanes.push(rec.trace);
            }
            WarpTrace { lanes }
        });
        self.sim.run_kernel(name, trace_iter, fused);
        output.into_inner()
    }

    /// The boolmap→sparse compaction kernel used by unfused frontier
    /// creation.
    fn compaction_kernel(&mut self, n: usize, out_len: usize) {
        let fused = self.fused();
        let warps = (0..n).step_by(32).map(|base| WarpTrace {
            lanes: (base..(base + 32).min(n))
                .map(|v| LaneTrace {
                    computes: 6,
                    mem: vec![MemAccess {
                        kind: AccessKind::Load,
                        prop: arrays::FRONTIER_MAP,
                        idx: (v / 4) as u32,
                    }],
                })
                .collect(),
        });
        self.sim.run_kernel("frontier_compaction", warps, fused);
        // Writing the compacted output is coalesced.
        let write_warps = (0..out_len).step_by(32).map(|base| WarpTrace {
            lanes: (base..(base + 32).min(out_len))
                .map(|i| LaneTrace {
                    computes: 2,
                    mem: vec![MemAccess {
                        kind: AccessKind::Store,
                        prop: arrays::FRONTIER_OUT,
                        idx: i as u32,
                    }],
                })
                .collect(),
        });
        self.sim.run_kernel("frontier_write", write_warps, true);
    }

    /// EdgeBlocking traversal for topology-driven kernels: destinations
    /// processed in L2-resident blocks.
    fn edge_blocked_kernel(
        &mut self,
        state: &ProgramState<'_>,
        csr: &Csr,
        members: &[u32],
        plan: &GpuPlan,
        block: u32,
    ) -> BufferedOutput {
        let n = state.graph.num_vertices() as u32;
        let mut merged = BufferedOutput::default();
        let mut lo = 0u32;
        while lo < n {
            let hi = (lo + block).min(n);
            // Build per-source subranges within [lo, hi).
            let mut works = Vec::new();
            for &src in members {
                let base = csr.edge_offset(src);
                let neigh = csr.neighbors(src);
                let s = neigh.partition_point(|&d| d < lo);
                let e = neigh.partition_point(|&d| d < hi);
                if s < e {
                    works.push(crate::load_balance::LaneWork {
                        src,
                        edges: base + s..base + e,
                        overhead: 6,
                    });
                }
            }
            let warps: Vec<WarpAssignment> = works
                .chunks(32)
                .map(|c| c.iter().map(|w| vec![w.clone()]).collect())
                .collect();
            let part = self.traversal_kernel(state, csr, &warps, plan, "edge_blocked");
            merged.enqueued.extend(part.enqueued);
            merged.priority_updates.extend(part.priority_updates);
            lo = hi;
        }
        merged
    }
}

/// Charges the cost of materializing `new` enqueued vertices.
fn charge_enqueues(rec: &mut LaneRecorder, plan: &GpuPlan, new: &[u32]) {
    for &v in new {
        match plan.frontier_creation {
            FrontierCreation::Fused => {
                rec.raw(AccessKind::Atomic, arrays::FRONTIER_CURSOR, 0);
                rec.raw(AccessKind::Store, arrays::FRONTIER_OUT, v);
            }
            FrontierCreation::UnfusedBoolmap => {
                rec.raw(AccessKind::Store, arrays::FRONTIER_MAP, v / 4);
            }
            FrontierCreation::UnfusedBitmap => {
                rec.raw(AccessKind::Atomic, arrays::FRONTIER_MAP, v / 32);
            }
        }
    }
}

impl OperatorExecutor for GpuExecutor {
    fn edge_iterator(
        &mut self,
        state: &mut ProgramState<'_>,
        stmt: &Stmt,
        data: &EdgeSetIteratorData,
    ) -> Result<Option<VertexSet>, ExecError> {
        let plan = plan(state, stmt, data)?;
        let direction = stmt
            .meta
            .get_direction(keys::DIRECTION)
            .unwrap_or(Direction::Push);
        let input = state.input_set(&data.input)?;
        let fwd: &Csr = if data.transposed {
            state.graph.in_csr()
        } else {
            state.graph.out_csr()
        };
        let bwd: &Csr = if data.transposed {
            state.graph.out_csr()
        } else {
            state.graph.in_csr()
        };

        let out = match direction {
            Direction::Push => {
                let members = input.iter();
                if let Some(block) = plan.edge_blocking {
                    if data.input.is_none() {
                        self.edge_blocked_kernel(state, fwd, &members, &plan, block)
                    } else {
                        let warps = load_balance::assign(fwd, &members, plan.load_balance);
                        self.traversal_kernel(state, fwd, &warps, &plan, "push")
                    }
                } else {
                    let warps = load_balance::assign(fwd, &members, plan.load_balance);
                    self.traversal_kernel(state, fwd, &warps, &plan, "push")
                }
            }
            Direction::Pull => {
                let membership = if data.input.is_none() {
                    None
                } else {
                    let repr = stmt
                        .meta
                        .get_repr(keys::PULL_INPUT_FRONTIER)
                        .unwrap_or(VertexSetRepr::Boolmap);
                    Some(input.to_repr(repr))
                };
                self.pull_kernel(state, bwd, membership.as_ref(), &plan, "pull")
            }
        };

        for (q, v, p) in out.priority_updates {
            state.queues[q].push(v, p);
        }
        if plan.requires_output {
            let mut set = VertexSet::from_members(state.graph.num_vertices(), out.enqueued);
            if plan.dedup {
                set.dedup();
            }
            if !matches!(plan.frontier_creation, FrontierCreation::Fused) {
                self.compaction_kernel(state.graph.num_vertices(), set.len());
            }
            if set.repr() != plan.out_repr {
                set = set.to_repr(plan.out_repr);
            }
            Ok(Some(set))
        } else {
            Ok(None)
        }
    }

    fn vertex_iterator(
        &mut self,
        state: &mut ProgramState<'_>,
        _stmt: &Stmt,
        set: Option<&str>,
        apply: &str,
    ) -> Result<(), ExecError> {
        let udf = state
            .udfs
            .id_of(apply)
            .ok_or_else(|| ExecError::new(format!("unknown UDF `{apply}`")))?;
        let members = match set {
            None => VertexSet::all(state.graph.num_vertices()).iter(),
            Some(n) => state
                .env
                .set(n)
                .ok_or_else(|| ExecError::new(format!("set `{n}` is not bound")))?
                .iter(),
        };
        let ev = Evaluator {
            udfs: &state.udfs,
            props: &state.props,
            globals: &state.globals,
            graph: state.graph,
            really_atomic: false,
        };
        let output = RefCell::new(BufferedOutput::default());
        let fused = self.fused();
        let warps = members.chunks(32).enumerate().map(|(wi, chunk)| WarpTrace {
            lanes: chunk
                .iter()
                .enumerate()
                .map(|(li, &v)| {
                    let mut rec = LaneRecorder::default();
                    rec.raw(AccessKind::Load, arrays::FRONTIER_IN, (wi * 32 + li) as u32);
                    let mut out = output.borrow_mut();
                    ev.call(
                        udf,
                        &[Value::Int(v as i64)],
                        EdgeCtx::default(),
                        &mut *out,
                        &mut rec,
                    );
                    rec.trace
                })
                .collect(),
        });
        self.sim.run_kernel("vertex_apply", warps, fused);
        let out = output.into_inner();
        for (q, v, p) in out.priority_updates {
            state.queues[q].push(v, p);
        }
        Ok(())
    }

    fn try_loop(&mut self, state: &mut ProgramState<'_>, stmt: &Stmt) -> Result<bool, ExecError> {
        if self.fused_depth > 0 || !stmt.meta.flag(keys::NEEDS_FUSION) {
            return Ok(false);
        }
        let StmtKind::While { cond, body } = &stmt.kind else {
            return Ok(false);
        };
        let cond = cond.clone();
        let body = body.clone();
        // Asynchronous execution (monotone ordered loops only): the fused
        // megakernel runs with no grid synchronization between rounds.
        let sync = !stmt.meta.flag("async_execution");
        self.fused_depth = 1;
        self.sim.charge_launch();
        loop {
            if !state.eval_host(&cond)?.as_bool() {
                break;
            }
            let broke = run_block(state, self, &body)?;
            if sync {
                self.sim.grid_sync();
            }
            if broke {
                break;
            }
        }
        self.fused_depth = 0;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use ugc_runtime::interp::run_main;
    use ugc_sim_gpu::GpuConfig;

    const BFS: &str = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load("g");
const parent : vector{Vertex}(int) = -1;
const start_vertex : Vertex;
func toFilter(v : Vertex) -> output : bool
    output = (parent[v] == -1);
end
func updateEdge(src : Vertex, dst : Vertex)
    parent[dst] = src;
end
func main()
    var frontier : vertexset{Vertex} = new vertexset{Vertex}(0);
    frontier.addVertex(start_vertex);
    parent[start_vertex] = start_vertex;
    #s0# while (frontier.getVertexSetSize() != 0)
        #s1# var output : vertexset{Vertex} = edges.from(frontier).to(toFilter).applyModified(updateEdge, parent, true);
        delete frontier;
        frontier = output;
    end
end
"#;

    fn run_with(sched: crate::schedule::GpuSchedule) -> (Vec<i64>, u64) {
        let mut prog = ugc_midend::frontend_to_ir(BFS).unwrap();
        ugc_schedule::apply_schedule(&mut prog, "s0:s1", ugc_schedule::ScheduleRef::simple(sched))
            .unwrap();
        ugc_midend::run_passes(&mut prog).unwrap();
        crate::passes::run(&mut prog);
        let graph = ugc_graph::generators::two_communities();
        let mut externs = HashMap::new();
        externs.insert("start_vertex".to_string(), Value::Int(0));
        let mut state = ugc_runtime::interp::ProgramState::new(prog, &graph, &externs).unwrap();
        let mut exec = GpuExecutor::new(GpuSim::new(GpuConfig::default()));
        run_main(&mut state, &mut exec).unwrap();
        let id = state.props.id_of("parent").unwrap();
        (
            state
                .props
                .snapshot(id)
                .iter()
                .map(|v| v.as_int())
                .collect(),
            exec.sim.time_cycles(),
        )
    }

    #[test]
    fn pull_with_bitmap_membership() {
        use ugc_schedule::{PullFrontierRepr, SchedDirection};
        let (parents, _) = run_with(
            crate::schedule::GpuSchedule::new()
                .with_direction(SchedDirection::Pull)
                .with_pull_frontier(PullFrontierRepr::Bitmap),
        );
        assert!(parents.iter().all(|&p| p != -1));
    }

    #[test]
    fn unfused_bitmap_frontier_creation() {
        let (parents, _) = run_with(
            crate::schedule::GpuSchedule::new()
                .with_frontier_creation(crate::schedule::FrontierCreation::UnfusedBitmap),
        );
        assert!(parents.iter().all(|&p| p != -1));
    }

    #[test]
    fn async_without_ordered_loop_still_correct() {
        // async_execution on a data-driven loop degenerates to plain
        // fusion minus syncs; BFS's claim-once writes are monotone so the
        // result is still exact in this functional model.
        let (parents, cycles) =
            run_with(crate::schedule::GpuSchedule::new().with_async_execution(true));
        assert!(parents.iter().all(|&p| p != -1));
        assert!(cycles > 0);
    }
}
