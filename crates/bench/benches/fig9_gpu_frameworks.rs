//! Regenerates Fig. 9: the UGC GPU GraphVM against the
//! Gunrock/GSwitch/SEP-Graph mini-frameworks on the same simulator.
//!
//! Runs on the in-tree timing harness (warmup + median-of-N + one JSON
//! line per framework on stdout).

use std::time::Duration;

use ugc::{Algorithm, Target};
use ugc_baselines::gpu_frameworks::{run_framework, Framework};
use ugc_bench::{measure, tuned_schedule_for, Harness};
use ugc_graph::{Dataset, Scale};
use ugc_sim_gpu::GpuConfig;

fn bench_pair(h: &Harness, algo: Algorithm, key: &'static str, dataset: Dataset) {
    let graph = dataset.generate(Scale::Tiny);
    let group = format!("fig9/{}/{}", algo.name(), dataset.abbrev());
    let sched = tuned_schedule_for(Target::Gpu, algo, &graph);
    h.bench(&group, "UGC", || {
        let m = measure(Target::Gpu, algo, &graph, sched.clone(), 1);
        Duration::from_secs_f64(m.time_ms / 1e3)
    });
    for f in Framework::ALL {
        h.bench(&group, f.name(), || {
            let r = run_framework(f, key, &graph, 0, GpuConfig::default());
            Duration::from_nanos(r.cycles)
        });
    }
}

fn main() {
    let h = Harness::from_args();
    bench_pair(&h, Algorithm::Bfs, "bfs", Dataset::Twitter);
    bench_pair(&h, Algorithm::Bfs, "bfs", Dataset::RoadNetCa);
    bench_pair(&h, Algorithm::Sssp, "sssp", Dataset::RoadNetCa);
    bench_pair(&h, Algorithm::PageRank, "pr", Dataset::Twitter);
    bench_pair(&h, Algorithm::Cc, "cc", Dataset::Twitter);
    bench_pair(&h, Algorithm::Bc, "bc", Dataset::Twitter);
}
