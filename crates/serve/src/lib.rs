//! `ugc-serve` — a long-lived graph-analytics query daemon.
//!
//! The rest of the workspace is a one-shot batch pipeline: build a graph,
//! compile a program, run it, exit. This crate adds the resident form the
//! ROADMAP's north star asks for: a std-only TCP/unix-socket daemon that
//! loads each dataset once into a shared [`cache::GraphCache`], bounds
//! concurrent work behind an admission [`gate::Gate`], and **coalesces**
//! concurrent BFS/SSSP queries against the same graph into one
//! multi-source traversal ([`ugc_algorithms::multi_source`]) with one
//! answer lane per query.
//!
//! The protocol is one line per request ([`protocol`]); `repro serve`
//! launches the daemon and `repro client` speaks to it. Request metrics
//! (latency, queue depth, batch size, coalescing) flow through
//! [`ugc_telemetry`] under the `serve.` prefix and are also readable over
//! the wire via `stats`.
//!
//! ```no_run
//! use ugc_serve::{Bind, ServeConfig, Server};
//!
//! let mut config = ServeConfig::default();
//! config.bind = Bind::Tcp(0); // ephemeral port
//! let handle = Server::start(config).unwrap();
//! println!("serving on {}", handle.addr());
//! handle.shutdown();
//! handle.join();
//! ```

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ugc::Policy;
use ugc_telemetry::{Counter, Histogram};

pub mod cache;
pub mod exec;
pub mod gate;
pub mod protocol;
mod signal;
pub mod tuned;

pub use cache::GraphCache;
pub use exec::ServeBreaker;
pub use protocol::{QuerySpec, Request};
pub use tuned::TunedSchedules;

use gate::{Gate, Pending, Rejected};
use protocol::err_line;
use ugc_resilience::breaker::BreakerConfig;

/// Hard cap on one request line; longer lines are answered
/// `err protocol` and the connection is closed (the daemon cannot
/// resynchronize a frame it refused to buffer).
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// A monotone counter that is readable locally (`stats` must work even
/// with telemetry disabled) and mirrored into the [`ugc_telemetry`]
/// registry for `repro --profile`.
pub struct Stat {
    raw: AtomicU64,
    tele: Counter,
}

impl Stat {
    fn new(name: &str) -> Stat {
        Stat {
            raw: AtomicU64::new(0),
            tele: Counter::new(name),
        }
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.raw.fetch_add(n, Ordering::Relaxed);
        self.tele.add(n);
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Subtracts one from the locally readable value, turning this stat
    /// into a gauge (e.g. tuning jobs still pending). The mirrored
    /// telemetry counter stays monotone — it keeps counting enqueues, as
    /// telemetry counters must — so only `stats` sees the level.
    pub fn dec(&self) {
        self.raw.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.raw.load(Ordering::Relaxed)
    }
}

/// All serving counters, shared by handlers, workers, and `stats`.
pub struct ServeCounters {
    /// Queries received (parsed successfully).
    pub queries: Stat,
    /// Queries answered `ok`.
    pub ok: Stat,
    /// Queries answered `err` (including protocol errors).
    pub errors: Stat,
    /// Queries refused by admission control (`err busy` / `err draining`
    /// at the gate; never enqueued, so excluded from the admitted
    /// accounting below).
    pub rejected: Stat,
    /// Queries accepted by the gate. Every admitted query settles as
    /// exactly one of `ok`, `errored`, or a `shed_*` — the accounting
    /// invariant `tests/telemetry_invariants.rs` checks.
    pub admitted: Stat,
    /// Admitted queries that executed and failed (classified errors and
    /// circuit rejections; sheds are counted separately).
    pub errored: Stat,
    /// Admitted queries shed because their deadline expired in queue.
    pub shed_deadline: Stat,
    /// Admitted queries shed because the graph build would break the
    /// cache byte cap.
    pub shed_overload: Stat,
    /// Admitted queries shed because the drain deadline passed before
    /// they executed.
    pub shed_drain: Stat,
    /// Multi-query batches executed.
    pub batches: Stat,
    /// Queries that rode another query's traversal (batch size minus one,
    /// summed) — the headline coalescing win.
    pub coalesced: Stat,
    /// Batches that failed and were degraded to single-query runs.
    pub degraded: Stat,
    /// Edge scans performed by the traversal engine.
    pub work: Stat,
    /// Supervised queries that executed under a background-tuned schedule.
    pub tuned_hits: Stat,
    /// Tuning jobs enqueued but not yet resolved (a gauge: `stats` shows
    /// the level, telemetry counts cumulative enqueues).
    pub tuned_pending: Stat,
    /// Batch sizes at execution time.
    pub batch_size: Histogram,
    /// Queue depth observed at each admission.
    pub queue_depth: Histogram,
    /// End-to-end request latency in microseconds (admission to reply).
    pub latency: Histogram,
}

impl Default for ServeCounters {
    fn default() -> Self {
        ServeCounters::new()
    }
}

impl ServeCounters {
    /// Fresh counters registered under the `serve.` telemetry prefix.
    pub fn new() -> ServeCounters {
        ServeCounters {
            queries: Stat::new("serve.queries"),
            ok: Stat::new("serve.ok"),
            errors: Stat::new("serve.errors"),
            rejected: Stat::new("serve.rejected"),
            admitted: Stat::new("serve.admitted"),
            errored: Stat::new("serve.errored"),
            shed_deadline: Stat::new("serve.shed.deadline"),
            shed_overload: Stat::new("serve.shed.overload"),
            shed_drain: Stat::new("serve.shed.drain"),
            batches: Stat::new("serve.batches"),
            coalesced: Stat::new("serve.batch.coalesced"),
            degraded: Stat::new("serve.batch.degraded"),
            work: Stat::new("serve.work.edge_scans"),
            tuned_hits: Stat::new("serve.tuned_hits"),
            tuned_pending: Stat::new("serve.tuned_pending"),
            batch_size: Histogram::new("serve.batch.size"),
            queue_depth: Histogram::new("serve.queue.depth"),
            latency: Histogram::new("serve.latency_us"),
        }
    }
}

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bind {
    /// TCP on 127.0.0.1; port 0 picks an ephemeral port.
    Tcp(u16),
    /// A unix-domain socket at this path (created on start, removed on
    /// clean shutdown).
    Unix(PathBuf),
}

/// Daemon configuration; [`ServeConfig::validate`] is what `repro serve`
/// flag errors come from.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address.
    pub bind: Bind,
    /// Worker threads = maximum batches in flight (the admission limit).
    pub admit: usize,
    /// Maximum queries waiting behind the in-flight ones; submissions
    /// beyond this are answered `err busy`.
    pub queue_cap: usize,
    /// Maximum queries coalesced into one traversal.
    pub batch_max: usize,
    /// How long a worker lingers collecting batch-mates for a batchable
    /// head query.
    pub batch_window: Duration,
    /// Per-request supervisor policy (watchdog budgets, retries,
    /// fallback chain).
    pub policy: Policy,
    /// GraphCache byte cap (`UGC_CACHE_BYTES`); `None` is unbounded.
    pub cache_bytes: Option<usize>,
    /// Grace window for executing already-queued work after shutdown;
    /// batches still queued past it are shed `err draining`.
    pub drain: Duration,
    /// Default deadline applied to queries that carry no `deadline_ms=`
    /// (`repro serve --deadline-ms`); `None` leaves them unbounded.
    pub default_deadline: Option<Duration>,
    /// Per-connection read timeout: a client that stalls mid-frame for
    /// longer is disconnected instead of holding a handler thread
    /// hostage. `None` waits forever.
    pub read_timeout: Option<Duration>,
    /// Install a SIGTERM handler (self-pipe) that triggers the same
    /// graceful drain as the wire `shutdown`. Only `repro serve` sets
    /// this — in-process test servers must not trap process signals.
    pub install_sigterm: bool,
    /// Circuit-breaker tuning for the per-(algo, dataset, scale)
    /// circuits.
    pub breaker: BreakerConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            bind: Bind::Tcp(0),
            admit: 2,
            queue_cap: 64,
            batch_max: 16,
            batch_window: Duration::from_millis(5),
            policy: Policy::default(),
            cache_bytes: None,
            drain: Duration::from_secs(2),
            default_deadline: None,
            read_timeout: Some(Duration::from_secs(30)),
            install_sigterm: false,
            breaker: BreakerConfig::default(),
        }
    }
}

impl ServeConfig {
    /// Rejects nonsensical configurations with a message naming the
    /// offending knob.
    ///
    /// # Errors
    ///
    /// Non-positive admission limit, queue, or batch cap; a batch cap
    /// beyond the lane budget; a unix socket path that already exists or
    /// whose parent directory does not.
    pub fn validate(&self) -> Result<(), String> {
        if self.admit == 0 {
            return Err("admission limit must be positive (--admit)".into());
        }
        if self.queue_cap == 0 {
            return Err("queue capacity must be positive (--queue)".into());
        }
        if self.batch_max == 0 {
            return Err("batch cap must be positive (--batch-max)".into());
        }
        if self.batch_max > ugc_algorithms::multi_source::MAX_LANES {
            return Err(format!(
                "batch cap {} exceeds the {}-lane traversal budget (--batch-max)",
                self.batch_max,
                ugc_algorithms::multi_source::MAX_LANES
            ));
        }
        if self.cache_bytes == Some(0) {
            return Err("cache byte cap must be positive (UGC_CACHE_BYTES)".into());
        }
        if self.default_deadline == Some(Duration::ZERO) {
            return Err("default deadline must be positive (--deadline-ms)".into());
        }
        if self.drain > Duration::from_secs(600) {
            return Err("drain window above 600000ms is not a drain (--drain-ms)".into());
        }
        if let Bind::Unix(path) = &self.bind {
            if path.as_os_str().is_empty() {
                return Err("socket path must not be empty (--socket)".into());
            }
            if path.exists() {
                return Err(format!(
                    "socket path {} already exists (stale socket? remove it first)",
                    path.display()
                ));
            }
            let parent = if path.parent().map_or(true, |p| p.as_os_str().is_empty()) {
                PathBuf::from(".")
            } else {
                path.parent().expect("checked").to_path_buf()
            };
            if !parent.is_dir() {
                return Err(format!(
                    "socket directory {} does not exist (--socket)",
                    parent.display()
                ));
            }
        }
        Ok(())
    }

    /// Parses the `UGC_CACHE_BYTES` cap from the environment (`repro
    /// serve` calls this before [`Server::start`]). Unset or empty means
    /// unbounded.
    ///
    /// # Errors
    ///
    /// A message naming the variable when the value is not a positive
    /// integer; `repro` turns it into a usage error (exit 2).
    pub fn cache_bytes_from_env() -> Result<Option<usize>, String> {
        match std::env::var("UGC_CACHE_BYTES") {
            Err(_) => Ok(None),
            Ok(v) if v.trim().is_empty() => Ok(None),
            Ok(v) => {
                let n: u64 = v.trim().parse().map_err(|_| {
                    format!("UGC_CACHE_BYTES must be a positive integer of bytes, got `{v}`")
                })?;
                if n == 0 {
                    return Err("UGC_CACHE_BYTES must be positive (unset it for unbounded)".into());
                }
                Ok(Some(n as usize))
            }
        }
    }
}

/// The daemon's resolved listen address.
#[derive(Debug, Clone)]
pub enum ServeAddr {
    /// Bound TCP address (with the resolved ephemeral port).
    Tcp(SocketAddr),
    /// Bound unix socket path.
    Unix(PathBuf),
}

impl std::fmt::Display for ServeAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeAddr::Tcp(a) => write!(f, "tcp {a}"),
            ServeAddr::Unix(p) => write!(f, "unix:{}", p.display()),
        }
    }
}

enum ListenerKind {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl ListenerKind {
    fn accept(&self) -> std::io::Result<StreamKind> {
        match self {
            ListenerKind::Tcp(l) => l.accept().map(|(s, _)| StreamKind::Tcp(s)),
            ListenerKind::Unix(l) => l.accept().map(|(s, _)| StreamKind::Unix(s)),
        }
    }
}

/// One accepted client connection (TCP or unix), unified for the handler.
pub enum StreamKind {
    /// TCP connection.
    Tcp(TcpStream),
    /// Unix-socket connection.
    Unix(UnixStream),
}

impl StreamKind {
    fn try_clone(&self) -> std::io::Result<StreamKind> {
        match self {
            StreamKind::Tcp(s) => s.try_clone().map(StreamKind::Tcp),
            StreamKind::Unix(s) => s.try_clone().map(StreamKind::Unix),
        }
    }

    fn set_read_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            StreamKind::Tcp(s) => s.set_read_timeout(t),
            StreamKind::Unix(s) => s.set_read_timeout(t),
        }
    }
}

impl Read for StreamKind {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            StreamKind::Tcp(s) => s.read(buf),
            StreamKind::Unix(s) => s.read(buf),
        }
    }
}

impl Write for StreamKind {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            StreamKind::Tcp(s) => s.write(buf),
            StreamKind::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            StreamKind::Tcp(s) => s.flush(),
            StreamKind::Unix(s) => s.flush(),
        }
    }
}

/// Shared state every connection handler sees.
struct Shared {
    gate: Gate,
    counters: Arc<ServeCounters>,
    cache: Arc<GraphCache>,
    breaker: Arc<ServeBreaker>,
    shutting_down: AtomicBool,
    /// Set once by [`Shared::begin_shutdown`]; executors shed queued
    /// batches `err draining` after it passes.
    drain_deadline: Arc<std::sync::Mutex<Option<Instant>>>,
    drain: Duration,
    default_deadline: Option<Duration>,
    read_timeout: Option<Duration>,
    addr: ServeAddr,
    started: Instant,
}

impl Shared {
    /// The one-line `stats` response. `pool_workers` is the shared thread
    /// pool's lifetime worker count — the CI smoke asserts it is stable
    /// across queries to prove the daemon leaks no background threads.
    fn stats_line(&self) -> String {
        let c = &self.counters;
        let pool = ugc_runtime::pool::telemetry();
        let (circuit_closed, circuit_half_open, circuit_open) = self.breaker.state_counts();
        format!(
            "ok stats uptime_ms={} queries={} ok={} errors={} rejected={} admitted={} \
             errored={} shed_deadline={} shed_overload={} shed_drain={} queued={} \
             batches={} coalesced={} degraded={} work={} cache_builds={} cache_hits={} \
             cache_evictions={} cache_resident_bytes={} cache_cap_bytes={} \
             resident_graphs={} circuit_closed={circuit_closed} \
             circuit_half_open={circuit_half_open} circuit_open={circuit_open} \
             pool_workers={} tuned_hits={} tuned_pending={}",
            self.started.elapsed().as_millis(),
            c.queries.get(),
            c.ok.get(),
            c.errors.get(),
            c.rejected.get(),
            c.admitted.get(),
            c.errored.get(),
            c.shed_deadline.get(),
            c.shed_overload.get(),
            c.shed_drain.get(),
            self.gate.depth(),
            c.batches.get(),
            c.coalesced.get(),
            c.degraded.get(),
            c.work.get(),
            self.cache.builds(),
            self.cache.hits(),
            self.cache.evictions(),
            self.cache.resident_bytes(),
            self.cache.cap_bytes().unwrap_or(0),
            self.cache.resident(),
            pool.workers_spawned,
            c.tuned_hits.get(),
            c.tuned_pending.get(),
        )
    }

    /// Stops admission, arms the drain deadline, and unblocks the accept
    /// loop. Idempotent — the wire `shutdown`, SIGTERM, and
    /// [`ServerHandle::shutdown`] all funnel here, and only the first
    /// call acts.
    fn begin_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Arm the drain deadline *before* closing the gate so a worker
        // cannot observe a closed gate with an unarmed deadline.
        {
            let mut dd = self
                .drain_deadline
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            *dd = Some(Instant::now() + self.drain);
        }
        self.gate.close();
        // A throwaway self-connection unblocks the blocking accept().
        match &self.addr {
            ServeAddr::Tcp(a) => drop(TcpStream::connect(a)),
            ServeAddr::Unix(p) => drop(UnixStream::connect(p)),
        }
    }
}

/// The daemon. [`Server::start`] spawns the accept loop and worker
/// threads and returns a handle.
pub struct Server;

/// A running daemon: its address, counters, and join/shutdown controls.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    sock_path: Option<PathBuf>,
}

impl Server {
    /// Validates the configuration, binds the listener, and spawns the
    /// accept loop plus `config.admit` worker threads.
    ///
    /// # Errors
    ///
    /// Configuration rejections ([`ServeConfig::validate`]), bind
    /// failures, and malformed supervisor environment (`UGC_FAULTS`).
    pub fn start(config: ServeConfig) -> Result<ServerHandle, String> {
        config.validate()?;
        ugc_resilience::fault::init_from_env()?;
        let (listener, addr, sock_path) = match &config.bind {
            Bind::Tcp(port) => {
                let l = TcpListener::bind(("127.0.0.1", *port))
                    .map_err(|e| format!("cannot bind 127.0.0.1:{port}: {e}"))?;
                let a = l.local_addr().map_err(|e| format!("local_addr: {e}"))?;
                (ListenerKind::Tcp(l), ServeAddr::Tcp(a), None)
            }
            Bind::Unix(path) => {
                let l = UnixListener::bind(path)
                    .map_err(|e| format!("cannot bind {}: {e}", path.display()))?;
                (
                    ListenerKind::Unix(l),
                    ServeAddr::Unix(path.clone()),
                    Some(path.clone()),
                )
            }
        };
        let counters = Arc::new(ServeCounters::new());
        let cache = Arc::new(GraphCache::with_cap(config.cache_bytes));
        let tuned = Arc::new(TunedSchedules::new());
        let breaker = Arc::new(ServeBreaker::new(config.breaker));
        let drain_deadline = Arc::new(std::sync::Mutex::new(None));
        let shared = Arc::new(Shared {
            gate: Gate::new(config.queue_cap, config.batch_max, config.batch_window),
            counters: counters.clone(),
            cache: cache.clone(),
            breaker: breaker.clone(),
            shutting_down: AtomicBool::new(false),
            drain_deadline: drain_deadline.clone(),
            drain: config.drain,
            default_deadline: config.default_deadline,
            read_timeout: config.read_timeout,
            addr,
            started: Instant::now(),
        });
        if config.install_sigterm {
            signal::spawn_sigterm_drain(shared.clone())?;
        }
        // Tuning jobs flow from the executors to one background tuner
        // thread. The sender lives only in the executors: when the gate
        // closes and the workers exit, the channel disconnects and the
        // tuner thread follows them down.
        let (tuner_tx, tuner_rx) = mpsc::channel::<tuned::TuneJob>();
        let mut workers = (0..config.admit)
            .map(|i| {
                let sh = shared.clone();
                let executor = exec::Executor {
                    cache: cache.clone(),
                    policy: config.policy.clone(),
                    counters: counters.clone(),
                    tuned: tuned.clone(),
                    tuner_tx: tuner_tx.clone(),
                    breaker: breaker.clone(),
                    drain_deadline: drain_deadline.clone(),
                };
                std::thread::Builder::new()
                    .name(format!("ugc-serve-worker-{i}"))
                    .spawn(move || {
                        while let Some(batch) = sh.gate.next_batch() {
                            executor.run_batch(batch);
                        }
                    })
                    .map_err(|e| format!("cannot spawn worker: {e}"))
            })
            .collect::<Result<Vec<_>, String>>()?;
        drop(tuner_tx);
        {
            let sh = shared.clone();
            let tuned = tuned.clone();
            let tuner = std::thread::Builder::new()
                .name("ugc-serve-tuner".into())
                .spawn(move || background_tuner(&tuner_rx, &sh, &tuned))
                .map_err(|e| format!("cannot spawn tuner: {e}"))?;
            workers.push(tuner);
        }
        let accept = {
            let sh = shared.clone();
            std::thread::Builder::new()
                .name("ugc-serve-accept".into())
                .spawn(move || accept_loop(&listener, &sh))
                .map_err(|e| format!("cannot spawn accept loop: {e}"))?
        };
        Ok(ServerHandle {
            shared,
            accept: Some(accept),
            workers,
            sock_path,
        })
    }
}

impl ServerHandle {
    /// The resolved listen address (ephemeral TCP ports included).
    pub fn addr(&self) -> &ServeAddr {
        &self.shared.addr
    }

    /// The live counters (for in-process tests and `repro --profile`).
    pub fn counters(&self) -> &ServeCounters {
        &self.shared.counters
    }

    /// Requests shutdown, as the wire `shutdown` command does: admission
    /// closes, queued work drains, threads exit.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Waits for the accept loop and all workers, then removes the unix
    /// socket file. Returns only after a shutdown was requested.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(p) = &self.sock_path {
            let _ = std::fs::remove_file(p);
        }
    }
}

/// The background tuner: drains [`tuned::TuneJob`]s whenever the
/// admission gate is idle, so tuning never competes with live queries for
/// the CPU. Each job runs the autotuner over the CPU schedule space on
/// the already-resident graph with a small fixed budget; the winner is
/// stored for every later supervised query of that triple. Exits when the
/// executors drop their senders (worker shutdown) or shutdown is flagged.
fn background_tuner(
    rx: &mpsc::Receiver<tuned::TuneJob>,
    shared: &Arc<Shared>,
    tuned: &TunedSchedules,
) {
    loop {
        let job = match rx.recv_timeout(Duration::from_millis(200)) {
            Ok(job) => job,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        };
        // Idle-slot bound: wait until no queries are queued before
        // spending cycles on search. Shutdown aborts the wait (and the
        // job — the daemon is going away).
        while shared.gate.depth() > 0 {
            if shared.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let key = (job.dataset, job.scale, job.algo);
        if shared.shutting_down.load(Ordering::SeqCst) {
            tuned.store(key, None);
            shared.counters.tuned_pending.dec();
            continue;
        }
        let space = ugc_autotune::space_for(ugc::Target::Cpu);
        let params = ugc_autotune::space_params(job.algo, &job.graph);
        let tuner = ugc_autotune::Tuner {
            seed: 0xBACC_6E55,
            budget: 8,
            restarts: 1,
            ..ugc_autotune::Tuner::default()
        };
        let mut eval = ugc_autotune::compiler_evaluator(ugc::Target::Cpu, job.algo, &job.graph, 0);
        let winner = ugc_autotune::tune(space, &params, &[], &tuner, &mut eval)
            .ok()
            .map(|out| out.winner().schedule.clone());
        tuned.store(key, winner);
        shared.counters.tuned_pending.dec();
    }
}

fn accept_loop(listener: &ListenerKind, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok(s) => s,
            Err(_) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let sh = shared.clone();
        let spawned = std::thread::Builder::new()
            .name("ugc-serve-conn".into())
            .spawn(move || handle_conn(stream, &sh));
        drop(spawned);
    }
}

/// One bounded-read request line.
enum LineRead {
    /// A complete line (newline stripped, may be the unterminated tail
    /// at EOF).
    Line(Vec<u8>),
    /// Clean end of stream.
    Eof,
    /// The line outgrew [`MAX_LINE_BYTES`] before its newline arrived.
    TooLong,
}

/// Reads one `\n`-terminated line without ever buffering more than
/// [`MAX_LINE_BYTES`] — the unbounded-`read_line` OOM vector a hostile
/// or broken client could otherwise drive.
fn read_line_bounded<R: BufRead>(r: &mut R) -> std::io::Result<LineRead> {
    let mut buf = Vec::new();
    loop {
        let chunk = r.fill_buf()?;
        if chunk.is_empty() {
            return Ok(if buf.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line(buf)
            });
        }
        if let Some(nl) = chunk.iter().position(|&b| b == b'\n') {
            buf.extend_from_slice(&chunk[..nl]);
            r.consume(nl + 1);
            if buf.len() > MAX_LINE_BYTES {
                return Ok(LineRead::TooLong);
            }
            return Ok(LineRead::Line(buf));
        }
        let taken = chunk.len();
        buf.extend_from_slice(chunk);
        r.consume(taken);
        if buf.len() > MAX_LINE_BYTES {
            return Ok(LineRead::TooLong);
        }
    }
}

/// One connection: read request lines, write one response line each.
/// Returns (closing the connection) on `shutdown`, read errors/timeouts,
/// oversize frames, or EOF.
fn handle_conn(stream: StreamKind, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(shared.read_timeout);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let mut reader = BufReader::new(read_half);
    loop {
        let raw = match read_line_bounded(&mut reader) {
            Ok(LineRead::Line(raw)) => raw,
            Ok(LineRead::Eof) => break,
            Ok(LineRead::TooLong) => {
                // Reply, then close: the rest of the oversize frame is
                // still in flight and cannot be resynchronized.
                shared.counters.errors.incr();
                let e = err_line(
                    "protocol",
                    &format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                );
                let _ = writeln!(writer, "{e}").and_then(|()| writer.flush());
                break;
            }
            // Read errors and timeouts (stalled client) close quietly.
            Err(_) => break,
        };
        // Interior NULs and broken UTF-8 are protocol errors, not
        // grounds to kill the connection.
        let line = String::from_utf8_lossy(&raw);
        if line.trim().is_empty() {
            continue;
        }
        let mut close_after = false;
        let reply = if raw.contains(&0) {
            shared.counters.errors.incr();
            err_line("protocol", "request contains NUL bytes")
        } else {
            match protocol::parse_request(&line) {
                Err(e) => {
                    shared.counters.errors.incr();
                    err_line("protocol", &e)
                }
                Ok(Request::Stats) => shared.stats_line(),
                Ok(Request::Shutdown) => {
                    close_after = true;
                    "ok shutdown".to_string()
                }
                Ok(Request::Query(spec)) => {
                    shared.counters.queries.incr();
                    let (tx, rx) = mpsc::channel();
                    let now = Instant::now();
                    let deadline = spec
                        .deadline_ms
                        .map(Duration::from_millis)
                        .or(shared.default_deadline)
                        .map(|d| now + d);
                    let pending = Pending {
                        spec,
                        reply: tx,
                        enqueued: now,
                        deadline,
                    };
                    match shared.gate.submit(pending) {
                        Ok(depth) => {
                            shared.counters.admitted.incr();
                            shared.counters.queue_depth.record(depth as u64);
                            match rx.recv() {
                                Ok(answer) => answer,
                                Err(_) => {
                                    shared.counters.errors.incr();
                                    err_line("internal", "worker dropped the reply channel")
                                }
                            }
                        }
                        Err(Rejected::Full(_)) => {
                            shared.counters.rejected.incr();
                            shared.counters.errors.incr();
                            err_line("busy", "admission queue full; retry later")
                        }
                        Err(Rejected::Draining(_)) => {
                            shared.counters.rejected.incr();
                            shared.counters.errors.incr();
                            err_line("draining", "server shutting down; no new work admitted")
                        }
                    }
                }
            }
        };
        if writeln!(writer, "{reply}")
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        if close_after {
            shared.begin_shutdown();
            break;
        }
    }
}
