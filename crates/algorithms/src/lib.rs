//! The paper's five evaluation algorithms, exactly as UGC consumes them:
//! single portable GraphIt-DSL sources (compiled unchanged for every
//! architecture), plus sequential reference implementations and validators
//! used by the test suites of all four backends.
//!
//! * PageRank (PR) and Connected Components (CC) — topology-driven,
//! * BFS and Betweenness Centrality (BC) — data-driven (frontier-based),
//! * SSSP with ∆-stepping — priority-driven (ordered).
//!
//! # Example
//!
//! ```
//! use ugc_algorithms::{sources, reference};
//!
//! // The DSL source parses and type-checks.
//! ugc_frontend::parse_and_check(sources::BFS).unwrap();
//! // The reference BFS computes levels.
//! let g = ugc_graph::generators::path(4);
//! assert_eq!(reference::bfs_levels(&g, 0), vec![0, 1, 2, 3]);
//! ```

pub mod multi_source;
pub mod reference;
pub mod sources;
pub mod validate;

/// The evaluation algorithms: the paper's original five plus the scenario
/// suite (TC, k-core, LP) that exercises neighbor intersection, active-set
/// peeling, and non-monotone convergence detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// PageRank, 20 damped iterations.
    PageRank,
    /// Breadth-first search from `start_vertex`.
    Bfs,
    /// Single-source shortest paths with ∆-stepping from `start_vertex`.
    Sssp,
    /// Connected components by min-label propagation.
    Cc,
    /// Betweenness centrality from `start_vertex` (single source).
    Bc,
    /// Triangle counting by sorted-neighbor intersection.
    Tc,
    /// K-core decomposition by iterative peeling.
    KCore,
    /// Synchronous label propagation with seeded rotation init.
    Lp,
}

impl Algorithm {
    /// Every algorithm, paper order first (PR, BFS, SSSP, CC, BC), then
    /// the scenario suite (TC, KCORE, LP).
    pub const ALL: [Algorithm; 8] = [
        Algorithm::PageRank,
        Algorithm::Bfs,
        Algorithm::Sssp,
        Algorithm::Cc,
        Algorithm::Bc,
        Algorithm::Tc,
        Algorithm::KCore,
        Algorithm::Lp,
    ];

    /// The paper's original five, in its column order — the set the
    /// external GPU-framework baselines (fig. 9) report numbers for.
    pub const PAPER_FIVE: [Algorithm; 5] = [
        Algorithm::PageRank,
        Algorithm::Bfs,
        Algorithm::Sssp,
        Algorithm::Cc,
        Algorithm::Bc,
    ];

    /// The portable GraphIt source for this algorithm.
    pub fn source(self) -> &'static str {
        match self {
            Algorithm::PageRank => sources::PAGERANK,
            Algorithm::Bfs => sources::BFS,
            Algorithm::Sssp => sources::SSSP_DELTA,
            Algorithm::Cc => sources::CC,
            Algorithm::Bc => sources::BC,
            Algorithm::Tc => sources::TC,
            Algorithm::KCore => sources::KCORE,
            Algorithm::Lp => sources::LP,
        }
    }

    /// Short name used in tables and figures.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::PageRank => "PR",
            Algorithm::Bfs => "BFS",
            Algorithm::Sssp => "SSSP",
            Algorithm::Cc => "CC",
            Algorithm::Bc => "BC",
            Algorithm::Tc => "TC",
            Algorithm::KCore => "KCORE",
            Algorithm::Lp => "LP",
        }
    }

    /// Whether the algorithm needs a `start_vertex` extern binding.
    pub fn needs_start_vertex(self) -> bool {
        matches!(self, Algorithm::Bfs | Algorithm::Sssp | Algorithm::Bc)
    }

    /// Whether the algorithm requires edge weights.
    pub fn needs_weights(self) -> bool {
        matches!(self, Algorithm::Sssp)
    }

    /// Extern bindings the source requires beyond `start_vertex`, with
    /// defaults (name, value). The host seeds these before binding
    /// user-supplied overrides.
    pub fn default_externs(self) -> &'static [(&'static str, i64)] {
        match self {
            Algorithm::Lp => &[("max_iters", 20), ("lp_seed", 1)],
            _ => &[],
        }
    }

    /// The label of the edge-traversal statement to schedule. TC is a
    /// single all-edges pass like PR's inner traversal; the rest sit in
    /// a labeled `s0` loop.
    pub fn schedule_path(self) -> &'static str {
        match self {
            Algorithm::PageRank | Algorithm::Tc => "s1",
            Algorithm::Bfs
            | Algorithm::Sssp
            | Algorithm::Cc
            | Algorithm::Bc
            | Algorithm::KCore
            | Algorithm::Lp => "s0:s1",
        }
    }

    /// Every CLI spelling accepted for an algorithm, shared by the `repro`
    /// binary and the serve wire protocol.
    pub const CLI_SPELLINGS: [(&'static str, Algorithm); 11] = [
        ("pr", Algorithm::PageRank),
        ("pagerank", Algorithm::PageRank),
        ("bfs", Algorithm::Bfs),
        ("sssp", Algorithm::Sssp),
        ("cc", Algorithm::Cc),
        ("bc", Algorithm::Bc),
        ("tc", Algorithm::Tc),
        ("triangles", Algorithm::Tc),
        ("kcore", Algorithm::KCore),
        ("k-core", Algorithm::KCore),
        ("lp", Algorithm::Lp),
    ];

    /// Resolves a CLI spelling (case-insensitive).
    pub fn from_cli_name(s: &str) -> Option<Algorithm> {
        let lower = s.to_ascii_lowercase();
        Self::CLI_SPELLINGS
            .iter()
            .find(|(name, _)| *name == lower)
            .map(|(_, a)| *a)
    }

    /// The closest known spelling within edit distance 2, for did-you-mean
    /// hints on unknown algorithm names.
    pub fn suggest_cli_name(s: &str) -> Option<&'static str> {
        let lower = s.to_ascii_lowercase();
        Self::CLI_SPELLINGS
            .iter()
            .map(|(name, _)| (*name, edit_distance(&lower, name)))
            .filter(|(_, d)| *d <= 2)
            .min_by_key(|(_, d)| *d)
            .map(|(name, _)| name)
    }
}

/// Levenshtein distance over chars (one-row DP).
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut prev = row[0];
        row[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cur = row[j + 1];
            row[j + 1] = (prev + usize::from(ca != cb)).min(cur + 1).min(row[j] + 1);
            prev = cur;
        }
    }
    row[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sources_parse_and_check() {
        for a in Algorithm::ALL {
            ugc_frontend::parse_and_check(a.source())
                .unwrap_or_else(|e| panic!("{}: {e}", a.name()));
        }
    }

    #[test]
    fn all_sources_lower_and_pass() {
        for a in Algorithm::ALL {
            let mut p = ugc_midend::frontend_to_ir(a.source())
                .unwrap_or_else(|e| panic!("{}: {e}", a.name()));
            ugc_midend::run_passes(&mut p).unwrap_or_else(|e| panic!("{}: {e}", a.name()));
        }
    }

    #[test]
    fn metadata_helpers() {
        assert!(Algorithm::Bfs.needs_start_vertex());
        assert!(!Algorithm::PageRank.needs_start_vertex());
        assert!(Algorithm::Sssp.needs_weights());
        assert_eq!(Algorithm::PageRank.schedule_path(), "s1");
        assert!(!Algorithm::Tc.needs_start_vertex());
        assert!(!Algorithm::KCore.needs_weights());
        assert_eq!(Algorithm::Tc.schedule_path(), "s1");
        assert_eq!(Algorithm::KCore.schedule_path(), "s0:s1");
        assert_eq!(
            Algorithm::Lp.default_externs(),
            &[("max_iters", 20), ("lp_seed", 1)]
        );
        assert!(Algorithm::Bfs.default_externs().is_empty());
    }

    #[test]
    fn cli_spellings_resolve_and_suggest() {
        assert_eq!(Algorithm::from_cli_name("KCORE"), Some(Algorithm::KCore));
        assert_eq!(Algorithm::from_cli_name("k-core"), Some(Algorithm::KCore));
        assert_eq!(Algorithm::from_cli_name("tc"), Some(Algorithm::Tc));
        assert_eq!(Algorithm::from_cli_name("nope"), None);
        // One transposition away from a known spelling.
        assert_eq!(Algorithm::suggest_cli_name("kcoer"), Some("kcore"));
        assert_eq!(Algorithm::suggest_cli_name("pagernak"), Some("pagerank"));
        assert_eq!(Algorithm::suggest_cli_name("zzzzzzzz"), None);
    }
}
