//! Type checker for the GraphIt algorithm language.
//!
//! Validates declarations, statement shapes, operator/method signatures and
//! scalar coercions (`Vertex` unifies with `int`; `int` widens to `float`)
//! before the midend lowers the AST to GraphIR.

use std::collections::HashMap;
use std::fmt;

use ugc_graphir::types::{BinOp, ReduceOp, UnOp};

use crate::ast::{AExpr, AExprKind, AStmt, AStmtKind, Decl, FuncDecl, SourceProgram, TypeExpr};
use crate::lexer::Span;

/// The checker's internal type lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ty {
    Int,
    Float,
    Bool,
    Vertex,
    VertexSet,
    EdgeSet,
    PrioQueue,
    List,
    Str,
    Void,
    /// A property vector; the element type is tracked separately.
    Vector,
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ty::Int => "int",
            Ty::Float => "float",
            Ty::Bool => "bool",
            Ty::Vertex => "Vertex",
            Ty::VertexSet => "vertexset",
            Ty::EdgeSet => "edgeset",
            Ty::PrioQueue => "priority_queue",
            Ty::List => "list",
            Ty::Str => "string",
            Ty::Void => "void",
            Ty::Vector => "vector",
        };
        f.write_str(s)
    }
}

fn lower_ty(t: &TypeExpr) -> Ty {
    match t {
        TypeExpr::Int => Ty::Int,
        TypeExpr::Float => Ty::Float,
        TypeExpr::Bool => Ty::Bool,
        TypeExpr::Vertex => Ty::Vertex,
        TypeExpr::VertexSet => Ty::VertexSet,
        TypeExpr::EdgeSet { .. } => Ty::EdgeSet,
        TypeExpr::Vector(_) => Ty::Vector,
        TypeExpr::PriorityQueue => Ty::PrioQueue,
        TypeExpr::List => Ty::List,
    }
}

fn vector_elem(t: &TypeExpr) -> Option<Ty> {
    match t {
        TypeExpr::Vector(inner) => Some(lower_ty(inner)),
        _ => None,
    }
}

fn int_like(t: Ty) -> bool {
    matches!(t, Ty::Int | Ty::Vertex)
}

fn numeric(t: Ty) -> bool {
    int_like(t) || t == Ty::Float
}

/// `from` is acceptable where `to` is expected.
fn coerces(from: Ty, to: Ty) -> bool {
    from == to || (int_like(from) && int_like(to)) || (int_like(from) && to == Ty::Float)
}

/// A type error with source position.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeError {
    /// Offending position.
    pub span: Span,
    /// Description.
    pub message: String,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for TypeError {}

struct FuncSig {
    params: Vec<Ty>,
    ret: Ty,
}

struct Checker<'a> {
    consts: HashMap<String, &'a TypeExpr>,
    funcs: HashMap<String, FuncSig>,
    errors: Vec<TypeError>,
    /// Lexical scopes for locals (innermost last).
    scopes: Vec<HashMap<String, Ty>>,
    /// Element types of property vectors.
    vector_elems: HashMap<String, Ty>,
}

impl<'a> Checker<'a> {
    fn err(&mut self, span: Span, message: impl Into<String>) {
        self.errors.push(TypeError {
            span,
            message: message.into(),
        });
    }

    fn lookup(&self, name: &str) -> Option<Ty> {
        for scope in self.scopes.iter().rev() {
            if let Some(t) = scope.get(name) {
                return Some(*t);
            }
        }
        self.consts.get(name).map(|t| lower_ty(t))
    }

    fn declare(&mut self, name: &str, ty: Ty) {
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), ty);
    }

    fn check_block(&mut self, stmts: &[AStmt]) {
        self.scopes.push(HashMap::new());
        for s in stmts {
            self.check_stmt(s);
        }
        self.scopes.pop();
    }

    fn check_stmt(&mut self, s: &AStmt) {
        match &s.kind {
            AStmtKind::VarDecl { name, ty, init } => {
                let t = lower_ty(ty);
                if let Some(e) = init {
                    let it = self.check_expr(e);
                    if it != Ty::Void && !coerces(it, t) {
                        self.err(
                            s.span,
                            format!("cannot initialize `{name}` of type {t} with {it}"),
                        );
                    }
                }
                if let Some(elem) = vector_elem(ty) {
                    self.vector_elems.insert(name.clone(), elem);
                }
                self.declare(name, t);
            }
            AStmtKind::Assign { target, value } => {
                let tt = self.check_lvalue(target);
                let vt = self.check_expr(value);
                if let (Some(tt), vt) = (tt, vt) {
                    if !coerces(vt, tt) {
                        self.err(s.span, format!("cannot assign {vt} to {tt} location"));
                    }
                }
            }
            AStmtKind::Reduce { target, op, value } => {
                let tt = self.check_lvalue(target);
                let vt = self.check_expr(value);
                if let Some(tt) = tt {
                    let ok = match op {
                        ReduceOp::Sum | ReduceOp::Min | ReduceOp::Max => numeric(tt) && numeric(vt),
                        ReduceOp::Or => tt == Ty::Bool && vt == Ty::Bool,
                    };
                    if !ok {
                        self.err(
                            s.span,
                            format!("reduction `{op}` not valid on {tt} and {vt}"),
                        );
                    }
                }
            }
            AStmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                let ct = self.check_expr(cond);
                if ct != Ty::Bool {
                    self.err(s.span, format!("if condition must be bool, found {ct}"));
                }
                self.check_block(then_body);
                self.check_block(else_body);
            }
            AStmtKind::While { cond, body } => {
                let ct = self.check_expr(cond);
                if ct != Ty::Bool {
                    self.err(s.span, format!("while condition must be bool, found {ct}"));
                }
                self.check_block(body);
            }
            AStmtKind::For {
                var,
                start,
                end,
                body,
            } => {
                let st = self.check_expr(start);
                let et = self.check_expr(end);
                if !int_like(st) || !int_like(et) {
                    self.err(s.span, "for bounds must be integers".to_string());
                }
                self.scopes.push(HashMap::new());
                self.declare(var, Ty::Int);
                for st in body {
                    self.check_stmt(st);
                }
                self.scopes.pop();
            }
            AStmtKind::ExprStmt(e) | AStmtKind::Print(e) => {
                self.check_expr(e);
            }
            AStmtKind::Delete(name) => match self.lookup(name) {
                None => self.err(s.span, format!("delete of unknown variable `{name}`")),
                Some(Ty::VertexSet) | Some(Ty::List) => {}
                Some(t) => self.err(s.span, format!("cannot delete a value of type {t}")),
            },
            AStmtKind::Break => {}
        }
    }

    fn check_lvalue(&mut self, e: &AExpr) -> Option<Ty> {
        match &e.kind {
            AExprKind::Ident(name) => match self.lookup(name) {
                Some(t) => Some(t),
                None => {
                    self.err(
                        e.span,
                        format!("assignment to undeclared variable `{name}`"),
                    );
                    None
                }
            },
            AExprKind::Index { base, index } => {
                let it = self.check_expr(index);
                if !int_like(it) {
                    self.err(
                        e.span,
                        format!("vector index must be a vertex/int, found {it}"),
                    );
                }
                let AExprKind::Ident(vec_name) = &base.kind else {
                    self.err(e.span, "only named vectors can be indexed".to_string());
                    return None;
                };
                self.vector_elem_of(vec_name, e.span)
            }
            _ => {
                self.err(e.span, "invalid assignment target".to_string());
                None
            }
        }
    }

    fn vector_elem_of(&mut self, name: &str, span: Span) -> Option<Ty> {
        if let Some(elem) = self.vector_elems.get(name) {
            return Some(*elem);
        }
        if let Some(t) = self.consts.get(name) {
            if let Some(elem) = vector_elem(t) {
                return Some(elem);
            }
        }
        match self.lookup(name) {
            Some(Ty::Vector) | None => {
                self.err(span, format!("`{name}` is not an indexable vector"));
                None
            }
            Some(t) => {
                self.err(span, format!("cannot index `{name}` of type {t}"));
                None
            }
        }
    }

    fn check_expr(&mut self, e: &AExpr) -> Ty {
        match &e.kind {
            AExprKind::Int(_) => Ty::Int,
            AExprKind::Float(_) => Ty::Float,
            AExprKind::Bool(_) => Ty::Bool,
            AExprKind::Str(_) => Ty::Str,
            AExprKind::Ident(name) => match self.lookup(name) {
                Some(t) => t,
                None => {
                    self.err(e.span, format!("unknown identifier `{name}`"));
                    Ty::Void
                }
            },
            AExprKind::Index { base, index } => {
                let it = self.check_expr(index);
                if !int_like(it) {
                    self.err(
                        e.span,
                        format!("vector index must be a vertex/int, found {it}"),
                    );
                }
                let AExprKind::Ident(vec_name) = &base.kind else {
                    self.err(e.span, "only named vectors can be indexed".to_string());
                    return Ty::Void;
                };
                self.vector_elem_of(vec_name, e.span).unwrap_or(Ty::Void)
            }
            AExprKind::Binary { op, lhs, rhs } => {
                let lt = self.check_expr(lhs);
                let rt = self.check_expr(rhs);
                match op {
                    BinOp::And | BinOp::Or => {
                        if lt != Ty::Bool || rt != Ty::Bool {
                            self.err(
                                e.span,
                                format!("`{op}` requires bool operands, found {lt} and {rt}"),
                            );
                        }
                        Ty::Bool
                    }
                    BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        let compatible =
                            (numeric(lt) && numeric(rt)) || (lt == Ty::Bool && rt == Ty::Bool);
                        if !compatible {
                            self.err(e.span, format!("cannot compare {lt} with {rt}"));
                        }
                        Ty::Bool
                    }
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                        if !(numeric(lt) && numeric(rt)) {
                            self.err(e.span, format!("arithmetic on {lt} and {rt}"));
                            return Ty::Void;
                        }
                        if lt == Ty::Float || rt == Ty::Float {
                            Ty::Float
                        } else {
                            Ty::Int
                        }
                    }
                }
            }
            AExprKind::Unary { op, operand } => {
                let ot = self.check_expr(operand);
                match op {
                    UnOp::Neg => {
                        if !numeric(ot) {
                            self.err(e.span, format!("negation of {ot}"));
                        }
                        ot
                    }
                    UnOp::Not => {
                        if ot != Ty::Bool {
                            self.err(e.span, format!("`!` on {ot}"));
                        }
                        Ty::Bool
                    }
                    UnOp::ToFloat => Ty::Float,
                    UnOp::ToInt => Ty::Int,
                }
            }
            AExprKind::Call { callee, args } => self.check_call(e.span, callee, args),
            AExprKind::MethodCall {
                receiver,
                method,
                args,
            } => {
                let rt = self.check_expr(receiver);
                self.check_method(e.span, rt, method, args)
            }
            AExprKind::New { ty, args } => {
                for a in args {
                    self.check_expr(a);
                }
                match ty {
                    TypeExpr::VertexSet => Ty::VertexSet,
                    TypeExpr::List => Ty::List,
                    TypeExpr::PriorityQueue => {
                        if args.len() != 2 {
                            self.err(
                                e.span,
                                "new priority_queue expects (tracked_vector, source_vertex)",
                            );
                        }
                        Ty::PrioQueue
                    }
                    other => {
                        self.err(e.span, format!("cannot `new` a {other:?}"));
                        Ty::Void
                    }
                }
            }
        }
    }

    fn check_call(&mut self, span: Span, callee: &str, args: &[AExpr]) -> Ty {
        // Builtins first.
        match callee {
            "load" => {
                // Arguments are host-resolved (file path / argv); skip checks.
                return Ty::EdgeSet;
            }
            "fabs" => {
                self.expect_args(span, callee, args, 1);
                for a in args {
                    let t = self.check_expr(a);
                    if !numeric(t) {
                        self.err(span, format!("fabs on {t}"));
                    }
                }
                return Ty::Float;
            }
            "out_degree" | "in_degree" => {
                self.expect_args(span, callee, args, 1);
                for a in args {
                    let t = self.check_expr(a);
                    if !int_like(t) {
                        self.err(span, format!("{callee} expects a vertex, found {t}"));
                    }
                }
                return Ty::Int;
            }
            "intersect_count" => {
                self.expect_args(span, callee, args, 2);
                for a in args {
                    let t = self.check_expr(a);
                    if !int_like(t) {
                        self.err(span, format!("{callee} expects vertices, found {t}"));
                    }
                }
                return Ty::Int;
            }
            "to_float" => {
                self.expect_args(span, callee, args, 1);
                for a in args {
                    self.check_expr(a);
                }
                return Ty::Float;
            }
            "to_int" => {
                self.expect_args(span, callee, args, 1);
                for a in args {
                    self.check_expr(a);
                }
                return Ty::Int;
            }
            _ => {}
        }
        let arg_tys: Vec<Ty> = args.iter().map(|a| self.check_expr(a)).collect();
        let Some(sig) = self.funcs.get(callee) else {
            self.err(span, format!("call to unknown function `{callee}`"));
            return Ty::Void;
        };
        if sig.params.len() != arg_tys.len() {
            let (want, got) = (sig.params.len(), arg_tys.len());
            let ret = sig.ret;
            self.err(
                span,
                format!("`{callee}` expects {want} arguments, got {got}"),
            );
            return ret;
        }
        let params = sig.params.clone();
        let ret = sig.ret;
        for (i, (a, p)) in arg_tys.iter().zip(params.iter()).enumerate() {
            if !coerces(*a, *p) {
                self.err(
                    span,
                    format!("argument {i} of `{callee}`: expected {p}, found {a}"),
                );
            }
        }
        ret
    }

    fn expect_args(&mut self, span: Span, what: &str, args: &[AExpr], n: usize) {
        if args.len() != n {
            self.err(
                span,
                format!("`{what}` expects {n} argument(s), got {}", args.len()),
            );
        }
    }

    fn expect_func_arg(&mut self, span: Span, method: &str, arg: &AExpr) -> Option<String> {
        if let AExprKind::Ident(name) = &arg.kind {
            if self.funcs.contains_key(name) {
                return Some(name.clone());
            }
        }
        self.err(span, format!("`{method}` expects a function name argument"));
        None
    }

    fn check_method(&mut self, span: Span, recv: Ty, method: &str, args: &[AExpr]) -> Ty {
        match (recv, method) {
            (Ty::EdgeSet, "getVertices") => {
                self.expect_args(span, method, args, 0);
                Ty::VertexSet
            }
            (Ty::EdgeSet, "transpose") => {
                self.expect_args(span, method, args, 0);
                Ty::EdgeSet
            }
            (Ty::EdgeSet, "from") => {
                self.expect_args(span, method, args, 1);
                // `from` accepts a vertex set or a filter function.
                if let AExprKind::Ident(n) = &args[0].kind {
                    if self.funcs.contains_key(n) {
                        return Ty::EdgeSet;
                    }
                }
                let t = self.check_expr(&args[0]);
                if t != Ty::VertexSet {
                    self.err(
                        span,
                        format!("`from` expects a vertexset or filter, found {t}"),
                    );
                }
                Ty::EdgeSet
            }
            (Ty::EdgeSet, "to") | (Ty::EdgeSet, "srcFilter") | (Ty::EdgeSet, "dstFilter") => {
                self.expect_args(span, method, args, 1);
                self.expect_func_arg(span, method, &args[0]);
                Ty::EdgeSet
            }
            (Ty::EdgeSet, "apply") => {
                self.expect_args(span, method, args, 1);
                self.expect_func_arg(span, method, &args[0]);
                Ty::Void
            }
            (Ty::EdgeSet, "applyModified") => {
                if args.len() != 2 && args.len() != 3 {
                    self.err(span, "`applyModified` expects (func, vector[, bool])");
                    return Ty::VertexSet;
                }
                self.expect_func_arg(span, method, &args[0]);
                if let AExprKind::Ident(v) = &args[1].kind {
                    if self.vector_elem_of(v, span).is_none() {
                        // error already recorded
                    }
                } else {
                    self.err(
                        span,
                        "`applyModified` second argument must be a vector name",
                    );
                }
                if let Some(a) = args.get(2) {
                    let t = self.check_expr(a);
                    if t != Ty::Bool {
                        self.err(span, "`applyModified` third argument must be a bool");
                    }
                }
                Ty::VertexSet
            }
            (Ty::EdgeSet, "applyUpdatePriority") => {
                self.expect_args(span, method, args, 1);
                self.expect_func_arg(span, method, &args[0]);
                Ty::Void
            }
            (Ty::VertexSet, "getVertexSetSize") | (Ty::VertexSet, "size") => {
                self.expect_args(span, method, args, 0);
                Ty::Int
            }
            (Ty::VertexSet, "addVertex") => {
                self.expect_args(span, method, args, 1);
                let t = self.check_expr(&args[0]);
                if !int_like(t) {
                    self.err(span, format!("`addVertex` expects a vertex, found {t}"));
                }
                Ty::Void
            }
            (Ty::VertexSet, "apply") => {
                self.expect_args(span, method, args, 1);
                self.expect_func_arg(span, method, &args[0]);
                Ty::Void
            }
            (Ty::VertexSet, "filter") => {
                self.expect_args(span, method, args, 1);
                self.expect_func_arg(span, method, &args[0]);
                Ty::VertexSet
            }
            (Ty::PrioQueue, "finished") => {
                self.expect_args(span, method, args, 0);
                Ty::Bool
            }
            (Ty::PrioQueue, "dequeue_ready_set") => {
                self.expect_args(span, method, args, 0);
                Ty::VertexSet
            }
            (Ty::PrioQueue, "updatePriorityMin") | (Ty::PrioQueue, "updatePrioritySum") => {
                self.expect_args(span, method, args, 2);
                let vt = self.check_expr(&args[0]);
                let pt = self.check_expr(&args[1]);
                if !int_like(vt) {
                    self.err(span, format!("`{method}` first argument must be a vertex"));
                }
                if !int_like(pt) {
                    self.err(
                        span,
                        format!("`{method}` second argument must be an int priority"),
                    );
                }
                Ty::Void
            }
            (Ty::List, "append") => {
                self.expect_args(span, method, args, 1);
                let t = self.check_expr(&args[0]);
                if t != Ty::VertexSet {
                    self.err(span, format!("`append` expects a vertexset, found {t}"));
                }
                Ty::Void
            }
            (Ty::List, "pop") => {
                self.expect_args(span, method, args, 0);
                Ty::VertexSet
            }
            (Ty::List, "retrieve") => {
                self.expect_args(span, method, args, 1);
                let t = self.check_expr(&args[0]);
                if !int_like(t) {
                    self.err(span, format!("`retrieve` expects an int index, found {t}"));
                }
                Ty::VertexSet
            }
            (Ty::List, "getSize") | (Ty::List, "size") => {
                self.expect_args(span, method, args, 0);
                Ty::Int
            }
            (recv, m) => {
                for a in args {
                    self.check_expr(a);
                }
                self.err(span, format!("no method `{m}` on {recv}"));
                Ty::Void
            }
        }
    }
}

/// Type-checks a parsed program.
///
/// # Errors
///
/// Returns every type error found.
///
/// # Example
///
/// ```
/// use ugc_frontend::{parse, typecheck};
///
/// let p = parse("const x : int = 1;\nfunc main()\nend").unwrap();
/// assert!(typecheck(&p).is_ok());
/// ```
pub fn typecheck(prog: &SourceProgram) -> Result<(), Vec<TypeError>> {
    let mut consts: HashMap<String, &TypeExpr> = HashMap::new();
    let mut funcs: HashMap<String, FuncSig> = HashMap::new();
    let mut errors = Vec::new();

    for d in &prog.decls {
        match d {
            Decl::Element { .. } => {}
            Decl::Const(c) => {
                if consts.insert(c.name.clone(), &c.ty).is_some() {
                    errors.push(TypeError {
                        span: c.span,
                        message: format!("duplicate const `{}`", c.name),
                    });
                }
            }
            Decl::Func(f) => {
                let sig = FuncSig {
                    params: f.params.iter().map(|(_, t)| lower_ty(t)).collect(),
                    ret: f.ret.as_ref().map(|(_, t)| lower_ty(t)).unwrap_or(Ty::Void),
                };
                if funcs.insert(f.name.clone(), sig).is_some() {
                    errors.push(TypeError {
                        span: f.span,
                        message: format!("duplicate function `{}`", f.name),
                    });
                }
            }
        }
    }

    if !funcs.contains_key("main") {
        errors.push(TypeError {
            span: Span::default(),
            message: "program has no `main` function".into(),
        });
    }

    let mut checker = Checker {
        consts,
        funcs,
        errors,
        scopes: vec![HashMap::new()],
        vector_elems: HashMap::new(),
    };

    // Pre-register vector element types for const vectors.
    for d in &prog.decls {
        if let Decl::Const(c) = d {
            if let Some(elem) = vector_elem(&c.ty) {
                checker.vector_elems.insert(c.name.clone(), elem);
            }
        }
    }

    // Check const initializers.
    for d in &prog.decls {
        if let Decl::Const(c) = d {
            if let Some(init) = &c.init {
                let it = checker.check_expr(init);
                let declared = lower_ty(&c.ty);
                let ok = match declared {
                    Ty::Vector => {
                        // Vector initializers are per-element fills.
                        let elem = vector_elem(&c.ty).expect("vector type");
                        coerces(it, elem)
                    }
                    t => coerces(it, t),
                };
                if !ok && it != Ty::Void {
                    checker.err(
                        c.span,
                        format!(
                            "cannot initialize const `{}` of type {declared} with {it}",
                            c.name
                        ),
                    );
                }
            }
        }
    }

    // Check function bodies.
    for d in &prog.decls {
        if let Decl::Func(f) = d {
            check_func(&mut checker, f);
        }
    }

    if checker.errors.is_empty() {
        Ok(())
    } else {
        Err(checker.errors)
    }
}

fn check_func(checker: &mut Checker<'_>, f: &FuncDecl) {
    checker.scopes.push(HashMap::new());
    for (name, ty) in &f.params {
        checker.declare(name, lower_ty(ty));
    }
    if let Some((name, ty)) = &f.ret {
        checker.declare(name, lower_ty(ty));
    }
    for s in &f.body {
        checker.check_stmt(s);
    }
    checker.scopes.pop();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check(src: &str) -> Result<(), Vec<TypeError>> {
        typecheck(&parse(src).unwrap())
    }

    const PRELUDE: &str = "element Vertex end\nelement Edge end\nconst edges : edgeset{Edge}(Vertex,Vertex) = load(\"g\");\nconst vertices : vertexset{Vertex} = edges.getVertices();\nconst parent : vector{Vertex}(int) = -1;\n";

    #[test]
    fn bfs_like_program_checks() {
        let src = format!(
            "{PRELUDE}
const start_vertex : Vertex;
func toFilter(v : Vertex) -> output : bool
    output = (parent[v] == -1);
end
func updateEdge(src : Vertex, dst : Vertex)
    parent[dst] = src;
end
func main()
    var frontier : vertexset{{Vertex}} = new vertexset{{Vertex}}(0);
    frontier.addVertex(start_vertex);
    parent[start_vertex] = start_vertex;
    #s0# while (frontier.getVertexSetSize() != 0)
        #s1# var output : vertexset{{Vertex}} = edges.from(frontier).to(toFilter).applyModified(updateEdge, parent, true);
        delete frontier;
        frontier = output;
    end
end"
        );
        check(&src).unwrap();
    }

    #[test]
    fn missing_main_rejected() {
        let errs = check("const x : int = 1;").unwrap_err();
        assert!(errs[0].message.contains("no `main`"));
    }

    #[test]
    fn unknown_identifier_rejected() {
        let errs = check("func main()\nvar x : int = nope;\nend").unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("unknown identifier")));
    }

    #[test]
    fn bad_condition_type_rejected() {
        let errs = check("func main()\nwhile 3\nend\nend").unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("must be bool")));
    }

    #[test]
    fn vertex_coerces_to_int() {
        // parent[dst] = src — assigning a Vertex into an int vector.
        let src = format!(
            "{PRELUDE}func f(src : Vertex, dst : Vertex)\nparent[dst] = src;\nend\nfunc main()\nend"
        );
        check(&src).unwrap();
    }

    #[test]
    fn int_widens_to_float() {
        let src = "func main()\nvar x : float = 3;\nend";
        check(src).unwrap();
    }

    #[test]
    fn float_does_not_narrow_to_int() {
        let errs = check("func main()\nvar x : int = 3.5;\nend").unwrap_err();
        assert!(!errs.is_empty());
    }

    #[test]
    fn method_on_wrong_receiver_rejected() {
        let src = format!("{PRELUDE}func main()\nvertices.applyModified(f, parent);\nend");
        let errs = check(&src).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("no method `applyModified`")));
    }

    #[test]
    fn reduce_type_rules() {
        let src = format!(
            "{PRELUDE}func f(src : Vertex, dst : Vertex)\nparent[dst] min= parent[src];\nend\nfunc main()\nend"
        );
        check(&src).unwrap();
        let bad = format!(
            "{PRELUDE}const flags : vector{{Vertex}}(bool) = false;\nfunc f(src : Vertex, dst : Vertex)\nflags[dst] min= flags[src];\nend\nfunc main()\nend"
        );
        assert!(check(&bad).is_err());
    }

    #[test]
    fn priority_queue_methods() {
        let src = format!(
            "{PRELUDE}
const dist : vector{{Vertex}}(int) = 2147483647;
const start_vertex : Vertex;
const pq : priority_queue{{Vertex}}(int) = new priority_queue{{Vertex}}(int)(dist, start_vertex);
func updateEdge(src : Vertex, dst : Vertex, weight : int)
    var new_dist : int = dist[src] + weight;
    pq.updatePriorityMin(dst, new_dist);
end
func main()
    dist[start_vertex] = 0;
    #s0# while (pq.finished() == false)
        var frontier : vertexset{{Vertex}} = pq.dequeue_ready_set();
        #s1# edges.from(frontier).applyUpdatePriority(updateEdge);
        delete frontier;
    end
end"
        );
        check(&src).unwrap();
    }

    #[test]
    fn list_methods() {
        let src = format!(
            "{PRELUDE}func main()
var l : list{{vertexset{{Vertex}}}} = new list{{vertexset{{Vertex}}}}();
var f : vertexset{{Vertex}} = new vertexset{{Vertex}}(0);
l.append(f);
var n : int = l.getSize();
var g : vertexset{{Vertex}} = l.pop();
delete g;
end"
        );
        check(&src).unwrap();
    }

    #[test]
    fn delete_scalar_rejected() {
        let errs = check("func main()\nvar x : int = 1;\ndelete x;\nend").unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("cannot delete")));
    }

    #[test]
    fn wrong_arity_udf_call_rejected() {
        let src = "func helper(a : int)\nend\nfunc main()\nhelper(1, 2);\nend";
        let errs = check(src).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("expects 1 arguments")));
    }

    #[test]
    fn builtins_check() {
        let src = format!(
            "{PRELUDE}const contrib : vector{{Vertex}}(float) = 0.0;
func f(v : Vertex)
    contrib[v] = fabs(contrib[v]) / to_float(out_degree(v));
end
func main()
end"
        );
        check(&src).unwrap();
    }

    #[test]
    fn duplicate_function_rejected() {
        let errs = check("func main()\nend\nfunc main()\nend").unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("duplicate function")));
    }
}
