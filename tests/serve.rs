//! The `ugc-serve` daemon: batching correctness, admission behavior, and
//! protocol round-trips over a live server.
//!
//! Three guarantees:
//!
//! 1. **Batching is invisible** — a multi-source traversal answers every
//!    lane bit-identically to the per-request single-source runs, across
//!    the graph menagerie, and a live server returns the same checksum for
//!    a query whether it was coalesced into a batch or served alone.
//! 2. **Batching saves work** — a coalesced pair scans measurably fewer
//!    edges than two sequential runs of the same traversal.
//! 3. **Concurrency is safe** — N client threads × M queries all receive
//!    reference-equal answers, and the daemon shuts down cleanly.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::Duration;

use ugc_algorithms::multi_source::{
    bfs_levels_counted, ms_bfs_levels, ms_sssp_distances, sssp_distances_counted,
};
use ugc_integration::test_graphs;
use ugc_serve::{Bind, ServeConfig, Server, ServerHandle};

// ---------------------------------------------------------------------------
// Guarantee 1a: the multi-source engine against per-request traversals.
// ---------------------------------------------------------------------------

/// Batched BFS levels and SSSP distances are bit-equal to the per-request
/// single-source answers, lane by lane, across the whole menagerie.
#[test]
fn batched_traversals_bit_equal_per_request_across_menagerie() {
    for (gname, graph) in test_graphs() {
        let n = graph.num_vertices() as u32;
        let sources: Vec<u32> = [0u32, 1, n / 2, n - 1]
            .iter()
            .copied()
            .filter(|&s| s < n)
            .collect();
        let (batched_bfs, _) = ms_bfs_levels(&graph, &sources);
        let (batched_sssp, _) = ms_sssp_distances(&graph, &sources);
        for (lane, &src) in sources.iter().enumerate() {
            let (single_bfs, _) = bfs_levels_counted(&graph, src);
            assert_eq!(
                batched_bfs[lane], single_bfs,
                "{gname}: BFS lane for source {src} diverges from the single-source run"
            );
            let (single_sssp, _) = sssp_distances_counted(&graph, src);
            assert_eq!(
                batched_sssp[lane], single_sssp,
                "{gname}: SSSP lane for source {src} diverges from the single-source run"
            );
        }
    }
}

/// Guarantee 2: a coalesced pair never traverses more edges than the two
/// sequential runs it replaces, and strictly fewer on the well-connected
/// menagerie graphs where lanes structurally overlap in the same rounds.
/// The adversarial shapes are allowed to tie: MS-BFS only shares scans
/// when two lanes reach a vertex in the *same* round, which disjoint
/// cliques and offset path/barbell sources never do.
#[test]
fn batched_pair_does_less_work_than_two_sequential_runs() {
    let overlapping = ["two_communities", "road_16x16", "rmat_8", "uniform_200"];
    for (gname, graph) in test_graphs() {
        let n = graph.num_vertices() as u32;
        let (a, b) = (0u32, n / 2);
        let (_, batched) = ms_bfs_levels(&graph, &[a, b]);
        let (_, first) = bfs_levels_counted(&graph, a);
        let (_, second) = bfs_levels_counted(&graph, b);
        let sequential = first.edge_scans + second.edge_scans;
        if overlapping.contains(&gname) {
            assert!(
                batched.edge_scans < sequential,
                "{gname}: batched pair scanned {} edges, sequential pair {} + {}",
                batched.edge_scans,
                first.edge_scans,
                second.edge_scans
            );
        } else {
            assert!(
                batched.edge_scans <= sequential,
                "{gname}: batching must not add work ({} > {sequential})",
                batched.edge_scans
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Live-server helpers.
// ---------------------------------------------------------------------------

fn start_server(config: ServeConfig) -> (ServerHandle, std::net::SocketAddr) {
    let handle = Server::start(config).expect("server starts");
    let addr = match handle.addr() {
        ugc_serve::ServeAddr::Tcp(a) => *a,
        other => panic!("expected a TCP server, bound {other}"),
    };
    (handle, addr)
}

/// One request → one reply line over a fresh connection.
fn roundtrip(addr: std::net::SocketAddr, line: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    writeln!(stream, "{line}").expect("send");
    stream.flush().expect("flush");
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).expect("reply");
    reply.trim_end().to_string()
}

/// Extracts a `key=value` field from a reply line.
fn field<'a>(reply: &'a str, key: &str) -> &'a str {
    reply
        .split_whitespace()
        .find_map(|w| w.strip_prefix(&format!("{key}=")[..]))
        .unwrap_or_else(|| panic!("no `{key}=` field in reply: {reply}"))
}

// ---------------------------------------------------------------------------
// Guarantee 1b: a live server answers coalesced queries identically to
// sequential ones.
// ---------------------------------------------------------------------------

#[test]
fn coalesced_replies_match_sequential_replies() {
    let (handle, addr) = start_server(ServeConfig {
        bind: Bind::Tcp(0),
        admit: 1,
        batch_max: 8,
        batch_window: Duration::from_millis(300),
        ..ServeConfig::default()
    });

    // Sequential reference pass: batch_window only lingers when a second
    // batchable query is pending, so these resolve as singletons.
    let sources = [0u32, 1, 2, 3];
    let mut reference = HashMap::new();
    for &s in &sources {
        let reply = roundtrip(addr, &format!("query bfs RN source={s}"));
        assert!(reply.starts_with("ok "), "reference query failed: {reply}");
        reference.insert(s, field(&reply, "checksum").to_string());
    }

    // Concurrent pass: all four released together against a single worker,
    // so late arrivals coalesce into the in-flight batch window.
    let barrier = Arc::new(Barrier::new(sources.len()));
    let replies: Vec<String> = sources
        .iter()
        .map(|&s| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                roundtrip(addr, &format!("query bfs RN source={s}"))
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .collect();

    for reply in &replies {
        assert!(reply.starts_with("ok "), "concurrent query failed: {reply}");
        let s: u32 = field(reply, "source").parse().expect("source field");
        assert_eq!(
            field(reply, "checksum"),
            reference[&s],
            "source {s}: coalesced answer diverges from the sequential one"
        );
    }

    let stats = roundtrip(addr, "stats");
    assert!(stats.starts_with("ok stats"), "stats failed: {stats}");
    let coalesced: u64 = field(&stats, "coalesced").parse().expect("coalesced");
    assert!(
        coalesced > 0,
        "no queries were coalesced under a single worker: {stats}"
    );

    assert_eq!(roundtrip(addr, "shutdown"), "ok shutdown");
    handle.join();
}

// ---------------------------------------------------------------------------
// Guarantee 3: concurrent-clients soak.
// ---------------------------------------------------------------------------

#[test]
fn concurrent_clients_soak_reference_equal() {
    const CLIENTS: usize = 6;
    const QUERIES: usize = 8;

    let (handle, addr) = start_server(ServeConfig {
        bind: Bind::Tcp(0),
        admit: 2,
        queue_cap: 64,
        batch_max: 8,
        batch_window: Duration::from_millis(2),
        ..ServeConfig::default()
    });

    // The request mix: batchable traversals plus a supervised non-batchable
    // algorithm, over two datasets so the cache serves more than one graph.
    let requests = [
        "query bfs RN source=0",
        "query bfs RN source=5",
        "query sssp RN source=0",
        "query bfs PK source=1",
        "query cc RN",
    ];
    let mut reference = HashMap::new();
    for req in requests {
        let reply = roundtrip(addr, req);
        assert!(
            reply.starts_with("ok "),
            "reference `{req}` failed: {reply}"
        );
        reference.insert(req, field(&reply, "checksum").to_string());
    }
    let reference = Arc::new(reference);

    let barrier = Arc::new(Barrier::new(CLIENTS));
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let barrier = Arc::clone(&barrier);
            let reference = Arc::clone(&reference);
            std::thread::spawn(move || {
                barrier.wait();
                for q in 0..QUERIES {
                    let req = requests[(c + q) % requests.len()];
                    let reply = roundtrip(addr, req);
                    assert!(
                        reply.starts_with("ok "),
                        "client {c} query {q} `{req}` failed: {reply}"
                    );
                    assert_eq!(
                        field(&reply, "checksum"),
                        reference[req],
                        "client {c} query {q} `{req}`: answer diverges from reference"
                    );
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("soak client");
    }

    let stats = roundtrip(addr, "stats");
    let queries: u64 = field(&stats, "queries").parse().expect("queries");
    let ok: u64 = field(&stats, "ok").parse().expect("ok");
    let expected = (CLIENTS * QUERIES + requests.len()) as u64;
    assert_eq!(queries, expected, "query count drifted: {stats}");
    assert_eq!(ok, expected, "some queries failed silently: {stats}");
    let errors: u64 = field(&stats, "errors").parse().expect("errors");
    assert_eq!(errors, 0, "soak produced errors: {stats}");

    assert_eq!(roundtrip(addr, "shutdown"), "ok shutdown");
    handle.join();
}

// ---------------------------------------------------------------------------
// Protocol edges over a live server.
// ---------------------------------------------------------------------------

#[test]
fn protocol_errors_and_domain_validation() {
    let (handle, addr) = start_server(ServeConfig {
        bind: Bind::Tcp(0),
        ..ServeConfig::default()
    });

    // Unknown verb, unknown algorithm, unknown dataset, malformed arg.
    for (req, kind) in [
        ("frobnicate", "err protocol"),
        ("query nosuchalgo RN", "err protocol"),
        ("query bfs NOPE", "err protocol"),
        ("query bfs RN source=banana", "err protocol"),
        ("query bfs RN scale=cosmic", "err protocol"),
    ] {
        let reply = roundtrip(addr, req);
        assert!(
            reply.starts_with(kind),
            "`{req}` must answer `{kind} …`, got: {reply}"
        );
    }

    // A source beyond the dataset's vertex count is a permanent error, not
    // a panic or a hang.
    let reply = roundtrip(addr, "query bfs RN source=999999999");
    assert!(
        reply.starts_with("err permanent"),
        "out-of-range source must be a permanent error, got: {reply}"
    );

    // Errors must not poison the next request on a fresh connection.
    let reply = roundtrip(addr, "query bfs RN source=0");
    assert!(
        reply.starts_with("ok "),
        "server wedged after errors: {reply}"
    );

    assert_eq!(roundtrip(addr, "shutdown"), "ok shutdown");
    handle.join();
}

// ---------------------------------------------------------------------------
// The expanded algorithm suite over the wire: TC / k-core / LP take the
// supervised single-query path (they are whitelist-excluded from MS-BFS
// coalescing), honor their per-algorithm arguments, and mix cleanly with
// traversals in a soak.
// ---------------------------------------------------------------------------

#[test]
fn new_algorithms_answer_supervised_and_never_coalesce() {
    // Single worker + a generous window: if TC were batchable, the
    // concurrent pass below would coalesce it. It must not.
    let (handle, addr) = start_server(ServeConfig {
        bind: Bind::Tcp(0),
        admit: 1,
        batch_max: 8,
        batch_window: Duration::from_millis(100),
        ..ServeConfig::default()
    });

    // Deterministic answers: each algorithm's checksum is stable across
    // repeat queries of the same spec.
    for req in ["query tc RN", "query kcore RN", "query lp RN"] {
        let first = roundtrip(addr, req);
        assert!(first.starts_with("ok "), "`{req}` failed: {first}");
        assert_eq!(field(&first, "batch"), "1", "`{req}` must run solo");
        let second = roundtrip(addr, req);
        assert_eq!(
            field(&first, "checksum"),
            field(&second, "checksum"),
            "`{req}` must answer identically on repeat"
        );
    }

    // Per-algorithm arguments: k= adds a membership count bounded by n;
    // max_iters= is accepted and still answers deterministically.
    let kc = roundtrip(addr, "query kcore RN k=2");
    assert!(kc.starts_with("ok "), "kcore k=2 failed: {kc}");
    let n: usize = field(&kc, "n").parse().expect("n field");
    let size: usize = field(&kc, "kcore_size").parse().expect("kcore_size");
    assert!(size <= n, "kcore_size {size} exceeds n {n}");
    let bare = roundtrip(addr, "query kcore RN");
    assert!(
        !bare.contains("kcore_size="),
        "kcore without k= must not report a membership count: {bare}"
    );
    let lp5 = roundtrip(addr, "query lp RN max_iters=5");
    assert!(lp5.starts_with("ok "), "lp max_iters=5 failed: {lp5}");
    assert_eq!(
        field(&lp5, "checksum"),
        field(&roundtrip(addr, "query lp RN max_iters=5"), "checksum"),
        "lp with an explicit iteration cap must stay deterministic"
    );

    // Concurrent identical TC queries against the single worker: every
    // reply must still be batch=1 and the coalesced counter must not move.
    let clients = 4;
    let barrier = Arc::new(Barrier::new(clients));
    let replies: Vec<String> = (0..clients)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                roundtrip(addr, "query tc RN")
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .collect();
    for reply in &replies {
        assert!(reply.starts_with("ok "), "concurrent tc failed: {reply}");
        assert_eq!(field(reply, "batch"), "1", "tc must never coalesce");
    }
    let stats = roundtrip(addr, "stats");
    let coalesced: u64 = field(&stats, "coalesced").parse().expect("coalesced");
    assert_eq!(coalesced, 0, "non-batchable queries coalesced: {stats}");

    assert_eq!(roundtrip(addr, "shutdown"), "ok shutdown");
    handle.join();
}

/// Bad per-algorithm arguments get an `err protocol` reply on the same
/// connection — the handler must not disconnect, and the next request on
/// that very connection must succeed.
#[test]
fn bad_algorithm_arguments_err_without_disconnecting() {
    let (handle, addr) = start_server(ServeConfig {
        bind: Bind::Tcp(0),
        ..ServeConfig::default()
    });

    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut ask = |line: &str| -> String {
        writeln!(stream, "{line}").expect("send");
        stream.flush().expect("flush");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("reply");
        reply.trim_end().to_string()
    };

    for bad in [
        "query kcore RN k=0",
        "query kcore RN k=-3",
        "query lp RN max_iters=0",
        "query tc RN k=2",          // k= only applies to kcore
        "query bfs RN max_iters=5", // max_iters= only applies to lp
        "query kcoer RN",           // misspelling → suggestion, still an err
    ] {
        let reply = ask(bad);
        assert!(
            reply.starts_with("err protocol"),
            "`{bad}` must answer `err protocol …`, got: {reply}"
        );
    }
    let suggestion = ask("query kcoer RN");
    assert!(
        suggestion.contains("did you mean `kcore`?"),
        "misspelling must carry a suggestion: {suggestion}"
    );

    // Same connection, next request: still served.
    let reply = ask("query kcore RN k=2");
    assert!(reply.starts_with("ok "), "connection wedged: {reply}");

    assert_eq!(ask("shutdown"), "ok shutdown");
    handle.join();
}

/// Soak mixing the new algorithms with BFS on one cached graph: every
/// reply reference-equal, exact `stats` accounting, one cache build.
#[test]
fn mixed_algorithm_soak_on_one_cached_graph() {
    const CLIENTS: usize = 4;
    const QUERIES: usize = 6;

    let (handle, addr) = start_server(ServeConfig {
        bind: Bind::Tcp(0),
        admit: 2,
        queue_cap: 64,
        batch_max: 8,
        batch_window: Duration::from_millis(2),
        ..ServeConfig::default()
    });

    let requests = [
        "query bfs RN source=0",
        "query tc RN",
        "query kcore RN k=2",
        "query lp RN max_iters=10",
    ];
    let mut reference = HashMap::new();
    for req in requests {
        let reply = roundtrip(addr, req);
        assert!(
            reply.starts_with("ok "),
            "reference `{req}` failed: {reply}"
        );
        reference.insert(req, field(&reply, "checksum").to_string());
    }
    let reference = Arc::new(reference);

    let barrier = Arc::new(Barrier::new(CLIENTS));
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let barrier = Arc::clone(&barrier);
            let reference = Arc::clone(&reference);
            std::thread::spawn(move || {
                barrier.wait();
                for q in 0..QUERIES {
                    let req = requests[(c + q) % requests.len()];
                    let reply = roundtrip(addr, req);
                    assert!(
                        reply.starts_with("ok "),
                        "client {c} query {q} `{req}` failed: {reply}"
                    );
                    assert_eq!(
                        field(&reply, "checksum"),
                        reference[req],
                        "client {c} query {q} `{req}`: answer diverges from reference"
                    );
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("soak client");
    }

    let stats = roundtrip(addr, "stats");
    let queries: u64 = field(&stats, "queries").parse().expect("queries");
    let ok: u64 = field(&stats, "ok").parse().expect("ok");
    let expected = (CLIENTS * QUERIES + requests.len()) as u64;
    assert_eq!(queries, expected, "query count drifted: {stats}");
    assert_eq!(ok, expected, "some queries failed silently: {stats}");
    let errors: u64 = field(&stats, "errors").parse().expect("errors");
    assert_eq!(errors, 0, "soak produced errors: {stats}");
    let builds: u64 = field(&stats, "cache_builds").parse().expect("builds");
    assert_eq!(builds, 1, "RN tiny must be built exactly once: {stats}");

    assert_eq!(roundtrip(addr, "shutdown"), "ok shutdown");
    handle.join();
}

// ---------------------------------------------------------------------------
// Shutdown vs. admission race (regression).
// ---------------------------------------------------------------------------

/// `Gate::close()` racing `next_batch()` and `submit()` must never drop
/// an admitted query on the floor: every query the gate accepts settles
/// as executed (`ok`), shed (`err deadline`/`err draining`), or a
/// classified error — and `shutdown` arriving at any point in the burst
/// only changes *which* of those it gets. Regression for the drain
/// redesign: the close/next_batch handoff is lock-serialized, so a batch
/// grabbed concurrently with close is executed (or drained), not lost.
#[test]
fn shutdown_racing_a_query_burst_never_drops_an_admitted_query() {
    // Several rounds with different shutdown offsets to vary the
    // interleaving: before, amid, and after the burst lands in the gate.
    for (round, delay_us) in [0u64, 200, 2_000, 20_000].into_iter().enumerate() {
        const CLIENTS: usize = 8;
        let (handle, addr) = start_server(ServeConfig {
            bind: Bind::Tcp(0),
            admit: 1,
            queue_cap: 16,
            batch_max: 4,
            batch_window: Duration::from_millis(1),
            drain: Duration::from_millis(200),
            ..ServeConfig::default()
        });

        let barrier = Arc::new(Barrier::new(CLIENTS + 1));
        let clients: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || -> Result<String, String> {
                    let mut s = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
                    barrier.wait();
                    writeln!(s, "query bfs RN source={}", c % 4)
                        .map_err(|e| format!("send: {e}"))?;
                    s.flush().map_err(|e| e.to_string())?;
                    let mut reply = String::new();
                    BufReader::new(s)
                        .read_line(&mut reply)
                        .map_err(|e| format!("read: {e}"))?;
                    if reply.is_empty() {
                        return Err("closed without a reply".into());
                    }
                    Ok(reply.trim_end().to_string())
                })
            })
            .collect();
        barrier.wait();
        std::thread::sleep(Duration::from_micros(delay_us));
        handle.shutdown();

        for (c, t) in clients.into_iter().enumerate() {
            match t.join().expect("client thread") {
                Ok(reply) => assert!(
                    reply.starts_with("ok ") || reply.starts_with("err "),
                    "round {round} client {c}: untyped reply: {reply}"
                ),
                // Connections the closed listener never accepted die at
                // the transport layer; they were never admitted.
                Err(e) => assert!(
                    e.starts_with("connect:") || e.contains("closed without a reply"),
                    "round {round} client {c}: unexpected failure: {e}"
                ),
            }
        }

        // Everything admitted must have settled exactly once.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let counters = handle.counters();
            let settled = counters.ok.get()
                + counters.errored.get()
                + counters.shed_deadline.get()
                + counters.shed_overload.get()
                + counters.shed_drain.get();
            if settled == counters.admitted.get() {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "round {round}: gate dropped admitted queries (settled {settled}, admitted {})",
                counters.admitted.get()
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        handle.join();
    }
}

/// One connection can issue several requests; `stats` reflects them; the
/// cache builds each dataset once.
#[test]
fn single_connection_pipelining_and_cache_reuse() {
    let (handle, addr) = start_server(ServeConfig {
        bind: Bind::Tcp(0),
        ..ServeConfig::default()
    });

    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut ask = |line: &str| -> String {
        writeln!(stream, "{line}").expect("send");
        stream.flush().expect("flush");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("reply");
        reply.trim_end().to_string()
    };

    let first = ask("query bfs RN source=0");
    let second = ask("query bfs RN source=0");
    // Timing fields differ run to run; the answer itself must not.
    assert_eq!(
        field(&first, "checksum"),
        field(&second, "checksum"),
        "same query must answer identically: {first} vs {second}"
    );
    let third = ask("query sssp RN source=0");
    assert!(third.starts_with("ok "), "sssp over same graph: {third}");

    let stats = ask("stats");
    let builds: u64 = field(&stats, "cache_builds").parse().expect("builds");
    assert_eq!(builds, 1, "RN tiny must be built exactly once: {stats}");
    let hits: u64 = field(&stats, "cache_hits").parse().expect("hits");
    assert!(hits >= 2, "repeat queries must hit the cache: {stats}");

    assert_eq!(ask("shutdown"), "ok shutdown");
    handle.join();
}
