//! Degree statistics used by scheduling heuristics and dataset tables.

use crate::{Graph, VertexId};

/// Summary degree statistics of a graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of directed edges.
    pub num_edges: usize,
    /// Maximum out-degree.
    pub max_degree: usize,
    /// Mean out-degree.
    pub avg_degree: f64,
    /// Number of vertices with zero out-degree.
    pub num_isolated: usize,
}

/// Computes [`DegreeStats`] over out-degrees.
///
/// # Example
///
/// ```
/// use ugc_graph::{Graph, stats::degree_stats};
///
/// let g = Graph::from_edges(3, &[(0, 1), (0, 2)]);
/// let s = degree_stats(&g);
/// assert_eq!(s.max_degree, 2);
/// assert_eq!(s.num_isolated, 2);
/// ```
pub fn degree_stats(g: &Graph) -> DegreeStats {
    let n = g.num_vertices();
    let mut max_degree = 0;
    let mut num_isolated = 0;
    for v in 0..n as VertexId {
        let d = g.out_degree(v);
        max_degree = max_degree.max(d);
        if d == 0 {
            num_isolated += 1;
        }
    }
    DegreeStats {
        num_vertices: n,
        num_edges: g.num_edges(),
        max_degree,
        avg_degree: if n == 0 {
            0.0
        } else {
            g.num_edges() as f64 / n as f64
        },
        num_isolated,
    }
}

/// Classification of a graph's degree distribution, used to pick schedule
/// families exactly as the paper does ("social graphs vs road graphs").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DegreeProfile {
    /// Power-law-like: hubs far above mean degree, low diameter.
    PowerLaw,
    /// Bounded-degree: road networks, meshes; high diameter.
    Bounded,
}

/// Heuristic classification: power-law if the max degree exceeds
/// `8 × average degree` and the average degree is above 4.
pub fn classify(g: &Graph) -> DegreeProfile {
    let s = degree_stats(g);
    if s.max_degree as f64 > 8.0 * s.avg_degree && s.avg_degree > 4.0 {
        DegreeProfile::PowerLaw
    } else {
        DegreeProfile::Bounded
    }
}

/// Histogram of out-degrees in power-of-two buckets: entry `i` counts
/// vertices with degree in `[2^i, 2^(i+1))`, entry 0 counts degree 0 and 1.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = Vec::new();
    for v in 0..g.num_vertices() as VertexId {
        let d = g.out_degree(v);
        let bucket = if d <= 1 {
            0
        } else {
            (usize::BITS - d.leading_zeros()) as usize - 1
        };
        if hist.len() <= bucket {
            hist.resize(bucket + 1, 0);
        }
        hist[bucket] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn stats_on_star() {
        let g = generators::star(10);
        let s = degree_stats(&g);
        assert_eq!(s.max_degree, 9);
        assert_eq!(s.num_isolated, 0);
        assert_eq!(s.num_edges, 18);
    }

    #[test]
    fn classify_rmat_power_law() {
        let g = generators::rmat(10, 8, 1, false);
        assert_eq!(classify(&g), DegreeProfile::PowerLaw);
    }

    #[test]
    fn classify_road_bounded() {
        let g = generators::road_grid(32, 32, 0.05, 1, false);
        assert_eq!(classify(&g), DegreeProfile::Bounded);
    }

    #[test]
    fn histogram_sums_to_vertices() {
        let g = generators::rmat(8, 4, 1, false);
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), g.num_vertices());
    }

    #[test]
    fn empty_graph_stats() {
        let g = crate::Graph::from_edges(0, &[]);
        let s = degree_stats(&g);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.max_degree, 0);
    }
}
