//! A timing simulator of the HammerBlade manycore (paper §II-B4, Fig. 3b,
//! Table VII).
//!
//! HammerBlade is a grid of simple RISC-V cores with software-managed
//! scratchpads, a banked last-level cache, and HBM channels. The paper's
//! HammerBlade GraphVM optimizations are entirely about the memory system,
//! so that is what this model captures:
//!
//! * **non-blocking memory operations**: a core overlaps independent
//!   requests; *bulk* (prefetch) requests pipeline deeply while *demand*
//!   requests overlap only a little — the mechanism behind the
//!   blocked-access optimization,
//! * a **banked LLC** (line-granular, set-associative): alignment-based
//!   partitioning pays off as line reuse and reduced bank contention,
//! * **HBM bandwidth** as a throughput roof,
//! * a **barrier** per kernel phase (SPMD execution).
//!
//! The simulator reports the Table IX metrics natively: DRAM stall cycles
//! and achieved memory bandwidth.

use std::collections::HashMap;
use std::sync::OnceLock;

use ugc_resilience::{budget, fault};
use ugc_telemetry::Counter;

/// Where the simulated cycles went, cumulatively per simulator instance.
///
/// Components always sum to [`HbSim::time_cycles`]. Each phase's charge
/// beyond the fixed barrier is split proportionally to the raw cycle
/// classification accumulated while costing the traces (core compute,
/// LLC access latency, DRAM stall, bank occupancy), so the model's
/// timing math is classified, never changed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HbAttribution {
    /// Core-local scalar work (including scratchpad/stream-buffer hits).
    pub compute: u64,
    /// LLC access latency (network hop + hit service).
    pub llc_access: u64,
    /// DRAM stalls (miss latency and bandwidth-roofline excess).
    pub dram_stall: u64,
    /// LLC bank occupancy/contention serialization.
    pub bank: u64,
    /// Per-phase SPMD barrier and dispatch.
    pub barrier: u64,
    /// Sequential host cycles.
    pub host: u64,
}

impl HbAttribution {
    /// Sum of all components — always equals the simulator's total time.
    pub fn total(&self) -> u64 {
        self.compute + self.llc_access + self.dram_stall + self.bank + self.barrier + self.host
    }

    /// Named components in display order.
    pub fn components(&self) -> [(&'static str, u64); 6] {
        [
            ("compute", self.compute),
            ("llc_access", self.llc_access),
            ("dram_stall", self.dram_stall),
            ("bank", self.bank),
            ("barrier", self.barrier),
            ("host", self.host),
        ]
    }
}

/// Registry handles for the `sim_hb.` counter namespace.
struct Counters {
    compute: Counter,
    llc_access: Counter,
    dram_stall: Counter,
    bank: Counter,
    barrier: Counter,
    host: Counter,
    total: Counter,
    phases: Counter,
    network_hops: Counter,
    llc_hits: Counter,
    llc_misses: Counter,
    scratchpad_hits: Counter,
    dram_bytes: Counter,
}

fn counters() -> &'static Counters {
    static COUNTERS: OnceLock<Counters> = OnceLock::new();
    COUNTERS.get_or_init(|| Counters {
        compute: Counter::new("sim_hb.cycles.compute"),
        llc_access: Counter::new("sim_hb.cycles.llc_access"),
        dram_stall: Counter::new("sim_hb.cycles.dram_stall"),
        bank: Counter::new("sim_hb.cycles.bank"),
        barrier: Counter::new("sim_hb.cycles.barrier"),
        host: Counter::new("sim_hb.cycles.host"),
        total: Counter::new("sim_hb.cycles.total"),
        phases: Counter::new("sim_hb.phases"),
        network_hops: Counter::new("sim_hb.network_hops"),
        llc_hits: Counter::new("sim_hb.llc_hits"),
        llc_misses: Counter::new("sim_hb.llc_misses"),
        scratchpad_hits: Counter::new("sim_hb.scratchpad_hits"),
        dram_bytes: Counter::new("sim_hb.dram_bytes"),
    })
}

/// Configuration of the simulated manycore (Table VII flavored).
#[derive(Debug, Clone)]
pub struct HbConfig {
    /// Grid columns (fixed at 16 in the paper's scaling study).
    pub cols: usize,
    /// Grid rows (2/4/8/16 in the scaling study).
    pub rows: usize,
    /// LLC banks.
    pub llc_banks: usize,
    /// LLC capacity in bytes.
    pub llc_bytes: u64,
    /// LLC associativity.
    pub llc_ways: usize,
    /// Bytes per cache line.
    pub line_bytes: u64,
    /// LLC hit latency (cycles).
    pub llc_hit_cycles: u64,
    /// Additional DRAM latency on a miss (cycles).
    pub dram_cycles: u64,
    /// Bank occupancy per access (cycles).
    pub bank_cycles: u64,
    /// HBM channels.
    pub hbm_channels: usize,
    /// Bytes per cycle per channel.
    pub channel_bytes_per_cycle: u64,
    /// Outstanding non-blocking requests a core can overlap on demand
    /// accesses.
    pub demand_overlap: u64,
    /// Outstanding requests during bulk (prefetch) transfers.
    pub bulk_overlap: u64,
    /// Extra bank occupancy when multiple cores touch the same line in one
    /// phase (NoC/merge contention).
    pub line_contention_cycles: u64,
    /// Host dispatch + barrier cost per kernel phase.
    pub barrier_cycles: u64,
    /// Clock in GHz.
    pub clock_ghz: f64,
}

impl Default for HbConfig {
    fn default() -> Self {
        HbConfig {
            cols: 16,
            rows: 8,
            llc_banks: 32,
            llc_bytes: 128 << 10,
            llc_ways: 8,
            line_bytes: 32,
            llc_hit_cycles: 20,
            dram_cycles: 100,
            bank_cycles: 1,
            hbm_channels: 2,
            channel_bytes_per_cycle: 32,
            demand_overlap: 2,
            bulk_overlap: 8,
            line_contention_cycles: 6,
            barrier_cycles: 1500,
            clock_ghz: 1.0,
        }
    }
}

impl HbConfig {
    /// Number of cores in the grid.
    pub fn num_cores(&self) -> usize {
        self.cols * self.rows
    }

    /// A configuration with the given number of rows (16 columns fixed, as
    /// in the paper's Fig. 10a sweep).
    pub fn with_rows(mut self, rows: usize) -> Self {
        self.rows = rows;
        self
    }
}

/// One memory access (or bulk transfer) issued by a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HbAccess {
    /// A dependent (pointer-chasing style) access to one element.
    Demand {
        /// Array id.
        prop: u32,
        /// Element index.
        idx: u32,
        /// Whether it writes.
        write: bool,
    },
    /// A pipelined sequential transfer of `count` elements starting at
    /// `start` (scratchpad prefetch, neighbor-list scan).
    Bulk {
        /// Array id.
        prop: u32,
        /// First element index.
        start: u32,
        /// Elements transferred.
        count: u32,
        /// Whether it writes.
        write: bool,
    },
}

/// Execution trace of one core within a phase.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoreTrace {
    /// Scalar instructions (including scratchpad accesses).
    pub computes: u64,
    /// Memory operations in order.
    pub accesses: Vec<HbAccess>,
}

/// Aggregate statistics (Table IX's inputs).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HbStats {
    /// Kernel phases executed.
    pub phases: u64,
    /// LLC hits.
    pub llc_hits: u64,
    /// LLC misses.
    pub llc_misses: u64,
    /// Bytes moved from HBM.
    pub dram_bytes: u64,
    /// Core-cycles stalled waiting on DRAM.
    pub dram_stall_cycles: u64,
    /// Core-cycles of compute.
    pub compute_cycles: u64,
}

#[derive(Debug)]
struct Llc {
    sets: Vec<Vec<u64>>,
    ways: usize,
    num_sets: u64,
}

impl Llc {
    fn new(capacity: u64, line: u64, ways: usize) -> Self {
        let lines = (capacity / line).max(1);
        let num_sets = (lines / ways as u64).max(1);
        Llc {
            sets: vec![Vec::with_capacity(ways); num_sets as usize],
            ways,
            num_sets,
        }
    }

    fn access(&mut self, line: u64) -> bool {
        let set = &mut self.sets[(line % self.num_sets) as usize];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            let l = set.remove(pos);
            set.insert(0, l);
            true
        } else {
            if set.len() == self.ways {
                set.pop();
            }
            set.insert(0, line);
            false
        }
    }
}

/// The HammerBlade timing simulator.
#[derive(Debug)]
pub struct HbSim {
    /// Machine configuration.
    pub cfg: HbConfig,
    /// Aggregate statistics.
    pub stats: HbStats,
    /// Cycle attribution; components sum to [`HbSim::time_cycles`].
    pub attr: HbAttribution,
    llc: Llc,
    time: u64,
}

impl HbSim {
    /// Creates a simulator.
    pub fn new(cfg: HbConfig) -> Self {
        let llc = Llc::new(cfg.llc_bytes, cfg.line_bytes, cfg.llc_ways);
        HbSim {
            cfg,
            stats: HbStats::default(),
            attr: HbAttribution::default(),
            llc,
            time: 0,
        }
    }

    /// Records an attribution increment (the caller advances `time` by the
    /// same total) and mirrors it into the telemetry registry.
    fn attribute(&mut self, delta: HbAttribution) {
        self.attr.compute += delta.compute;
        self.attr.llc_access += delta.llc_access;
        self.attr.dram_stall += delta.dram_stall;
        self.attr.bank += delta.bank;
        self.attr.barrier += delta.barrier;
        self.attr.host += delta.host;
        let c = counters();
        c.compute.add(delta.compute);
        c.llc_access.add(delta.llc_access);
        c.dram_stall.add(delta.dram_stall);
        c.bank.add(delta.bank);
        c.barrier.add(delta.barrier);
        c.host.add(delta.host);
        c.total.add(delta.total());
    }

    /// Total simulated cycles.
    pub fn time_cycles(&self) -> u64 {
        self.time
    }

    /// Simulated milliseconds.
    pub fn time_ms(&self) -> f64 {
        self.time as f64 / (self.cfg.clock_ghz * 1e6)
    }

    /// Achieved DRAM bandwidth as a fraction of peak, so far.
    pub fn bandwidth_utilization(&self) -> f64 {
        if self.time == 0 {
            return 0.0;
        }
        let peak = (self.cfg.hbm_channels as u64 * self.cfg.channel_bytes_per_cycle) as f64;
        (self.stats.dram_bytes as f64 / self.time as f64) / peak
    }

    /// Charges sequential host cycles.
    pub fn host_cycles(&mut self, cycles: u64) {
        self.attribute(HbAttribution {
            host: cycles,
            ..HbAttribution::default()
        });
        self.time += cycles;
        budget::check_cycles(self.time);
    }

    fn line_of(&self, prop: u32, idx: u32) -> u64 {
        (((prop as u64) << 28) + (idx as u64) * 4) / self.cfg.line_bytes
    }

    /// Runs one SPMD kernel phase from per-core traces; returns the cycles
    /// charged (including the end-of-phase barrier).
    pub fn run_phase(&mut self, _name: &str, cores: Vec<CoreTrace>) -> u64 {
        self.stats.phases += 1;
        let stats_before = self.stats;
        let mut max_core: u64 = 0;
        let mut bank_load: HashMap<usize, u64> = HashMap::new();
        let mut phase_dram_bytes: u64 = 0;
        // Raw attribution sums in core-cycles, classifying every addition
        // to `core_time`; scaled to the phase's actual charge below.
        let mut compute_raw: u64 = 0;
        let mut llc_raw: u64 = 0;
        let mut dram_raw: u64 = 0;
        let mut scratch_hits: u64 = 0;
        // (line -> (first core id, shared?)) for contention accounting.
        let mut line_users: HashMap<u64, (usize, bool)> = HashMap::new();

        for (core_id, trace) in cores.iter().enumerate() {
            let mut core_time = trace.computes;
            // Per-array stream buffers (MSHR-like): repeated accesses to the
            // line most recently fetched from each array are free — the
            // locality that alignment-based partitioning creates.
            let mut stream: HashMap<u32, u64> = HashMap::new();
            self.stats.compute_cycles += trace.computes;
            compute_raw += trace.computes;
            for a in &trace.accesses {
                match *a {
                    HbAccess::Demand { prop, idx, write } => {
                        let line = self.line_of(prop, idx);
                        if !write && stream.get(&prop) == Some(&line) {
                            // Scratchpad/stream-buffer hit: core-local.
                            scratch_hits += 1;
                            compute_raw += 1;
                            core_time += 1;
                            continue;
                        }
                        stream.insert(prop, line);
                        match line_users.entry(line) {
                            std::collections::hash_map::Entry::Occupied(mut e) => {
                                let (first, shared) = *e.get();
                                if first != core_id && !shared {
                                    e.insert((first, true));
                                }
                            }
                            std::collections::hash_map::Entry::Vacant(e) => {
                                e.insert((core_id, false));
                            }
                        }
                        let hit = self.llc.access(line);
                        *bank_load
                            .entry((line % self.cfg.llc_banks as u64) as usize)
                            .or_insert(0) += self.cfg.bank_cycles;
                        let (lat, miss_stall) = if hit {
                            self.stats.llc_hits += 1;
                            (self.cfg.llc_hit_cycles, 0)
                        } else {
                            self.stats.llc_misses += 1;
                            phase_dram_bytes += self.cfg.line_bytes;
                            let stall = self.cfg.dram_cycles;
                            self.stats.dram_stall_cycles += stall / self.cfg.demand_overlap;
                            (
                                self.cfg.llc_hit_cycles + stall,
                                stall / self.cfg.demand_overlap,
                            )
                        };
                        // Non-blocking loads overlap a little; writes post.
                        let added = if write {
                            2
                        } else {
                            lat / self.cfg.demand_overlap
                        };
                        let dram_part = miss_stall.min(added);
                        dram_raw += dram_part;
                        llc_raw += added - dram_part;
                        core_time += added;
                    }
                    HbAccess::Bulk {
                        prop,
                        start,
                        count,
                        write,
                    } => {
                        if count == 0 {
                            continue;
                        }
                        let first = self.line_of(prop, start);
                        let last = self.line_of(prop, start + count - 1);
                        let mut lines = 0u64;
                        let mut misses = 0u64;
                        for line in first..=last {
                            lines += 1;
                            let hit = self.llc.access(line);
                            // Burst transfers occupy banks at half rate.
                            *bank_load
                                .entry((line % self.cfg.llc_banks as u64) as usize)
                                .or_insert(0) += self.cfg.bank_cycles.div_ceil(2);
                            if hit {
                                self.stats.llc_hits += 1;
                            } else {
                                self.stats.llc_misses += 1;
                                phase_dram_bytes += self.cfg.line_bytes;
                                misses += 1;
                            }
                        }
                        // Deeply pipelined: latency amortized over the
                        // outstanding-request window.
                        let lat = lines * self.cfg.llc_hit_cycles + misses * self.cfg.dram_cycles;
                        let stall = lat / self.cfg.bulk_overlap;
                        let miss_stall = misses * self.cfg.dram_cycles / self.cfg.bulk_overlap;
                        self.stats.dram_stall_cycles += miss_stall;
                        let added = if write { lines * 2 } else { stall.max(lines) };
                        let dram_part = if write { 0 } else { miss_stall.min(added) };
                        dram_raw += dram_part;
                        llc_raw += added - dram_part;
                        core_time += added;
                    }
                }
            }
            max_core = max_core.max(core_time);
        }

        // Lines shared across cores in one phase serialize at their bank.
        for (line, (_, shared)) in &line_users {
            if *shared {
                *bank_load
                    .entry((line % self.cfg.llc_banks as u64) as usize)
                    .or_insert(0) += self.cfg.line_contention_cycles;
            }
        }
        let bank_bound = bank_load.values().copied().max().unwrap_or(0);
        let bw_bound = phase_dram_bytes
            / (self.cfg.hbm_channels as u64 * self.cfg.channel_bytes_per_cycle).max(1);
        self.stats.dram_bytes += phase_dram_bytes;
        let work = max_core.max(bank_bound).max(bw_bound);
        // Injected DRAM bit error: the affected reads are retried, costing
        // extra DRAM latency (degraded, absorbed as dram_stall).
        let bit_error_retry = if fault::roll(fault::Domain::Hb, fault::FaultKind::DramBitError) {
            self.cfg.dram_cycles * 64
        } else {
            0
        };
        self.stats.dram_stall_cycles += bit_error_retry;
        let cycles = work + self.cfg.barrier_cycles + bit_error_retry;
        // Scale the raw classification to the phase's actual charge;
        // dram_stall takes the remainder (absorbing rounding and any
        // bandwidth-roofline excess), the barrier is charged exactly.
        let bank_raw = bank_bound;
        let raw_total = compute_raw + llc_raw + dram_raw + bank_raw;
        let scale = |part: u64| {
            if raw_total == 0 {
                0
            } else {
                ((work as u128 * part as u128) / raw_total as u128) as u64
            }
        };
        let (compute, llc_access, bank) = (scale(compute_raw), scale(llc_raw), scale(bank_raw));
        self.attribute(HbAttribution {
            compute,
            llc_access,
            dram_stall: work - compute - llc_access - bank + bit_error_retry,
            bank,
            barrier: self.cfg.barrier_cycles,
            host: 0,
        });
        let c = counters();
        let hits = self.stats.llc_hits - stats_before.llc_hits;
        let misses = self.stats.llc_misses - stats_before.llc_misses;
        c.phases.incr();
        c.network_hops.add(hits + misses);
        c.llc_hits.add(hits);
        c.llc_misses.add(misses);
        c.scratchpad_hits.add(scratch_hits);
        c.dram_bytes.add(phase_dram_bytes);
        self.time += cycles;
        budget::check_cycles(self.time);
        cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(prop: u32, idx: u32) -> HbAccess {
        HbAccess::Demand {
            prop,
            idx,
            write: false,
        }
    }

    #[test]
    fn bulk_prefetch_beats_demand_chain() {
        // Fetching 256 scattered elements on demand vs one bulk range.
        let demand_trace = CoreTrace {
            computes: 0,
            accesses: (0..256).map(|i| demand(1, i * 97 % 4096)).collect(),
        };
        let bulk_trace = CoreTrace {
            computes: 0,
            accesses: vec![HbAccess::Bulk {
                prop: 1,
                start: 0,
                count: 256,
                write: false,
            }],
        };
        let mut s1 = HbSim::new(HbConfig::default());
        let c1 = s1.run_phase("demand", vec![demand_trace]);
        let mut s2 = HbSim::new(HbConfig::default());
        let c2 = s2.run_phase("bulk", vec![bulk_trace]);
        assert!(c2 < c1, "bulk {c2} must beat demand {c1}");
        assert!(s2.stats.dram_stall_cycles < s1.stats.dram_stall_cycles);
    }

    #[test]
    fn phase_time_is_slowest_core_plus_barrier() {
        let light = CoreTrace {
            computes: 10,
            accesses: vec![],
        };
        let heavy = CoreTrace {
            computes: 10_000,
            accesses: vec![],
        };
        let mut sim = HbSim::new(HbConfig::default());
        let c = sim.run_phase("p", vec![light, heavy]);
        assert_eq!(c, 10_000 + HbConfig::default().barrier_cycles);
    }

    #[test]
    fn llc_reuse_hits() {
        // Stride by a full line so the core's line buffer cannot coalesce.
        let t = || CoreTrace {
            computes: 0,
            accesses: (0..64).map(|i| demand(2, i * 8)).collect(),
        };
        let mut sim = HbSim::new(HbConfig::default());
        sim.run_phase("cold", vec![t()]);
        let misses_cold = sim.stats.llc_misses;
        assert_eq!(misses_cold, 64);
        sim.run_phase("warm", vec![t()]);
        assert_eq!(sim.stats.llc_misses, misses_cold, "warm pass must hit");
        assert!(sim.stats.llc_hits >= 64);
    }

    #[test]
    fn line_buffer_coalesces_consecutive_same_line_loads() {
        let t = CoreTrace {
            computes: 0,
            accesses: (0..64).map(|i| demand(2, i)).collect(), // 8 lines
        };
        let mut sim = HbSim::new(HbConfig::default());
        sim.run_phase("seq", vec![t]);
        assert_eq!(sim.stats.llc_hits + sim.stats.llc_misses, 8);
    }

    #[test]
    fn bandwidth_utilization_reported() {
        let t = CoreTrace {
            computes: 0,
            accesses: (0..1000).map(|i| demand(3, i * 8)).collect(),
        };
        let mut sim = HbSim::new(HbConfig::default());
        sim.run_phase("bw", vec![t]);
        let u = sim.bandwidth_utilization();
        assert!(u > 0.0 && u <= 1.0, "{u}");
        assert!(sim.stats.dram_bytes > 0);
        assert!(sim.time_ms() > 0.0);
    }

    #[test]
    fn attribution_components_sum_to_total_time() {
        let mut sim = HbSim::new(HbConfig::default());
        sim.host_cycles(55);
        for p in 0..4u32 {
            let cores: Vec<CoreTrace> = (0..16u32)
                .map(|c| CoreTrace {
                    computes: 100 + c as u64 * 7,
                    accesses: (0..64)
                        .map(|i| {
                            if i % 5 == 0 {
                                HbAccess::Bulk {
                                    prop: 1,
                                    start: p * 4096 + i * 32,
                                    count: 32,
                                    write: i % 10 == 5,
                                }
                            } else {
                                HbAccess::Demand {
                                    prop: 2,
                                    idx: (c * 997 + i * 131 + p * 13) % 65536,
                                    write: i % 7 == 3,
                                }
                            }
                        })
                        .collect(),
                })
                .collect();
            sim.run_phase("mixed", cores);
        }
        assert_eq!(sim.attr.total(), sim.time_cycles());
        assert_eq!(sim.attr.host, 55);
        assert_eq!(sim.attr.barrier, 4 * HbConfig::default().barrier_cycles);
        assert!(sim.attr.compute > 0);
        assert!(sim.attr.llc_access > 0);
        assert!(sim.attr.dram_stall > 0);
    }

    #[test]
    fn more_rows_means_more_cores() {
        assert_eq!(HbConfig::default().with_rows(2).num_cores(), 32);
        assert_eq!(HbConfig::default().with_rows(16).num_cores(), 256);
    }

    #[test]
    fn bank_contention_bounds_phase() {
        // Many cores hammering two alternating lines in the same bank →
        // that bank serializes.
        let cores: Vec<CoreTrace> = (0..128)
            .map(|_| CoreTrace {
                computes: 1,
                accesses: (0..64)
                    .map(|i| demand(1, if i % 2 == 0 { 0 } else { 256 * 8 }))
                    .collect(),
            })
            .collect();
        let mut sim = HbSim::new(HbConfig::default());
        let c = sim.run_phase("contended", cores);
        // Both lines map to bank 0: 128 cores × 64 accesses × bank_cycles.
        let bank_cycles = 128 * 64 * HbConfig::default().bank_cycles;
        assert!(c >= bank_cycles, "{c} vs {bank_cycles}");
    }

    #[test]
    fn shared_lines_cost_contention() {
        let mk = |idx: u32| CoreTrace {
            computes: 0,
            accesses: vec![demand(1, idx)],
        };
        // 64 cores all touching one line vs 64 cores touching 64 lines
        // spread across banks.
        let shared: Vec<CoreTrace> = (0..64).map(|_| mk(0)).collect();
        let spread: Vec<CoreTrace> = (0..64).map(|i| mk(i * 8)).collect();
        let mut s1 = HbSim::new(HbConfig::default());
        let c1 = s1.run_phase("shared", shared);
        let mut s2 = HbSim::new(HbConfig::default());
        let c2 = s2.run_phase("spread", spread);
        assert!(c1 > c2, "shared {c1} must exceed spread {c2}");
    }
}
