//! Emitter tests: every GraphVM emits its architecture's C++ dialect for
//! every algorithm, with the expected architectural markers, and the
//! output is deterministic.

use ugc::{Algorithm, Compiler, Target};

fn emit(algo: Algorithm, target: Target) -> String {
    Compiler::new(algo)
        .emit(target)
        .unwrap_or_else(|e| panic!("{} on {}: {e}", algo.name(), target.name()))
}

#[test]
fn all_algorithms_emit_for_all_targets() {
    for algo in Algorithm::ALL {
        for target in Target::ALL {
            let text = emit(algo, target);
            // TC's single-statement main keeps some dialects under 300
            // bytes, so the floor only guards against empty emission; the
            // structural check is the `main` entry point.
            assert!(
                text.len() > 150,
                "{} for {} suspiciously short",
                algo.name(),
                target.name()
            );
            // CPU/GPU/Swarm emit `int main(`; HammerBlade `kernel_main(`.
            assert!(
                text.contains("main("),
                "{} for {} has no entry point:\n{text}",
                algo.name(),
                target.name()
            );
        }
    }
}

#[test]
fn emission_is_deterministic() {
    for target in Target::ALL {
        assert_eq!(
            emit(Algorithm::Bc, target),
            emit(Algorithm::Bc, target),
            "{}",
            target.name()
        );
    }
}

#[test]
fn cpu_emitter_markers() {
    let text = emit(Algorithm::Bfs, Target::Cpu);
    assert!(text.contains("#include \"ugc_cpu_runtime.h\""), "{text}");
    assert!(text.contains("edgeset_apply_push"), "{text}");
    assert!(text.contains("int main(int argc, char* argv[])"), "{text}");
}

#[test]
fn cuda_emitter_markers() {
    let text = emit(Algorithm::Bfs, Target::Gpu);
    assert!(text.contains("__device__"), "{text}");
    assert!(text.contains("<<<GRID, BLOCK>>>"), "{text}");
    assert!(text.contains("cudaDeviceSynchronize()"), "{text}");
}

#[test]
fn t4_emitter_markers() {
    let text = emit(Algorithm::Sssp, Target::Swarm);
    assert!(text.contains("#include \"swarm/api.h\""), "{text}");
    assert!(text.contains("swarm::run()"), "{text}");
}

#[test]
fn hb_emitter_markers() {
    let text = emit(Algorithm::PageRank, Target::HammerBlade);
    assert!(text.contains("bsg_manycore.h"), "{text}");
    assert!(text.contains("launch_edge_kernel"), "{text}");
    assert!(text.contains("device_barrier()"), "{text}");
    assert!(text.contains(".dram"), "{text}");
}

#[test]
fn atomics_marked_in_device_code() {
    // The atomics-insertion pass's output is visible in CUDA for PR's
    // push-mode rank accumulation.
    let text = emit(Algorithm::PageRank, Target::Gpu);
    assert!(text.contains("atomicAdd"), "{text}");
}

#[test]
fn bc_emits_transposed_traversal() {
    let text = emit(Algorithm::Bc, Target::Cpu);
    assert!(text.contains("transposed"), "{text}");
}
