//! Monomorphized edge-traversal kernels: the CPU GraphVM's answer to the
//! interpreter tax.
//!
//! The generic executor pays per-edge for genericity — a `Vec<Value>` of
//! arguments, a register frame, and an instruction-dispatch loop per UDF
//! call. This module recognizes the traversal shapes the midend actually
//! produces (CAS-claim, property reduction, priority relaxation, plus
//! `prop[v] == const` filters) by symbolically executing the compiled
//! bytecode, and builds a specialized closed-form loop for each
//! combination — one monomorphized `Kernel<Op, SrcFilter, DstFilter>`
//! instantiation per shape, selected **once per run** and cached by
//! [`KernelKey`] (the [`ugc_schedule::SchedulePoint`] plus the operator
//! facts only this backend sees).
//!
//! Anything the recognizer does not understand falls back to the
//! interpreter, which also remains the differential oracle: every kernel
//! reproduces the evaluator's observable semantics exactly — the same
//! [`PropertyStorage`] atomics (`cas`/`reduce`/`reduce_relaxed`), the same
//! enqueue and priority-notification conditions, in the same order.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::{Arc, Mutex, OnceLock};

use ugc_graph::Csr;
use ugc_graphir::types::{BinOp, ReduceOp, Type};
use ugc_runtime::bytecode::{Instr, UdfProgram};
use ugc_runtime::eval::{BufferedOutput, UdfOutput};
use ugc_runtime::properties::{PropId, PropertyStorage};
use ugc_runtime::value::Value;
use ugc_runtime::vertexset::VertexSet;
use ugc_runtime::{UdfId, UdfSet};
use ugc_schedule::SchedulePoint;

/// Whether compiled kernels are enabled for this process (default yes).
/// `UGC_CPU_KERNELS=0|off|false` forces the interpreter everywhere — the
/// CI smoke uses this to assert the fallback path stays alive.
pub fn kernels_enabled_by_env() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| {
        !matches!(
            std::env::var("UGC_CPU_KERNELS").as_deref(),
            Ok("0") | Ok("off") | Ok("false")
        )
    })
}

/// Identity of one specialized traversal: the hardware-independent
/// schedule point plus the operator facts that select a kernel body.
///
/// UDF ids are only meaningful within one compiled program, so keys must
/// not outlive the run they were built for — [`KernelCache`] enforces this
/// by being per-run (the executor resets it on clone).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelKey {
    /// Schedule point (direction, parallelization, dedup, pull repr).
    pub point: SchedulePoint,
    /// The apply UDF.
    pub udf: UdfId,
    /// Source-side filter UDF, if any.
    pub src_filter: Option<UdfId>,
    /// Destination-side filter UDF, if any.
    pub dst_filter: Option<UdfId>,
    /// Whether the UDF consumes the edge weight (3-parameter form).
    pub weighted: bool,
}

/// Everything a kernel needs per range: the property arrays and the CSR
/// for the traversal direction (forward for push, backward for pull).
pub struct Io<'a> {
    /// Property vectors.
    pub props: &'a PropertyStorage,
    /// Adjacency in the traversal direction.
    pub csr: &'a Csr,
}

/// A compiled edge-traversal loop. One object serves every direction —
/// the executor picks the entry point, the monomorphized body does the
/// per-edge work without touching the interpreter.
pub trait EdgeKernel: Send + Sync {
    /// Short name of the recognized operator shape (for telemetry rows,
    /// emitter comments, and tests).
    fn name(&self) -> &'static str;

    /// Push traversal over `members[range]` (mirror of the interpreter's
    /// `push_range`).
    fn run_push(&self, io: &Io<'_>, members: &[u32], range: Range<usize>, out: &mut BufferedOutput);

    /// Pull traversal over destination vertices `range`, with optional
    /// input-frontier membership (mirror of `pull_range`, including the
    /// direction-optimizing early exit on the destination filter).
    fn run_pull(
        &self,
        io: &Io<'_>,
        membership: Option<&VertexSet>,
        range: Range<usize>,
        out: &mut BufferedOutput,
    );

    /// Cache-blocked push: only edges with destination in `lo..hi`
    /// (mirror of the interpreter's EdgeBlocking inner loop).
    fn run_push_block(
        &self,
        io: &Io<'_>,
        members: &[u32],
        range: Range<usize>,
        lo: u32,
        hi: u32,
        out: &mut BufferedOutput,
    );
}

/// Per-run kernel table: `KernelKey → Option<kernel>` (a cached `None`
/// records a deliberate fallback so recognition runs once per key).
#[derive(Default)]
pub struct KernelCache {
    map: Mutex<HashMap<KernelKey, Option<Arc<dyn EdgeKernel>>>>,
}

impl KernelCache {
    /// Looks up `key`, recognizing on first use via `build`.
    pub fn resolve(
        &self,
        key: KernelKey,
        build: impl FnOnce() -> Option<Arc<dyn EdgeKernel>>,
    ) -> Option<Arc<dyn EdgeKernel>> {
        let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(key).or_insert_with(build).clone()
    }
}

// ---------------------------------------------------------------------------
// Recognition: symbolic execution of UDF bytecode.
// ---------------------------------------------------------------------------

/// Symbolic value of a register during recognition.
#[derive(Debug, Clone, PartialEq)]
enum Sym {
    /// UDF parameter `i` (0 = src, 1 = dst, 2 = weight for 3-param UDFs).
    Param(usize),
    /// A literal constant.
    Lit(Value),
    /// The edge weight (the `EdgeWeight` intrinsic).
    Weight,
    /// `prop[idx]`.
    Load(PropId, Box<Sym>),
    /// `a + b`.
    Add(Box<Sym>, Box<Sym>),
    /// `a == b`.
    Eq(Box<Sym>, Box<Sym>),
    /// The success/changed flag of effect `k`.
    Flag(usize),
    /// Anything the recognizer does not model.
    Opaque,
}

/// One side effect in program order.
#[derive(Debug, Clone)]
enum Effect {
    Cas {
        prop: PropId,
        idx: Sym,
        expected: Sym,
        new: Sym,
    },
    Reduce {
        prop: PropId,
        idx: Sym,
        op: ReduceOp,
        val: Sym,
        atomic: bool,
    },
    UpdatePrio {
        queue: usize,
        vertex: Sym,
        op: ReduceOp,
        val: Sym,
        atomic: bool,
    },
    Enqueue {
        vertex: Sym,
        /// Effect index whose success/changed flag guards this enqueue.
        guard: Option<usize>,
    },
}

/// Symbolically executes a UDF. Returns its effects in order plus the
/// symbolic return value, or `None` when the program uses anything outside
/// the modeled subset (stores, globals, calls, loops, non-flag branches).
fn symexec(u: &UdfProgram) -> Option<(Vec<Effect>, Option<Sym>)> {
    let mut regs: Vec<Sym> = (0..u.num_regs)
        .map(|i| {
            if i < u.num_params {
                Sym::Param(i)
            } else {
                Sym::Lit(Value::Int(0))
            }
        })
        .collect();
    let mut effects: Vec<Effect> = Vec::new();
    let mut pc = 0usize;
    while pc < u.instrs.len() {
        match &u.instrs[pc] {
            Instr::Const { dst, v } => regs[*dst as usize] = Sym::Lit(*v),
            Instr::Mov { dst, src } => regs[*dst as usize] = regs[*src as usize].clone(),
            Instr::Bin { op, dst, a, b } => {
                let (a, b) = (regs[*a as usize].clone(), regs[*b as usize].clone());
                regs[*dst as usize] = match op {
                    BinOp::Add => Sym::Add(Box::new(a), Box::new(b)),
                    BinOp::Eq => Sym::Eq(Box::new(a), Box::new(b)),
                    _ => Sym::Opaque,
                };
            }
            Instr::EdgeWeight { dst } => regs[*dst as usize] = Sym::Weight,
            Instr::LoadProp { dst, prop, idx } => {
                regs[*dst as usize] = Sym::Load(*prop, Box::new(regs[*idx as usize].clone()));
            }
            Instr::Cas {
                dst,
                prop,
                idx,
                expected,
                new,
                ..
            } => {
                let k = effects.len();
                effects.push(Effect::Cas {
                    prop: *prop,
                    idx: regs[*idx as usize].clone(),
                    expected: regs[*expected as usize].clone(),
                    new: regs[*new as usize].clone(),
                });
                regs[*dst as usize] = Sym::Flag(k);
            }
            Instr::ReduceProp {
                prop,
                idx,
                op,
                val,
                atomic,
                changed,
            } => {
                let k = effects.len();
                effects.push(Effect::Reduce {
                    prop: *prop,
                    idx: regs[*idx as usize].clone(),
                    op: *op,
                    val: regs[*val as usize].clone(),
                    atomic: *atomic,
                });
                if let Some(c) = changed {
                    regs[*c as usize] = Sym::Flag(k);
                }
            }
            Instr::UpdatePrio {
                queue,
                vertex,
                op,
                val,
                atomic,
            } => {
                effects.push(Effect::UpdatePrio {
                    queue: *queue,
                    vertex: regs[*vertex as usize].clone(),
                    op: *op,
                    val: regs[*val as usize].clone(),
                    atomic: *atomic,
                });
            }
            Instr::Enqueue { vertex } => {
                effects.push(Effect::Enqueue {
                    vertex: regs[*vertex as usize].clone(),
                    guard: None,
                });
            }
            Instr::JumpIfNot { cond, target } => {
                // The only branch shape modeled: `if <flag> { enqueue… }`,
                // exactly what the tracking pass emits.
                let Sym::Flag(k) = regs[*cond as usize] else {
                    return None;
                };
                if *target <= pc || *target > u.instrs.len() {
                    return None;
                }
                for j in pc + 1..*target {
                    match &u.instrs[j] {
                        Instr::Enqueue { vertex } => effects.push(Effect::Enqueue {
                            vertex: regs[*vertex as usize].clone(),
                            guard: Some(k),
                        }),
                        _ => return None,
                    }
                }
                pc = *target;
                continue;
            }
            Instr::Ret => break,
            // Stores, globals, calls, degrees, loops, unary ops: out of
            // the modeled subset — the interpreter handles these.
            _ => return None,
        }
        pc += 1;
    }
    Some((effects, u.ret_reg.map(|r| regs[r as usize].clone())))
}

// ---------------------------------------------------------------------------
// Kernel bodies.
// ---------------------------------------------------------------------------

/// The per-edge operator of a kernel.
trait KOp: Send + Sync + 'static {
    fn apply(&self, props: &PropertyStorage, src: u32, dst: u32, w: i64, out: &mut BufferedOutput);
}

/// `CAS(prop[dst], expected, src)`, enqueueing `dst` on success (BFS
/// parent-claim, as lowered by the tracking pass).
struct CasClaim {
    prop: PropId,
    expected: Value,
    enqueue: bool,
}

impl KOp for CasClaim {
    #[inline]
    fn apply(
        &self,
        props: &PropertyStorage,
        src: u32,
        dst: u32,
        _w: i64,
        out: &mut BufferedOutput,
    ) {
        if props.cas(self.prop, dst, self.expected, Value::Int(src as i64)) && self.enqueue {
            out.enqueue(dst);
        }
    }
}

/// `dst_prop[dst] op= src_prop[src]`, optionally enqueueing `dst` when the
/// cell changed (CC label-min, PageRank rank-sum, BC path/deps-sum).
struct PropReduce {
    dst_prop: PropId,
    src_prop: PropId,
    op: ReduceOp,
    atomic: bool,
    enqueue: bool,
}

impl KOp for PropReduce {
    #[inline]
    fn apply(
        &self,
        props: &PropertyStorage,
        src: u32,
        dst: u32,
        _w: i64,
        out: &mut BufferedOutput,
    ) {
        let v = props.read(self.src_prop, src);
        let (changed, _) = if self.atomic {
            props.reduce(self.dst_prop, dst, self.op, v)
        } else {
            props.reduce_relaxed(self.dst_prop, dst, self.op, v)
        };
        if changed && self.enqueue {
            out.enqueue(dst);
        }
    }
}

/// Priority-queue relaxation: `pq.updatePriorityMin(dst, prop[src] + weight)`
/// (SSSP) or `pq.updatePrioritySum(dst, prop[src] [+ weight])` (delta-sum
/// accumulation).
struct RelaxPrio {
    queue: usize,
    qprop: PropId,
    prop: PropId,
    add_weight: bool,
    op: ReduceOp,
    atomic: bool,
}

impl KOp for RelaxPrio {
    #[inline]
    fn apply(&self, props: &PropertyStorage, src: u32, dst: u32, w: i64, out: &mut BufferedOutput) {
        let mut nd = props.read(self.prop, src).as_int();
        if self.add_weight {
            nd += w;
        }
        let v = Value::Int(nd);
        let (changed, _) = if self.atomic {
            props.reduce(self.qprop, dst, self.op, v)
        } else {
            props.reduce_relaxed(self.qprop, dst, self.op, v)
        };
        if changed {
            // The interpreter notifies Sum updates with the post-reduce cell
            // value (a re-read), and every other op with the proposed value.
            let newp = match self.op {
                ReduceOp::Sum => props.read(self.qprop, dst).as_int(),
                _ => nd,
            };
            out.priority_changed(self.queue, dst, newp);
        }
    }
}

/// A vertex filter, monomorphized so the no-filter case compiles away.
trait KFilter: Send + Sync + 'static {
    const ACTIVE: bool;
    fn pass(&self, props: &PropertyStorage, v: u32) -> bool;
}

/// No filter: always passes.
struct NoFilter;

impl KFilter for NoFilter {
    const ACTIVE: bool = false;
    #[inline]
    fn pass(&self, _props: &PropertyStorage, _v: u32) -> bool {
        true
    }
}

/// How an [`EqConst`] filter compares the cell against its literal.
#[derive(Clone, Copy)]
enum EqCmp {
    /// Raw bit comparison (int/bool/vertex cells with a matching literal).
    Bits(u64),
    /// IEEE-754 `==` on the decoded float cell, matching the interpreter's
    /// `Eq`: a NaN literal matches nothing, and `-0.0 == 0.0` admits both
    /// zero encodings (see DESIGN.md, "Float equality and NaN policy").
    Float(f64),
    /// IEEE-754 `==` on an int/vertex cell widened to float, matching the
    /// interpreter's mixed-type `Eq` (`as_float` widens the int side). A
    /// NaN literal matches nothing here too.
    IntWiden(f64),
}

/// `prop[v] == const`, with the comparison mode fixed at recognition time
/// so it coincides exactly with the interpreter's `Eq`.
struct EqConst {
    prop: PropId,
    cmp: EqCmp,
}

impl KFilter for EqConst {
    const ACTIVE: bool = true;
    #[inline]
    fn pass(&self, props: &PropertyStorage, v: u32) -> bool {
        let cell = props.read_bits(self.prop, v);
        match self.cmp {
            EqCmp::Bits(bits) => cell == bits,
            EqCmp::Float(c) => f64::from_bits(cell) == c,
            EqCmp::IntWiden(c) => (cell as i64) as f64 == c,
        }
    }
}

/// One monomorphized traversal: operator × source filter × dst filter.
struct Kernel<O: KOp, SF: KFilter, DF: KFilter> {
    op: O,
    sf: SF,
    df: DF,
    name: &'static str,
}

impl<O: KOp, SF: KFilter, DF: KFilter> EdgeKernel for Kernel<O, SF, DF> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn run_push(
        &self,
        io: &Io<'_>,
        members: &[u32],
        range: Range<usize>,
        out: &mut BufferedOutput,
    ) {
        for &src in &members[range] {
            if !self.sf.pass(io.props, src) {
                continue;
            }
            let weights = io.csr.neighbor_weights(src);
            for (k, &dst) in io.csr.neighbors(src).iter().enumerate() {
                if !self.df.pass(io.props, dst) {
                    continue;
                }
                let w = weights.map_or(1, |ws| ws[k]) as i64;
                self.op.apply(io.props, src, dst, w, out);
            }
        }
    }

    fn run_pull(
        &self,
        io: &Io<'_>,
        membership: Option<&VertexSet>,
        range: Range<usize>,
        out: &mut BufferedOutput,
    ) {
        for dst in range {
            let dst = dst as u32;
            if !self.df.pass(io.props, dst) {
                continue;
            }
            let weights = io.csr.neighbor_weights(dst);
            for (k, &src) in io.csr.neighbors(dst).iter().enumerate() {
                if let Some(m) = membership {
                    if !m.contains(src) {
                        continue;
                    }
                }
                if !self.sf.pass(io.props, src) {
                    continue;
                }
                let w = weights.map_or(1, |ws| ws[k]) as i64;
                self.op.apply(io.props, src, dst, w, out);
                // Direction-optimizing early exit, same as the interpreter.
                if DF::ACTIVE && !self.df.pass(io.props, dst) {
                    break;
                }
            }
        }
    }

    fn run_push_block(
        &self,
        io: &Io<'_>,
        members: &[u32],
        range: Range<usize>,
        lo: u32,
        hi: u32,
        out: &mut BufferedOutput,
    ) {
        for &src in &members[range] {
            if !self.sf.pass(io.props, src) {
                continue;
            }
            let neigh = io.csr.neighbors(src);
            let weights = io.csr.neighbor_weights(src);
            let start = neigh.partition_point(|&d| d < lo);
            for k in start..neigh.len() {
                let dst = neigh[k];
                if dst >= hi {
                    break;
                }
                if !self.df.pass(io.props, dst) {
                    continue;
                }
                let w = weights.map_or(1, |ws| ws[k]) as i64;
                self.op.apply(io.props, src, dst, w, out);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Pattern matching and construction.
// ---------------------------------------------------------------------------

fn is_src(s: &Sym) -> bool {
    matches!(s, Sym::Param(0))
}

fn is_dst(s: &Sym) -> bool {
    matches!(s, Sym::Param(1))
}

/// Recognizes a `prop[v] == const` filter whose comparison coincides with
/// the interpreter's `Eq`: bit equality for int/bool/vertex cells with a
/// matching literal, IEEE `==` for float cells (int literals widen,
/// exactly like `as_float`), and IEEE `==` with the cell widened for an
/// int/vertex cell against a float literal (the interpreter's mixed-type
/// promotion). Only bool cells against non-bool literals fall back.
fn recognize_filter(u: &UdfProgram, props: &PropertyStorage) -> Option<EqConst> {
    if u.num_params != 1 {
        return None;
    }
    let (effects, ret) = symexec(u)?;
    if !effects.is_empty() {
        return None;
    }
    let Some(Sym::Eq(a, b)) = ret else {
        return None;
    };
    let (prop, lit) = match (&*a, &*b) {
        (Sym::Load(p, i), Sym::Lit(c)) if matches!(**i, Sym::Param(0)) => (*p, *c),
        (Sym::Lit(c), Sym::Load(p, i)) if matches!(**i, Sym::Param(0)) => (*p, *c),
        _ => return None,
    };
    let cmp = match (props.ty(prop), lit) {
        (Type::Float, Value::Float(c)) => EqCmp::Float(c),
        (Type::Float, Value::Int(c)) => EqCmp::Float(c as f64),
        (Type::Bool, Value::Bool(_)) => EqCmp::Bits(props.bits_of(prop, lit)),
        (Type::Bool, _) => return None,
        (_, Value::Int(_)) => EqCmp::Bits(props.bits_of(prop, lit)),
        (_, Value::Float(c)) => EqCmp::IntWiden(c),
        _ => return None,
    };
    Some(EqConst { prop, cmp })
}

/// Builds the kernel object once both filters resolved.
fn assemble<O: KOp>(
    op: O,
    name: &'static str,
    sf: Option<EqConst>,
    df: Option<EqConst>,
) -> Arc<dyn EdgeKernel> {
    match (sf, df) {
        (None, None) => Arc::new(Kernel {
            op,
            sf: NoFilter,
            df: NoFilter,
            name,
        }),
        (Some(sf), None) => Arc::new(Kernel {
            op,
            sf,
            df: NoFilter,
            name,
        }),
        (None, Some(df)) => Arc::new(Kernel {
            op,
            sf: NoFilter,
            df,
            name,
        }),
        (Some(sf), Some(df)) => Arc::new(Kernel { op, sf, df, name }),
    }
}

/// Recognizes the apply UDF + filters of one edge traversal and builds the
/// specialized kernel, or returns `None` for a deliberate interpreter
/// fallback.
pub fn recognize(
    udfs: &UdfSet,
    props: &PropertyStorage,
    udf: UdfId,
    src_filter: Option<UdfId>,
    dst_filter: Option<UdfId>,
) -> Option<Arc<dyn EdgeKernel>> {
    let u = udfs.get(udf);
    if !(u.num_params == 2 || u.num_params == 3) || u.ret_reg.is_some() {
        return None;
    }
    let (effects, _) = symexec(u)?;
    let weight_like =
        |s: &Sym| matches!(s, Sym::Weight) || (u.num_params == 3 && matches!(s, Sym::Param(2)));

    // Resolve filters first: an unrecognized filter forces the fallback
    // even when the apply itself is specializable.
    let sf = match src_filter {
        None => None,
        Some(f) => Some(recognize_filter(udfs.get(f), props)?),
    };
    let df = match dst_filter {
        None => None,
        Some(f) => Some(recognize_filter(udfs.get(f), props)?),
    };

    match &effects[..] {
        // BFS-style parent claim, with or without tracked enqueue.
        [Effect::Cas {
            prop,
            idx,
            expected,
            new,
        }, rest @ ..]
            if is_dst(idx) && is_src(new) && matches!(expected, Sym::Lit(_)) =>
        {
            let enqueue = match rest {
                [] => false,
                [Effect::Enqueue {
                    vertex,
                    guard: Some(0),
                }] if is_dst(vertex) => true,
                _ => return None,
            };
            let Sym::Lit(expected) = expected else {
                return None;
            };
            Some(assemble(
                CasClaim {
                    prop: *prop,
                    expected: *expected,
                    enqueue,
                },
                "cas_claim",
                sf,
                df,
            ))
        }
        // CC / PageRank / BC style reduction, optionally with tracked
        // enqueue.
        [Effect::Reduce {
            prop,
            idx,
            op,
            val,
            atomic,
        }, rest @ ..]
            if is_dst(idx) && matches!(val, Sym::Load(_, i) if is_src(i)) =>
        {
            let enqueue = match rest {
                [] => false,
                [Effect::Enqueue {
                    vertex,
                    guard: Some(0),
                }] if is_dst(vertex) => true,
                _ => return None,
            };
            let Sym::Load(src_prop, _) = val else {
                return None;
            };
            Some(assemble(
                PropReduce {
                    dst_prop: *prop,
                    src_prop: *src_prop,
                    op: *op,
                    atomic: *atomic,
                    enqueue,
                },
                match op {
                    ReduceOp::Sum => "reduce_sum",
                    ReduceOp::Min => "reduce_min",
                    ReduceOp::Max => "reduce_max",
                    ReduceOp::Or => "reduce_or",
                },
                sf,
                df,
            ))
        }
        // Priority-queue relaxation: SSSP min over `prop[src] + weight`, or
        // delta-sum accumulation over `prop[src] [+ weight]`. The Sum kernel
        // replicates the interpreter's re-read-after-reduce notification.
        [Effect::UpdatePrio {
            queue,
            vertex,
            op: op @ (ReduceOp::Min | ReduceOp::Sum),
            val,
            atomic,
        }] if is_dst(vertex) => {
            let (prop, add_weight) = match val {
                Sym::Add(a, b) => match (&**a, &**b) {
                    (Sym::Load(d, i), other) if is_src(i) && weight_like(other) => (*d, true),
                    (other, Sym::Load(d, i)) if is_src(i) && weight_like(other) => (*d, true),
                    _ => return None,
                },
                Sym::Load(d, i) if is_src(&**i) => (*d, false),
                _ => return None,
            };
            // `as_int` on the loaded operand must match the interpreter's
            // integer arithmetic: any non-float cell qualifies.
            if props.ty(prop) == Type::Float {
                return None;
            }
            Some(assemble(
                RelaxPrio {
                    queue: *queue,
                    qprop: udfs.queue_props[*queue],
                    prop,
                    add_weight,
                    op: *op,
                    atomic: *atomic,
                },
                match op {
                    ReduceOp::Min => "relax_min",
                    _ => "relax_sum",
                },
                sf,
                df,
            ))
        }
        _ => None,
    }
}

/// Recognition without property arrays: builds a throwaway
/// [`PropertyStorage`] carrying only the declared types, for callers (the
/// C++ emitter) that reason about programs before any graph is loaded.
/// Returns the kernel name, or `None` for fallback.
pub fn recognize_name(
    prog: &ugc_graphir::ir::Program,
    udfs: &UdfSet,
    udf: UdfId,
    src_filter: Option<UdfId>,
    dst_filter: Option<UdfId>,
) -> Option<&'static str> {
    let mut props = PropertyStorage::new(0);
    for p in &prog.properties {
        props.add(p.name.clone(), p.ty, Value::zero_of(p.ty));
    }
    recognize(udfs, &props, udf, src_filter, dst_filter).map(|k| k.name())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugc_graphir::ir::{Expr, Function, LValue, Param, Program, Stmt, StmtKind};
    use ugc_graphir::keys;
    use ugc_runtime::bytecode::{binding_of, compile_udfs};

    fn props_of(prog: &Program, n: usize) -> PropertyStorage {
        let mut props = PropertyStorage::new(n);
        for p in &prog.properties {
            let init = match &p.init.kind {
                ugc_graphir::ir::ExprKind::Int(v) => Value::Int(*v),
                ugc_graphir::ir::ExprKind::Float(v) => Value::Float(*v),
                ugc_graphir::ir::ExprKind::Bool(v) => Value::Bool(*v),
                _ => Value::zero_of(p.ty),
            };
            props.add(p.name.clone(), p.ty, init);
        }
        props
    }

    fn bfs_program() -> Program {
        let mut p = Program::new();
        p.add_property("parent", Type::Vertex, Expr::int(-1));
        let mut f = Function::new(
            "updateEdge",
            vec![
                Param::new("src", Type::Vertex),
                Param::new("dst", Type::Vertex),
            ],
            None,
        );
        let mut cas = Expr::cas("parent", Expr::var("dst"), Expr::int(-1), Expr::var("src"));
        cas.meta.set(keys::IS_ATOMIC, true);
        f.body.push(Stmt::new(StmtKind::VarDecl {
            name: "enq".into(),
            ty: Type::Bool,
            init: Some(cas),
        }));
        f.body.push(Stmt::new(StmtKind::If {
            cond: Expr::var("enq"),
            then_body: vec![Stmt::new(StmtKind::EnqueueVertex {
                set: None,
                vertex: Expr::var("dst"),
            })],
            else_body: vec![],
        }));
        p.add_function(f);
        let mut filt = Function::new(
            "toFilter",
            vec![Param::new("v", Type::Vertex)],
            Some(Param::new("output", Type::Bool)),
        );
        filt.body.push(Stmt::new(StmtKind::Assign {
            target: LValue::Var("output".into()),
            value: Expr::bin(
                BinOp::Eq,
                Expr::prop("parent", Expr::var("v")),
                Expr::int(-1),
            ),
        }));
        p.add_function(filt);
        p
    }

    #[test]
    fn recognizes_bfs_cas_claim_with_filter() {
        let prog = bfs_program();
        let udfs = compile_udfs(&prog, &binding_of(&prog)).unwrap();
        let props = props_of(&prog, 4);
        let k = recognize(
            &udfs,
            &props,
            udfs.id_of("updateEdge").unwrap(),
            None,
            Some(udfs.id_of("toFilter").unwrap()),
        )
        .expect("BFS shape must specialize");
        assert_eq!(k.name(), "cas_claim");
    }

    #[test]
    fn cas_claim_kernel_matches_semantics() {
        let prog = bfs_program();
        let udfs = compile_udfs(&prog, &binding_of(&prog)).unwrap();
        let props = props_of(&prog, 4);
        let graph = ugc_graph::Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2)]);
        let k = recognize(&udfs, &props, udfs.id_of("updateEdge").unwrap(), None, None).unwrap();
        let io = Io {
            props: &props,
            csr: graph.out_csr(),
        };
        let mut out = BufferedOutput::default();
        k.run_push(&io, &[0, 1], 0..2, &mut out);
        // Vertex 2 claimed exactly once (second CAS fails), 1 claimed by 0.
        assert_eq!(out.enqueued, vec![1, 2]);
        let parent = props.id_of("parent").unwrap();
        assert_eq!(props.read(parent, 2), Value::Int(0));
    }

    fn float_filter_program(literal: Expr) -> Program {
        let mut p = Program::new();
        p.add_property("rank", Type::Float, Expr::float(0.0));
        p.add_property("acc", Type::Float, Expr::float(0.0));
        let mut f = Function::new(
            "upd",
            vec![
                Param::new("src", Type::Vertex),
                Param::new("dst", Type::Vertex),
            ],
            None,
        );
        let mut red = Stmt::new(StmtKind::Reduce {
            target: LValue::prop("acc", Expr::var("dst")),
            op: ReduceOp::Sum,
            value: Expr::prop("rank", Expr::var("src")),
            tracking: None,
        });
        red.meta.set(keys::IS_ATOMIC, true);
        f.body.push(red);
        p.add_function(f);
        let mut filt = Function::new(
            "floatFilter",
            vec![Param::new("v", Type::Vertex)],
            Some(Param::new("output", Type::Bool)),
        );
        filt.body.push(Stmt::new(StmtKind::Assign {
            target: LValue::Var("output".into()),
            value: Expr::bin(BinOp::Eq, Expr::prop("rank", Expr::var("v")), literal),
        }));
        p.add_function(filt);
        p
    }

    #[test]
    fn float_filter_specializes_with_ieee_semantics() {
        let p = float_filter_program(Expr::float(0.0));
        let udfs = compile_udfs(&p, &binding_of(&p)).unwrap();
        let props = props_of(&p, 5);
        let k = recognize(
            &udfs,
            &props,
            udfs.id_of("upd").unwrap(),
            None,
            Some(udfs.id_of("floatFilter").unwrap()),
        )
        .expect("float-equality filter must specialize under IEEE ==");
        assert_eq!(k.name(), "reduce_sum");

        // Drive the kernel over cells {0.0, -0.0, NaN, 1.0} and check the
        // filter against the interpreter's own Eq on the same operands.
        let rank = props.id_of("rank").unwrap();
        let acc = props.id_of("acc").unwrap();
        let cells = [(1u32, 0.0_f64), (2, -0.0), (3, f64::NAN), (4, 1.0)];
        props.write(rank, 0, Value::Float(2.5));
        for &(v, c) in &cells {
            props.write(rank, v, Value::Float(c));
        }
        let graph = ugc_graph::Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let io = Io {
            props: &props,
            csr: graph.out_csr(),
        };
        let mut out = BufferedOutput::default();
        k.run_push(&io, &[0], 0..1, &mut out);
        for &(v, c) in &cells {
            let reference = Value::bin(BinOp::Eq, Value::Float(c), Value::Float(0.0)).as_bool();
            let kernel_passed = props.read(acc, v) != Value::Float(0.0);
            assert_eq!(
                kernel_passed, reference,
                "cell {c} must match the interpreter's Eq"
            );
        }
        // IEEE: -0.0 == 0.0 admits both zero encodings, NaN never matches.
        assert_eq!(props.read(acc, 1), Value::Float(2.5));
        assert_eq!(props.read(acc, 2), Value::Float(2.5));
        assert_eq!(props.read(acc, 3), Value::Float(0.0));
        assert_eq!(props.read(acc, 4), Value::Float(0.0));
    }

    #[test]
    fn nan_literal_matches_nothing() {
        let p = float_filter_program(Expr::float(f64::NAN));
        let udfs = compile_udfs(&p, &binding_of(&p)).unwrap();
        let props = props_of(&p, 3);
        let rank = props.id_of("rank").unwrap();
        let acc = props.id_of("acc").unwrap();
        props.write(rank, 0, Value::Float(1.0));
        props.write(rank, 2, Value::Float(f64::NAN));
        let k = recognize(
            &udfs,
            &props,
            udfs.id_of("upd").unwrap(),
            None,
            Some(udfs.id_of("floatFilter").unwrap()),
        )
        .unwrap();
        let graph = ugc_graph::Graph::from_edges(3, &[(0, 1), (0, 2)]);
        let io = Io {
            props: &props,
            csr: graph.out_csr(),
        };
        let mut out = BufferedOutput::default();
        k.run_push(&io, &[0], 0..1, &mut out);
        // Not even a bit-identical NaN cell passes `rank[v] == NaN`.
        assert_eq!(props.read(acc, 1), Value::Float(0.0));
        assert_eq!(props.read(acc, 2), Value::Float(0.0));
    }

    #[test]
    fn int_literal_widens_against_float_cell() {
        let p = float_filter_program(Expr::int(0));
        let udfs = compile_udfs(&p, &binding_of(&p)).unwrap();
        let props = props_of(&p, 2);
        props.write(props.id_of("rank").unwrap(), 0, Value::Float(3.0));
        let k = recognize(
            &udfs,
            &props,
            udfs.id_of("upd").unwrap(),
            None,
            Some(udfs.id_of("floatFilter").unwrap()),
        )
        .expect("int literal widens to float, like the interpreter");
        let graph = ugc_graph::Graph::from_edges(2, &[(0, 1)]);
        let io = Io {
            props: &props,
            csr: graph.out_csr(),
        };
        let mut out = BufferedOutput::default();
        k.run_push(&io, &[0], 0..1, &mut out);
        // rank[1] is 0.0 == 0 → passes; acc[1] accumulates rank[0].
        assert_eq!(
            props.read(props.id_of("acc").unwrap(), 1),
            Value::Float(3.0)
        );
    }

    /// A program with an int property `x`, a Reduce-Sum `upd`, and a
    /// `mixedFilter` comparing `x[v]` against the given float literal.
    fn mixed_filter_program(literal: f64) -> Program {
        let mut p = Program::new();
        p.add_property("x", Type::Int, Expr::int(0));
        let mut f = Function::new(
            "upd",
            vec![
                Param::new("src", Type::Vertex),
                Param::new("dst", Type::Vertex),
            ],
            None,
        );
        let mut red = Stmt::new(StmtKind::Reduce {
            target: LValue::prop("x", Expr::var("dst")),
            op: ReduceOp::Sum,
            value: Expr::prop("x", Expr::var("src")),
            tracking: None,
        });
        red.meta.set(keys::IS_ATOMIC, true);
        f.body.push(red);
        p.add_function(f);
        let mut filt = Function::new(
            "mixedFilter",
            vec![Param::new("v", Type::Vertex)],
            Some(Param::new("output", Type::Bool)),
        );
        filt.body.push(Stmt::new(StmtKind::Assign {
            target: LValue::Var("output".into()),
            value: Expr::bin(
                BinOp::Eq,
                Expr::prop("x", Expr::var("v")),
                Expr::float(literal),
            ),
        }));
        p.add_function(filt);
        p
    }

    #[test]
    fn int_cell_against_float_literal_specializes_and_matches_interpreter() {
        let p = mixed_filter_program(1.0);
        let udfs = compile_udfs(&p, &binding_of(&p)).unwrap();
        let props = props_of(&p, 5);
        let x = props.id_of("x").unwrap();
        let k = recognize(
            &udfs,
            &props,
            udfs.id_of("upd").unwrap(),
            None,
            Some(udfs.id_of("mixedFilter").unwrap()),
        )
        .expect("int cell vs float literal must widen like the interpreter");
        assert_eq!(k.name(), "reduce_sum");

        // Differential oracle: drive the kernel over int cells
        // {1, 0, -1, 7} and check each dst's pass/fail against the
        // interpreter's own mixed-type Eq on the same operands.
        let cells = [(1u32, 1i64), (2, 0), (3, -1), (4, 7)];
        props.write(x, 0, Value::Int(10));
        for &(v, c) in &cells {
            props.write(x, v, Value::Int(c));
        }
        let graph = ugc_graph::Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let io = Io {
            props: &props,
            csr: graph.out_csr(),
        };
        let mut out = BufferedOutput::default();
        k.run_push(&io, &[0], 0..1, &mut out);
        for &(v, c) in &cells {
            let reference = Value::bin(BinOp::Eq, Value::Int(c), Value::Float(1.0)).as_bool();
            let kernel_passed = props.read(x, v) != Value::Int(c);
            assert_eq!(
                kernel_passed, reference,
                "int cell {c} vs float literal 1.0 must match the interpreter's Eq"
            );
        }
        // Only x[1] == 1 widens to 1.0 and passes the dst filter.
        assert_eq!(props.read(x, 1), Value::Int(11));
        assert_eq!(props.read(x, 2), Value::Int(0));
        assert_eq!(props.read(x, 3), Value::Int(-1));
        assert_eq!(props.read(x, 4), Value::Int(7));
    }

    #[test]
    fn nan_float_literal_never_matches_int_cells() {
        let p = mixed_filter_program(f64::NAN);
        let udfs = compile_udfs(&p, &binding_of(&p)).unwrap();
        let props = props_of(&p, 3);
        let x = props.id_of("x").unwrap();
        props.write(x, 0, Value::Int(5));
        let k = recognize(
            &udfs,
            &props,
            udfs.id_of("upd").unwrap(),
            None,
            Some(udfs.id_of("mixedFilter").unwrap()),
        )
        .unwrap();
        let graph = ugc_graph::Graph::from_edges(3, &[(0, 1), (0, 2)]);
        let io = Io {
            props: &props,
            csr: graph.out_csr(),
        };
        let mut out = BufferedOutput::default();
        k.run_push(&io, &[0], 0..1, &mut out);
        // `x[v] == NaN` is false for every widened int, as in `Value::bin`.
        assert_eq!(props.read(x, 1), Value::Int(0));
        assert_eq!(props.read(x, 2), Value::Int(0));
    }

    fn prio_sum_program() -> Program {
        let mut p = Program::new();
        p.add_property("delta", Type::Int, Expr::int(0));
        p.add_property("prio", Type::Int, Expr::int(0));
        p.add_queue("pq", "prio", Expr::int(0));
        let mut f = Function::new(
            "updDelta",
            vec![
                Param::new("src", Type::Vertex),
                Param::new("dst", Type::Vertex),
            ],
            None,
        );
        let mut upd = Stmt::new(StmtKind::UpdatePriority {
            queue: "pq".into(),
            vertex: Expr::var("dst"),
            op: ReduceOp::Sum,
            value: Expr::prop("delta", Expr::var("src")),
        });
        upd.meta.set(keys::IS_ATOMIC, true);
        f.body.push(upd);
        p.add_function(f);
        p
    }

    #[test]
    fn recognizes_update_prio_sum() {
        let p = prio_sum_program();
        let udfs = compile_udfs(&p, &binding_of(&p)).unwrap();
        let props = props_of(&p, 3);
        let k = recognize(&udfs, &props, udfs.id_of("updDelta").unwrap(), None, None)
            .expect("UpdatePrio Sum must specialize");
        assert_eq!(k.name(), "relax_sum");
    }

    #[test]
    fn relax_sum_notifies_post_reduce_value() {
        let p = prio_sum_program();
        let udfs = compile_udfs(&p, &binding_of(&p)).unwrap();
        let props = props_of(&p, 3);
        let delta = props.id_of("delta").unwrap();
        props.write(delta, 0, Value::Int(5));
        props.write(delta, 1, Value::Int(7));
        let k = recognize(&udfs, &props, udfs.id_of("updDelta").unwrap(), None, None).unwrap();
        let graph = ugc_graph::Graph::from_edges(3, &[(0, 2), (1, 2)]);
        let io = Io {
            props: &props,
            csr: graph.out_csr(),
        };
        let mut out = BufferedOutput::default();
        k.run_push(&io, &[0, 1], 0..2, &mut out);
        // Sum notifications carry the accumulated cell (interpreter re-read
        // semantics): 0+5 = 5, then 5+7 = 12 — not the increment 7.
        assert_eq!(out.priority_updates, vec![(0, 2, 5), (0, 2, 12)]);
        assert_eq!(props.read(props.id_of("prio").unwrap(), 2), Value::Int(12));
    }

    #[test]
    fn opaque_udf_falls_back() {
        let mut p = Program::new();
        p.add_property("x", Type::Int, Expr::int(0));
        let mut f = Function::new(
            "storeUdf",
            vec![
                Param::new("src", Type::Vertex),
                Param::new("dst", Type::Vertex),
            ],
            None,
        );
        // Plain (untracked) store: outside the modeled subset.
        f.body.push(Stmt::new(StmtKind::Assign {
            target: LValue::prop("x", Expr::var("dst")),
            value: Expr::var("src"),
        }));
        p.add_function(f);
        let udfs = compile_udfs(&p, &binding_of(&p)).unwrap();
        let props = props_of(&p, 4);
        assert!(recognize(&udfs, &props, udfs.id_of("storeUdf").unwrap(), None, None).is_none());
    }

    #[test]
    fn cache_memoizes_fallback_and_hit() {
        let prog = bfs_program();
        let udfs = compile_udfs(&prog, &binding_of(&prog)).unwrap();
        let props = props_of(&prog, 4);
        let cache = KernelCache::default();
        let key = KernelKey {
            point: SchedulePoint::default(),
            udf: udfs.id_of("updateEdge").unwrap(),
            src_filter: None,
            dst_filter: None,
            weighted: false,
        };
        let mut builds = 0;
        for _ in 0..3 {
            let k = cache.resolve(key, || {
                builds += 1;
                recognize(&udfs, &props, key.udf, None, None)
            });
            assert!(k.is_some());
        }
        assert_eq!(builds, 1, "recognition must run once per key");
    }
}
