//! GPU GraphVM correctness: every algorithm × the GPU scheduling space on
//! the SIMT simulator, validated against the sequential references.

use ugc_algorithms::Algorithm;
use ugc_backend_gpu::{FrontierCreation, GpuGraphVm, GpuSchedule, LoadBalance};
use ugc_integration::{compile, externs_for, test_graphs, validate};
use ugc_schedule::{SchedDirection, ScheduleRef};

fn run_and_validate(algo: Algorithm, sched: Option<GpuSchedule>) {
    for (gname, graph) in test_graphs() {
        let prog = compile(algo, sched.clone().map(ScheduleRef::simple));
        let vm = GpuGraphVm::default();
        let run = vm
            .execute(prog, &graph, &externs_for(algo, 0))
            .unwrap_or_else(|e| panic!("{} on {gname}: {e}", algo.name()));
        assert!(run.cycles > 0, "{} on {gname}: zero cycles", algo.name());
        validate(algo, &graph, 0, &|p| run.property_ints(p), &|p| {
            run.property_floats(p)
        });
    }
}

#[test]
fn all_algorithms_default_schedule() {
    for algo in Algorithm::ALL {
        run_and_validate(algo, None);
    }
}

#[test]
fn bfs_all_load_balancers() {
    for lb in LoadBalance::ALL {
        run_and_validate(
            Algorithm::Bfs,
            Some(GpuSchedule::new().with_load_balance(lb)),
        );
    }
}

#[test]
fn cc_etwc_load_balancer() {
    run_and_validate(
        Algorithm::Cc,
        Some(GpuSchedule::new().with_load_balance(LoadBalance::Etwc)),
    );
}

#[test]
fn bfs_pull_and_hybrid() {
    run_and_validate(
        Algorithm::Bfs,
        Some(GpuSchedule::new().with_direction(SchedDirection::Pull)),
    );
    run_and_validate(
        Algorithm::Bfs,
        Some(GpuSchedule::new().with_direction(SchedDirection::Hybrid)),
    );
}

#[test]
fn bfs_frontier_creation_variants() {
    for fc in [
        FrontierCreation::Fused,
        FrontierCreation::UnfusedBoolmap,
        FrontierCreation::UnfusedBitmap,
    ] {
        run_and_validate(
            Algorithm::Bfs,
            Some(GpuSchedule::new().with_frontier_creation(fc)),
        );
    }
}

#[test]
fn bfs_kernel_fusion_correct_and_fewer_launches() {
    let graph = ugc_graph::generators::road_grid(16, 16, 0.05, 3, true);
    let base = GpuGraphVm::default()
        .execute(
            compile(
                Algorithm::Bfs,
                Some(ScheduleRef::simple(GpuSchedule::new())),
            ),
            &graph,
            &externs_for(Algorithm::Bfs, 0),
        )
        .unwrap();
    let fused = GpuGraphVm::default()
        .execute(
            compile(
                Algorithm::Bfs,
                Some(ScheduleRef::simple(
                    GpuSchedule::new().with_kernel_fusion(true),
                )),
            ),
            &graph,
            &externs_for(Algorithm::Bfs, 0),
        )
        .unwrap();
    assert_eq!(
        base.property_ints("parent")
            .iter()
            .filter(|&&p| p != -1)
            .count(),
        fused
            .property_ints("parent")
            .iter()
            .filter(|&&p| p != -1)
            .count()
    );
    assert!(fused.stats.kernels < base.stats.kernels);
    assert!(
        fused.cycles < base.cycles,
        "fusion must win on a road graph"
    );
}

#[test]
fn sssp_with_delta_schedules() {
    for delta in [1, 4, 32] {
        run_and_validate(Algorithm::Sssp, Some(GpuSchedule::new().with_delta(delta)));
    }
}

#[test]
fn pagerank_edge_blocking_correct() {
    run_and_validate(
        Algorithm::PageRank,
        Some(GpuSchedule::new().with_edge_blocking(1 << 13)),
    );
}

#[test]
fn bc_with_wm_load_balance() {
    run_and_validate(
        Algorithm::Bc,
        Some(GpuSchedule::new().with_load_balance(LoadBalance::Wm)),
    );
}

#[test]
fn twc_beats_vertex_based_on_skewed_graph() {
    // A power-law graph punishes vertex-based load balancing.
    let graph = ugc_graph::generators::rmat(10, 8, 11, true);
    let externs = externs_for(Algorithm::Bfs, 0);
    let vb = GpuGraphVm::default()
        .execute(
            compile(
                Algorithm::Bfs,
                Some(ScheduleRef::simple(
                    GpuSchedule::new().with_load_balance(LoadBalance::VertexBased),
                )),
            ),
            &graph,
            &externs,
        )
        .unwrap();
    let twc = GpuGraphVm::default()
        .execute(
            compile(
                Algorithm::Bfs,
                Some(ScheduleRef::simple(
                    GpuSchedule::new().with_load_balance(LoadBalance::Twc),
                )),
            ),
            &graph,
            &externs,
        )
        .unwrap();
    assert!(
        twc.cycles < vb.cycles,
        "TWC {} should beat vertex-based {} on a skewed graph",
        twc.cycles,
        vb.cycles
    );
}
