//! Property-based tests on the runtime substrate's invariants, running on
//! the in-tree `ugc-testkit` harness (seeded cases + bounded shrinking).

use ugc_graphir::types::{ReduceOp, Type, VertexSetRepr};
use ugc_runtime::properties::PropertyStorage;
use ugc_runtime::value::Value;
use ugc_runtime::{BucketQueue, VertexSet};
use ugc_testkit::{check, check_with_shrink, gen, Config, Prng, Shrink};

/// Generator: a universe size and member vertex ids within it.
fn gen_members(rng: &mut Prng) -> (usize, Vec<u32>) {
    let n = rng.gen_range(1..128usize);
    let members = gen::vec_of(rng, 0..256, |r| r.gen_range(0..n as u32));
    (n, members)
}

/// Shrinker that keeps the universe size fixed so members stay in range.
fn shrink_members(input: &(usize, Vec<u32>)) -> Vec<(usize, Vec<u32>)> {
    let (n, members) = input;
    members.shrink().into_iter().map(|m| (*n, m)).collect()
}

fn check_members(name: &str, prop: impl Fn(&(usize, Vec<u32>))) {
    check_with_shrink(name, Config::default(), gen_members, shrink_members, prop);
}

#[test]
fn representations_agree() {
    check_members("representations_agree", |(n, members)| {
        let mut sparse = VertexSet::empty_sparse(*n);
        for &v in members {
            sparse.add(v);
        }
        sparse.dedup();
        let bitmap = sparse.to_repr(VertexSetRepr::Bitmap);
        let boolmap = sparse.to_repr(VertexSetRepr::Boolmap);
        assert_eq!(sparse.iter(), bitmap.iter());
        assert_eq!(bitmap.iter(), boolmap.iter());
        assert_eq!(sparse.len(), bitmap.len());
        for v in 0..*n as u32 {
            assert_eq!(sparse.contains(v), bitmap.contains(v));
            assert_eq!(sparse.contains(v), boolmap.contains(v));
        }
    });
}

#[test]
fn dedup_is_set_semantics() {
    check_members("dedup_is_set_semantics", |(n, members)| {
        let mut s = VertexSet::from_members(*n, members.clone());
        s.dedup();
        let expect: std::collections::BTreeSet<u32> = members.iter().copied().collect();
        assert_eq!(s.len(), expect.len());
        let got: std::collections::BTreeSet<u32> = s.iter().into_iter().collect();
        assert_eq!(got, expect);
    });
}

#[test]
fn round_trip_through_any_repr() {
    let reprs = [
        VertexSetRepr::Sparse,
        VertexSetRepr::Bitmap,
        VertexSetRepr::Boolmap,
    ];
    check_with_shrink(
        "round_trip_through_any_repr",
        Config::default(),
        |rng| {
            let (n, members) = gen_members(rng);
            (n, members, rng.gen_range(0..reprs.len()))
        },
        |(n, members, r)| {
            members
                .shrink()
                .into_iter()
                .map(|m| (*n, m, *r))
                .collect::<Vec<_>>()
        },
        |(n, members, r)| {
            let mut s = VertexSet::from_members(*n, members.clone());
            s.dedup();
            let converted = s.to_repr(reprs[*r]).to_repr(VertexSetRepr::Sparse);
            assert_eq!(s.iter(), converted.iter());
        },
    );
}

/// Bucket queue pops every pushed vertex exactly once (when priorities
/// are stable) and in non-decreasing bucket order.
#[test]
fn bucket_queue_pops_in_order() {
    check(
        "bucket_queue_pops_in_order",
        Config::default(),
        |rng| {
            let prios = gen::vec_of(rng, 1..64, |r| r.gen_range(0i64..200));
            let delta = rng.gen_range(1i64..16);
            (prios, delta)
        },
        |(prios, delta)| {
            let delta = (*delta).max(1); // shrinking may halve delta to 0
            let n = prios.len();
            if n == 0 {
                return;
            }
            let mut q = BucketQueue::new(n, delta, 0);
            for (v, &p) in prios.iter().enumerate().skip(1) {
                q.push(v as u32, p);
            }
            let prio = |v: u32| if v == 0 { 0 } else { prios[v as usize] };
            let mut popped = Vec::new();
            let mut last_bucket = i64::MIN;
            while !q.finished() {
                let set = q.pop_ready(prio);
                if set.is_empty() {
                    continue;
                }
                let bucket = prio(set.iter()[0]).div_euclid(delta);
                assert!(bucket >= last_bucket, "bucket order violated");
                last_bucket = bucket;
                for v in set.iter() {
                    assert_eq!(prio(v).div_euclid(delta), bucket);
                    popped.push(v);
                }
            }
            popped.sort_unstable();
            let expect: Vec<u32> = (0..n as u32).collect();
            assert_eq!(popped, expect);
        },
    );
}

/// Atomic min-reduce: final value is the minimum of init and all
/// folded values, regardless of order.
#[test]
fn reduce_min_is_order_independent() {
    check(
        "reduce_min_is_order_independent",
        Config::default(),
        |rng| gen::vec_of(rng, 1..64, |r| r.gen_range(-1000i64..1000)),
        |vals| {
            if vals.is_empty() {
                return;
            }
            let mut p = PropertyStorage::new(1);
            let a = p.add("x", Type::Int, Value::Int(i64::MAX));
            for &v in vals {
                p.reduce(a, 0, ReduceOp::Min, Value::Int(v));
            }
            assert_eq!(
                p.read(a, 0),
                Value::Int(*vals.iter().min().expect("non-empty"))
            );
        },
    );
}

/// Sum-reduce totals are exact.
#[test]
fn reduce_sum_totals() {
    check(
        "reduce_sum_totals",
        Config::default(),
        |rng| gen::vec_of(rng, 0..64, |r| r.gen_range(-100i64..100)),
        |vals| {
            let mut p = PropertyStorage::new(1);
            let a = p.add("x", Type::Int, Value::Int(0));
            for &v in vals {
                p.reduce(a, 0, ReduceOp::Sum, Value::Int(v));
            }
            assert_eq!(p.read(a, 0), Value::Int(vals.iter().sum()));
        },
    );
}

/// CAS claims exactly once per marker value.
#[test]
fn cas_single_claim() {
    check(
        "cas_single_claim",
        Config::default(),
        |rng| gen::vec_of(rng, 1..64, |r| r.gen_range(0i64..50)),
        |claims| {
            if claims.is_empty() {
                return;
            }
            let mut p = PropertyStorage::new(1);
            let a = p.add("owner", Type::Int, Value::Int(-1));
            let mut wins = 0;
            for &c in claims {
                if p.cas(a, 0, Value::Int(-1), Value::Int(c)) {
                    wins += 1;
                }
            }
            assert_eq!(wins, 1);
            assert_eq!(p.read(a, 0), Value::Int(claims[0]));
        },
    );
}
