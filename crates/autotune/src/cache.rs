//! Persistent tuning cache.
//!
//! Winners are stored as JSON lines in a plain text file, one entry per
//! (target, algorithm, dataset fingerprint, scale) key. The workspace is
//! hermetic, so the (de)serializer is hand-rolled for exactly the flat
//! record shape below — it is not a general JSON parser.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use ugc_graph::prng::SplitMix64;
use ugc_graph::Graph;
use ugc_telemetry::Counter;

/// Counts cache lines dropped as malformed. Registered lazily so clean
/// caches leave no trace in telemetry snapshots.
fn malformed_counter() -> &'static Counter {
    static CELL: OnceLock<Counter> = OnceLock::new();
    CELL.get_or_init(|| Counter::new("autotune.cache.malformed"))
}

/// A structural fingerprint of a graph: folds the shape (vertex/edge
/// counts, weightedness) and strided samples of the CSR arrays through
/// SplitMix64. Deterministic for a given graph, cheap on large ones, and
/// sensitive enough that different generated datasets don't collide.
pub fn graph_fingerprint(g: &Graph) -> u64 {
    let mut acc: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut fold = |x: u64| {
        acc = SplitMix64::new(acc ^ x).next_u64();
    };
    fold(g.num_vertices() as u64);
    fold(g.num_edges() as u64);
    fold(u64::from(g.is_weighted()));
    let csr = g.out_csr();
    let sample = |len: usize| -> Vec<usize> {
        if len == 0 {
            return Vec::new();
        }
        let stride = (len / 64).max(1);
        (0..len).step_by(stride).collect()
    };
    for i in sample(csr.offsets().len()) {
        fold(csr.offsets()[i] as u64);
    }
    for i in sample(csr.targets().len()) {
        fold(u64::from(csr.targets()[i]));
    }
    if let Some(w) = csr.weights() {
        for i in sample(w.len()) {
            fold(w[i] as u64);
        }
    }
    acc
}

/// Identifies one tuning problem instance.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Target name (`cpu`, `gpu`, `swarm`, `hb`).
    pub target: String,
    /// Algorithm name (`BFS`, `SSSP`, ...).
    pub algo: String,
    /// [`graph_fingerprint`] of the dataset instance.
    pub fingerprint: u64,
    /// Scale name (`tiny`, `small`, `medium`).
    pub scale: String,
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}/{:016x}/{}",
            self.target, self.algo, self.fingerprint, self.scale
        )
    }
}

/// A cached tuning winner.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// The problem instance this winner was tuned for.
    pub key: CacheKey,
    /// The winner's label (a `dim=level` point label or a pinned name).
    pub winner: String,
    /// The winner's point indices; empty for pinned candidates.
    pub point: Vec<usize>,
    /// Measured time of the winner.
    pub time_ms: f64,
    /// Measured cycles of the winner.
    pub cycles: u64,
    /// Distinct space points measured in the producing run.
    pub explored: usize,
    /// Seed the producing run used.
    pub seed: u64,
    /// Attribution summary of the winner's measurement (why it won);
    /// empty for entries written before profiles existed or with
    /// telemetry disabled.
    pub profile: String,
}

impl CacheEntry {
    fn to_json_line(&self) -> String {
        let point = self
            .point
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(",");
        format!(
            concat!(
                "{{\"target\":\"{}\",\"algo\":\"{}\",\"fingerprint\":\"{:016x}\",",
                "\"scale\":\"{}\",\"winner\":\"{}\",\"point\":[{}],\"time_ms\":{},",
                "\"cycles\":{},\"explored\":{},\"seed\":{},\"profile\":\"{}\"}}"
            ),
            escape(&self.key.target),
            escape(&self.key.algo),
            self.key.fingerprint,
            escape(&self.key.scale),
            escape(&self.winner),
            point,
            self.time_ms,
            self.cycles,
            self.explored,
            self.seed,
            escape(&self.profile),
        )
    }

    fn from_json_line(line: &str) -> Option<CacheEntry> {
        let target = field_str(line, "target")?;
        let algo = field_str(line, "algo")?;
        let fingerprint = u64::from_str_radix(&field_str(line, "fingerprint")?, 16).ok()?;
        let scale = field_str(line, "scale")?;
        let winner = field_str(line, "winner")?;
        let point = field_usize_array(line, "point")?;
        let time_ms = field_raw(line, "time_ms")?.parse().ok()?;
        let cycles = field_raw(line, "cycles")?.parse().ok()?;
        let explored = field_raw(line, "explored")?.parse().ok()?;
        let seed = field_raw(line, "seed")?.parse().ok()?;
        // Absent in cache files written before profiles existed.
        let profile = field_str(line, "profile").unwrap_or_default();
        Some(CacheEntry {
            key: CacheKey {
                target,
                algo,
                fingerprint,
                scale,
            },
            winner,
            point,
            time_ms,
            cycles,
            explored,
            seed,
            profile,
        })
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            if let Some(n) = chars.next() {
                out.push(n);
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// The raw text after `"name":` up to the next unquoted `,` or `}`.
fn field_raw<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let pat = format!("\"{name}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let mut end = rest.len();
    let mut in_str = false;
    let mut esc = false;
    let mut depth = 0usize;
    for (i, c) in rest.char_indices() {
        if esc {
            esc = false;
            continue;
        }
        match c {
            '\\' if in_str => esc = true,
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth = depth.saturating_sub(1),
            ',' | '}' if !in_str && depth == 0 => {
                end = i;
                break;
            }
            _ => {}
        }
    }
    Some(rest[..end].trim())
}

fn field_str(line: &str, name: &str) -> Option<String> {
    let raw = field_raw(line, name)?;
    let inner = raw.strip_prefix('"')?.strip_suffix('"')?;
    Some(unescape(inner))
}

fn field_usize_array(line: &str, name: &str) -> Option<Vec<usize>> {
    let raw = field_raw(line, name)?;
    let inner = raw.strip_prefix('[')?.strip_suffix(']')?.trim();
    if inner.is_empty() {
        return Some(Vec::new());
    }
    inner
        .split(',')
        .map(|s| s.trim().parse().ok())
        .collect::<Option<Vec<usize>>>()
}

/// An append-only JSONL store of tuning winners, loaded fully at open.
/// Later lines for the same key win, so re-tuning simply appends.
#[derive(Debug)]
pub struct TuningCache {
    path: PathBuf,
    entries: HashMap<CacheKey, CacheEntry>,
}

impl TuningCache {
    /// Opens (or lazily creates on first [`put`](Self::put)) a cache file.
    /// Malformed lines are skipped, not fatal: a corrupt cache degrades to
    /// re-tuning.
    ///
    /// # Errors
    ///
    /// Returns the I/O error message if an existing file cannot be read.
    pub fn open(path: impl AsRef<Path>) -> Result<TuningCache, String> {
        let path = path.as_ref().to_path_buf();
        let mut entries = HashMap::new();
        if path.exists() {
            let text = fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            for line in text.lines() {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                if let Some(entry) = CacheEntry::from_json_line(line) {
                    entries.insert(entry.key.clone(), entry);
                } else {
                    malformed_counter().incr();
                }
            }
        }
        Ok(TuningCache { path, entries })
    }

    /// The cached winner for `key`, if any.
    pub fn get(&self, key: &CacheKey) -> Option<&CacheEntry> {
        self.entries.get(key)
    }

    /// Records `entry` in memory and appends it to the file.
    ///
    /// # Errors
    ///
    /// Returns the I/O error message if the line cannot be appended.
    pub fn put(&mut self, entry: CacheEntry) -> Result<(), String> {
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() && !dir.exists() {
                fs::create_dir_all(dir)
                    .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
            }
        }
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .map_err(|e| format!("cannot open {}: {e}", self.path.display()))?;
        writeln!(file, "{}", entry.to_json_line())
            .map_err(|e| format!("cannot write {}: {e}", self.path.display()))?;
        self.entries.insert(entry.key.clone(), entry);
        Ok(())
    }

    /// Number of distinct cached keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(target: &str, fp: u64) -> CacheEntry {
        CacheEntry {
            key: CacheKey {
                target: target.to_string(),
                algo: "BFS".to_string(),
                fingerprint: fp,
                scale: "tiny".to_string(),
            },
            winner: "dir=push,lb=twc".to_string(),
            point: vec![0, 1, 0],
            time_ms: 1.25,
            cycles: 4096,
            explored: 17,
            seed: 7,
            profile: "mem_stall 60% of 4096 cycles".to_string(),
        }
    }

    #[test]
    fn json_line_round_trips() {
        let e = entry("gpu", 0xDEAD_BEEF);
        let line = e.to_json_line();
        assert_eq!(CacheEntry::from_json_line(&line), Some(e));
    }

    #[test]
    fn pre_profile_cache_lines_still_parse() {
        let mut e = entry("gpu", 9);
        let line = e.to_json_line();
        let legacy = line.replace(&format!(",\"profile\":\"{}\"", e.profile), "");
        assert!(legacy.ends_with("\"seed\":7}"), "{legacy}");
        e.profile = String::new();
        assert_eq!(CacheEntry::from_json_line(&legacy), Some(e));
    }

    #[test]
    fn empty_point_round_trips() {
        let mut e = entry("cpu", 3);
        e.point = Vec::new();
        e.winner = "hand_tuned".to_string();
        let line = e.to_json_line();
        assert_eq!(CacheEntry::from_json_line(&line), Some(e));
    }

    #[test]
    fn escaped_strings_round_trip() {
        let mut e = entry("cpu", 9);
        e.winner = "odd \"name\" with \\ backslash".to_string();
        assert_eq!(CacheEntry::from_json_line(&e.to_json_line()), Some(e));
    }

    #[test]
    fn persists_and_reloads() {
        let dir = std::env::temp_dir().join("ugc-autotune-cache-test");
        let path = dir.join("tuning-cache.jsonl");
        let _ = fs::remove_file(&path);
        {
            let mut cache = TuningCache::open(&path).unwrap();
            assert!(cache.is_empty());
            cache.put(entry("gpu", 1)).unwrap();
            cache.put(entry("swarm", 2)).unwrap();
            // Re-tuning the same key overwrites in memory and appends.
            let mut updated = entry("gpu", 1);
            updated.time_ms = 0.5;
            cache.put(updated).unwrap();
            assert_eq!(cache.len(), 2);
        }
        let cache = TuningCache::open(&path).unwrap();
        assert_eq!(cache.len(), 2);
        let got = cache.get(&entry("gpu", 1).key).unwrap();
        assert_eq!(got.time_ms, 0.5);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn malformed_lines_are_skipped_and_counted() {
        let dir = std::env::temp_dir().join("ugc-autotune-cache-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tuning-cache-malformed.jsonl");
        let good = entry("hb", 4).to_json_line();
        // A record cut off mid-write (e.g. a crashed tuning run).
        let truncated = &good[..good.len() / 2];
        fs::write(
            &path,
            format!("not json at all\n{good}\n{{\"target\":\"gpu\"}}\n{truncated}\n"),
        )
        .unwrap();
        let before = malformed_counter().get();
        let cache = TuningCache::open(&path).unwrap();
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&entry("hb", 4).key).is_some());
        if ugc_telemetry::enabled() {
            assert_eq!(malformed_counter().get() - before, 3);
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_distinguishes_graphs_and_is_stable() {
        let a = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let b = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let w = Graph::from_weighted_edges(4, &[(0, 1, 5), (1, 2, 9)]);
        assert_eq!(graph_fingerprint(&a), graph_fingerprint(&a));
        assert_ne!(graph_fingerprint(&a), graph_fingerprint(&b));
        assert_ne!(graph_fingerprint(&a), graph_fingerprint(&w));
    }
}
