//! `SimpleHBSchedule` — the HammerBlade GraphVM's scheduling object (paper
//! Fig. 6b).

use std::any::Any;

use ugc_schedule::space::{
    delta_dimension, delta_value, Dimension, PruneRule, ScheduleSpace, SpaceParams,
};
use ugc_schedule::{
    Parallelization, PullFrontierRepr, SchedDirection, ScheduleRef, SimpleSchedule,
};

/// Work-distribution strategies on the manycore.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HbLoadBalance {
    /// Contiguous chunks of the active-vertex list per core.
    #[default]
    VertexBased,
    /// Degree-balanced chunks.
    EdgeBased,
    /// `ALIGNED`: cache-line-aligned blocks of vertex ids (the paper's
    /// alignment-based partitioning).
    Aligned,
}

/// HammerBlade scheduling options.
///
/// # Example
///
/// ```
/// use ugc_backend_hb::{HbSchedule, HbLoadBalance};
/// use ugc_schedule::SchedDirection;
///
/// let sched1 = HbSchedule::new()
///     .with_load_balance(HbLoadBalance::Aligned)
///     .with_direction(SchedDirection::Hybrid);
/// assert_eq!(sched1.load_balance(), HbLoadBalance::Aligned);
/// ```
#[derive(Debug, Clone)]
pub struct HbSchedule {
    direction: SchedDirection,
    load_balance: HbLoadBalance,
    blocked_access: bool,
    block_size: u32,
    pull_frontier: PullFrontierRepr,
    delta: i64,
    hybrid_threshold: f64,
}

impl Default for HbSchedule {
    fn default() -> Self {
        HbSchedule {
            direction: SchedDirection::Push,
            load_balance: HbLoadBalance::VertexBased,
            blocked_access: false,
            block_size: 64,
            pull_frontier: PullFrontierRepr::Boolmap,
            delta: 1,
            hybrid_threshold: 0.15,
        }
    }
}

impl HbSchedule {
    /// The default HammerBlade schedule (the paper's baseline).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the traversal direction (`configDirection`).
    pub fn with_direction(mut self, d: SchedDirection) -> Self {
        self.direction = d;
        self
    }

    /// Sets the load-balancing strategy (`configLoadBalance`).
    pub fn with_load_balance(mut self, lb: HbLoadBalance) -> Self {
        self.load_balance = lb;
        self
    }

    /// Enables the blocked access method (scratchpad prefetch).
    pub fn with_blocked_access(mut self, yes: bool) -> Self {
        self.blocked_access = yes;
        self
    }

    /// Sets the work-block size `b` (vertices per block, a multiple of the
    /// LLC line).
    pub fn with_block_size(mut self, b: u32) -> Self {
        self.block_size = b.max(1);
        self
    }

    /// Sets the pull-side frontier representation.
    pub fn with_pull_frontier(mut self, r: PullFrontierRepr) -> Self {
        self.pull_frontier = r;
        self
    }

    /// Sets the ∆ bucket width.
    pub fn with_delta(mut self, delta: i64) -> Self {
        self.delta = delta;
        self
    }

    /// The load-balancing strategy.
    pub fn load_balance(&self) -> HbLoadBalance {
        self.load_balance
    }

    /// Whether blocked access is enabled.
    pub fn blocked_access(&self) -> bool {
        self.blocked_access
    }

    /// The work-block size.
    pub fn block_size(&self) -> u32 {
        self.block_size
    }
}

impl SimpleSchedule for HbSchedule {
    fn parallelization(&self) -> Parallelization {
        match self.load_balance {
            HbLoadBalance::VertexBased => Parallelization::VertexBased,
            HbLoadBalance::EdgeBased => Parallelization::EdgeBased,
            HbLoadBalance::Aligned => Parallelization::EdgeAwareVertexBased,
        }
    }

    fn direction(&self) -> SchedDirection {
        self.direction
    }

    fn pull_frontier(&self) -> PullFrontierRepr {
        self.pull_frontier
    }

    fn delta(&self) -> i64 {
        self.delta
    }

    fn hybrid_threshold(&self) -> f64 {
        self.hybrid_threshold
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// The HammerBlade GraphVM's declared search space (paper Fig. 6b):
/// direction × load balance (vertex/edge/aligned) × blocked access ×
/// block size, plus the shared ∆ sweep for ordered algorithms. Block-size
/// levels other than the first are aliases while blocked access is off.
#[derive(Debug, Clone, Copy, Default)]
pub struct HbScheduleSpace;

/// Cost-model pruning table, keyed by the HammerBlade attribution
/// components (`compute` / `llc_access` / `dram_stall` / `bank` /
/// `barrier` / `host`). Blocked scratchpad access exists to tile DRAM
/// traffic, so compute- or barrier-bound runs cannot be helped by it.
pub const HB_PRUNE_RULES: &[PruneRule] = &[
    PruneRule {
        component: "compute",
        axis: "blocked",
        reason:
            "scratchpad blocking tiles DRAM traffic; compute-bound kernels are not memory limited",
    },
    PruneRule {
        component: "compute",
        axis: "bsize",
        reason: "block size shapes memory tiling; compute-bound kernels are not memory limited",
    },
    PruneRule {
        component: "barrier",
        axis: "bsize",
        reason: "block size shapes memory tiling, not the barrier count between traversal phases",
    },
];

impl ScheduleSpace for HbScheduleSpace {
    fn target_name(&self) -> &'static str {
        "hb"
    }

    fn dimensions(&self, p: &SpaceParams) -> Vec<Dimension> {
        let directions = if p.ordered {
            vec!["push"]
        } else if p.data_driven {
            vec!["push", "pull", "hybrid"]
        } else {
            vec!["push", "pull"]
        };
        vec![
            Dimension::new("dir", directions),
            Dimension::new("lb", vec!["vertex", "edge", "aligned"]),
            Dimension::new("blocked", vec!["off", "on"]),
            Dimension::new("bsize", vec!["32", "64", "128"]),
            delta_dimension(p),
        ]
    }

    fn materialize(&self, p: &SpaceParams, point: &[usize]) -> Option<ScheduleRef> {
        let dims = self.dimensions(p);
        let level = |i: usize| dims[i].levels[point[i]];
        let blocked = level(2) == "on";
        // Block size is meaningless without blocked access: keep only the
        // first level so unblocked points are not measured three times.
        if !blocked && point[3] != 0 {
            return None;
        }
        let mut s = HbSchedule::new()
            .with_direction(match level(0) {
                "pull" => SchedDirection::Pull,
                "hybrid" => SchedDirection::Hybrid,
                _ => SchedDirection::Push,
            })
            .with_load_balance(match level(1) {
                "edge" => HbLoadBalance::EdgeBased,
                "aligned" => HbLoadBalance::Aligned,
                _ => HbLoadBalance::VertexBased,
            })
            .with_blocked_access(blocked);
        if blocked {
            s = s.with_block_size(match level(3) {
                "32" => 32,
                "128" => 128,
                _ => 64,
            });
        }
        if p.ordered {
            s = s.with_delta(delta_value(point[4]));
        }
        Some(ScheduleRef::simple(s))
    }

    fn prune_rules(&self) -> &'static [PruneRule] {
        HB_PRUNE_RULES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_baseline() {
        let s = HbSchedule::new();
        assert_eq!(s.load_balance(), HbLoadBalance::VertexBased);
        assert!(!s.blocked_access());
        assert_eq!(s.block_size(), 64);
    }

    #[test]
    fn builder_round_trip() {
        let s = HbSchedule::new()
            .with_blocked_access(true)
            .with_block_size(128)
            .with_delta(8);
        assert!(s.blocked_access());
        assert_eq!(s.block_size(), 128);
        assert_eq!(s.delta(), 8);
    }

    #[test]
    fn zero_block_size_clamped() {
        assert_eq!(HbSchedule::new().with_block_size(0).block_size(), 1);
    }

    #[test]
    fn space_skips_block_size_aliases() {
        use ugc_schedule::space::PointIter;
        let p = SpaceParams {
            ordered: false,
            data_driven: true,
            num_vertices: 4096,
        };
        let dims = HbScheduleSpace.dimensions(&p);
        let valid: Vec<_> = PointIter::new(&dims)
            .filter(|pt| HbScheduleSpace.materialize(&p, pt).is_some())
            .collect();
        // 3 dirs × 3 lbs × (1 unblocked + 3 blocked sizes) = 36.
        assert_eq!(valid.len(), 36);
        let s = HbScheduleSpace.materialize(&p, &[2, 2, 1, 2, 0]).unwrap();
        let hb = s
            .representative()
            .as_any()
            .downcast_ref::<HbSchedule>()
            .unwrap()
            .clone();
        assert_eq!(hb.load_balance(), HbLoadBalance::Aligned);
        assert!(hb.blocked_access());
        assert_eq!(hb.block_size(), 128);
    }
}
