//! `repro --profile` support: per-backend attribution tables built from
//! telemetry snapshot deltas.
//!
//! Every backend accounts its full reported time — simulated cycles for
//! the three simulators, wall-clock nanoseconds for the CPU GraphVM — to a
//! fixed set of components whose sum equals the total *exactly* (the
//! invariant `tests/telemetry_invariants.rs` enforces). This module maps
//! the registry's counter names to those component sets and renders them.

use ugc::{Algorithm, Target};
use ugc_graph::{Dataset, Graph, Scale};
use ugc_telemetry::{Collector, Snapshot};

use crate::{baseline_schedule, try_measure};

/// One backend's time attribution, extracted from a snapshot delta.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribution {
    /// Which backend this describes.
    pub target: Target,
    /// `"cycles"` for the simulators, `"ns"` for the CPU backend.
    pub unit: &'static str,
    /// `(component, amount)` in display order.
    pub components: Vec<(&'static str, u64)>,
    /// The backend's reported total for the same window.
    pub total: u64,
}

/// The component counters of one target: `(label, registry key)`.
/// The label order matches each simulator's `components()` accessor.
#[must_use]
pub fn component_keys(target: Target) -> &'static [(&'static str, &'static str)] {
    match target {
        Target::Cpu => &[
            ("edge_push", "cpu.edge_push.ns"),
            ("edge_pull", "cpu.edge_pull.ns"),
            ("vertex_apply", "cpu.vertex_apply.ns"),
            ("other", "cpu.other.ns"),
        ],
        Target::Gpu => &[
            ("compute", "sim_gpu.cycles.compute"),
            ("divergence", "sim_gpu.cycles.divergence"),
            ("mem_stall", "sim_gpu.cycles.mem_stall"),
            ("launch", "sim_gpu.cycles.launch"),
            ("host", "sim_gpu.cycles.host"),
        ],
        Target::Swarm => &[
            ("commit", "sim_swarm.cycles.commit"),
            ("abort", "sim_swarm.cycles.abort"),
            ("idle_no_task", "sim_swarm.cycles.idle_no_task"),
            ("idle_cq_full", "sim_swarm.cycles.idle_cq_full"),
            ("spill", "sim_swarm.cycles.spill"),
            ("host", "sim_swarm.cycles.host"),
        ],
        Target::HammerBlade => &[
            ("compute", "sim_hb.cycles.compute"),
            ("llc_access", "sim_hb.cycles.llc_access"),
            ("dram_stall", "sim_hb.cycles.dram_stall"),
            ("bank", "sim_hb.cycles.bank"),
            ("barrier", "sim_hb.cycles.barrier"),
            ("host", "sim_hb.cycles.host"),
        ],
    }
}

/// The registry key holding the target's reported total.
#[must_use]
pub fn total_key(target: Target) -> &'static str {
    match target {
        Target::Cpu => "cpu.elapsed.ns",
        Target::Gpu => "sim_gpu.cycles.total",
        Target::Swarm => "sim_swarm.cycles.total",
        Target::HammerBlade => "sim_hb.cycles.total",
    }
}

/// The registry prefix all of a target's counters share.
#[must_use]
pub fn counter_prefix(target: Target) -> &'static str {
    match target {
        Target::Cpu => "cpu.",
        Target::Gpu => "sim_gpu.",
        Target::Swarm => "sim_swarm.",
        Target::HammerBlade => "sim_hb.",
    }
}

/// Extracts `target`'s attribution from a snapshot delta.
#[must_use]
pub fn attribution_from(target: Target, delta: &Snapshot) -> Attribution {
    Attribution {
        target,
        unit: if target == Target::Cpu {
            "ns"
        } else {
            "cycles"
        },
        components: component_keys(target)
            .iter()
            .map(|&(label, key)| (label, delta.value(key)))
            .collect(),
        total: delta.value(total_key(target)),
    }
}

impl Attribution {
    /// Sum of the components — equal to [`Attribution::total`] whenever
    /// telemetry was enabled for the whole measured window.
    #[must_use]
    pub fn component_sum(&self) -> u64 {
        self.components.iter().map(|(_, v)| v).sum()
    }

    /// Whether the components account for the reported total exactly.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.component_sum() == self.total
    }

    /// Renders the human-readable attribution table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<14}{:>16}{:>8}\n",
            "component", self.unit, "share"
        ));
        for &(label, v) in &self.components {
            let pct = if self.total == 0 {
                0.0
            } else {
                100.0 * v as f64 / self.total as f64
            };
            out.push_str(&format!("{label:<14}{v:>16}{pct:>7.1}%\n"));
        }
        out.push_str(&format!(
            "{:<14}{:>16}{:>8}  ({})\n",
            "total",
            self.total,
            "100.0%",
            if self.is_consistent() {
                "components sum to total"
            } else {
                "ATTRIBUTION MISMATCH"
            }
        ));
        out
    }

    /// One-line summary for tuning logs: the top components by share,
    /// e.g. `mem_stall 62% + compute 21% of 123456 cycles`. Empty when
    /// nothing was recorded (telemetry off or an idle window).
    #[must_use]
    pub fn summary(&self) -> String {
        if self.total == 0 {
            return String::new();
        }
        let mut ranked: Vec<(&str, u64)> = self
            .components
            .iter()
            .copied()
            .filter(|&(_, v)| v > 0)
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        let parts: Vec<String> = ranked
            .iter()
            .take(2)
            .map(|&(label, v)| format!("{label} {:.0}%", 100.0 * v as f64 / self.total as f64))
            .collect();
        format!("{} of {} {}", parts.join(" + "), self.total, self.unit)
    }
}

/// Like [`try_measure`], but also captures the run's attribution summary
/// from the telemetry registry (empty when telemetry is disabled).
///
/// # Errors
///
/// Returns the compile/execution error message on failure.
pub fn try_measure_profiled(
    target: Target,
    algo: Algorithm,
    graph: &Graph,
    sched: ugc_schedule::ScheduleRef,
    cpu_reps: u32,
) -> Result<(crate::Measurement, String), String> {
    let col = Collector::start();
    let m = try_measure(target, algo, graph, sched, cpu_reps)?;
    let profile = attribution_from(target, &col.snapshot()).summary();
    Ok((m, profile))
}

/// The workload `repro --profile` runs per backend: PageRank (all-active,
/// bandwidth-shaped) plus BFS (frontier-driven) on a power-law graph, each
/// under the backend's default schedule.
///
/// Returns the attribution plus the full backend-prefixed snapshot delta
/// (attribution, events, and histograms) for appending to `BENCH_*.json`.
///
/// # Panics
///
/// Panics if a default-schedule run fails — that is a build bug, not a
/// usage error.
#[must_use]
pub fn profile_backend(target: Target, scale: Scale) -> (Attribution, Snapshot) {
    let graph = Dataset::Pokec.generate(scale);
    let col = Collector::start();
    for algo in [Algorithm::PageRank, Algorithm::Bfs] {
        let sched = baseline_schedule(target, algo);
        try_measure(target, algo, &graph, sched, 1).expect("profile workload runs");
    }
    let delta = col.snapshot_prefix(counter_prefix(target));
    (attribution_from(target, &delta), delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_backend_accounts_for_every_cycle() {
        // Exact component-sum == total is asserted in
        // tests/telemetry_invariants.rs, whose binary serializes its
        // measurements; here sibling tests run backends concurrently, so a
        // registry delta may straddle another thread's update.
        for target in Target::ALL {
            let (attr, delta) = profile_backend(target, Scale::Tiny);
            if ugc_telemetry::enabled() {
                assert!(attr.total > 0, "{}: empty profile", target.name());
                assert!(!attr.summary().is_empty());
                assert!(!delta.is_empty());
            } else {
                assert_eq!(attr.total, 0);
                assert!(attr.summary().is_empty());
                assert!(delta.is_empty());
            }
        }
    }

    #[test]
    fn summary_names_the_dominant_component() {
        let attr = Attribution {
            target: Target::Gpu,
            unit: "cycles",
            components: vec![("compute", 25), ("mem_stall", 70), ("launch", 5)],
            total: 100,
        };
        assert!(attr.is_consistent());
        assert_eq!(attr.summary(), "mem_stall 70% + compute 25% of 100 cycles");
    }
}
