//! Deterministic search over a declared schedule space.
//!
//! Two strategies, both driven by the in-tree PRNG so the same seed always
//! explores (and returns) the same candidates:
//!
//! * **Exhaustive** — visits every point of the cross-product in a stable
//!   (odometer) order. Exact on the deterministic simulator targets; the
//!   default whenever the space fits the evaluation budget.
//! * **Greedy descent** — seeded random restarts followed by greedy
//!   coordinate descent: sweep each dimension in turn, move to the best
//!   level, repeat until a full sweep makes no progress. The classic
//!   OpenTuner-style climb for spaces too large to enumerate.
//!
//! Cost comes from a caller-supplied evaluator (the bench harness passes
//! its `measure`: wall time on CPU, simulated cycles elsewhere). Evaluated
//! points are memoized, so the budget counts *distinct* measurements.

use std::collections::HashMap;
use std::fmt;

use ugc_graph::prng::Prng;
use ugc_schedule::space::{
    cardinality, point_label, Dimension, PointIter, ScheduleSpace, SpaceParams,
};
use ugc_schedule::ScheduleRef;

/// Cost of one measured candidate: the target-appropriate time plus the
/// simulator counters recorded for explainability.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Sample {
    /// Milliseconds — wall-clock (CPU) or simulated (the other targets).
    pub time_ms: f64,
    /// Simulated cycles (0 on CPU).
    pub cycles: u64,
    /// Short attribution summary (where the time went) captured from the
    /// telemetry registry during the measurement; empty when telemetry is
    /// disabled or the evaluator does not collect one.
    pub profile: String,
}

/// One measured candidate in a [`TuneOutcome`]'s ranking.
#[derive(Debug, Clone)]
pub struct Ranked {
    /// Human-readable name: a `dim=level` label for space points, the
    /// caller-given name for pinned candidates.
    pub name: String,
    /// The point's level indices; `None` for pinned candidates.
    pub point: Option<Vec<usize>>,
    /// The materialized schedule.
    pub schedule: ScheduleRef,
    /// Its measured cost.
    pub sample: Sample,
}

/// The result of a tuning run: every measured candidate, best first.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// Candidates sorted by ascending time (ties broken by name, so the
    /// ranking is deterministic).
    pub ranked: Vec<Ranked>,
    /// Distinct space points measured (excludes pinned candidates).
    pub explored: usize,
    /// Raw cross-product size of the space.
    pub cardinality: u64,
    /// Which strategy ran: `"exhaustive"` or `"greedy"`.
    pub strategy: &'static str,
}

impl TuneOutcome {
    /// The winning candidate.
    ///
    /// # Panics
    ///
    /// Never panics: [`tune`] returns an error instead of an empty ranking.
    pub fn winner(&self) -> &Ranked {
        &self.ranked[0]
    }

    /// The ranked entry with the given name, if it was measured.
    pub fn find(&self, name: &str) -> Option<&Ranked> {
        self.ranked.iter().find(|r| r.name == name)
    }
}

/// Search strategy selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Exhaustive when the space fits the budget, greedy otherwise.
    #[default]
    Auto,
    /// Always enumerate (still capped at the budget).
    Exhaustive,
    /// Always random-restart + coordinate descent.
    GreedyDescent,
}

/// Tuning knobs. Everything is deterministic per [`Tuner::seed`].
#[derive(Debug, Clone, Copy)]
pub struct Tuner {
    /// PRNG seed for restarts (and any future stochastic strategy).
    pub seed: u64,
    /// Maximum number of distinct space points to measure.
    pub budget: usize,
    /// Strategy selection.
    pub strategy: Strategy,
    /// Random restarts for greedy descent.
    pub restarts: usize,
}

impl Default for Tuner {
    fn default() -> Self {
        Tuner {
            seed: 0x7E57_5EED,
            budget: 64,
            strategy: Strategy::Auto,
            restarts: 3,
        }
    }
}

/// Why a tuning run produced no winner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TuneError {
    /// The space declared no candidates and nothing was pinned.
    EmptySpace {
        /// The backend whose space was empty.
        target: String,
    },
    /// Every candidate's evaluation failed.
    AllCandidatesFailed {
        /// The backend being tuned.
        target: String,
        /// The last evaluator error, for diagnosis.
        last_error: String,
    },
    /// The persistent cache could not be read or written.
    Cache(String),
}

impl fmt::Display for TuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneError::EmptySpace { target } => {
                write!(f, "schedule search space for `{target}` is empty")
            }
            TuneError::AllCandidatesFailed { target, last_error } => {
                write!(
                    f,
                    "every candidate schedule for `{target}` failed to evaluate (last: {last_error})"
                )
            }
            TuneError::Cache(msg) => write!(f, "tuning cache error: {msg}"),
        }
    }
}

impl std::error::Error for TuneError {}

/// Shared mutable state of one search: memoized point evaluation so the
/// budget counts *distinct* measurements.
struct SearchState<'a, E> {
    space: &'a dyn ScheduleSpace,
    params: &'a SpaceParams,
    dims: &'a [Dimension],
    eval: E,
    /// point -> index into `ranked` (`None` for alias/failed points).
    memo: HashMap<Vec<usize>, Option<usize>>,
    ranked: Vec<Ranked>,
    explored: usize,
    attempted: usize,
    last_error: String,
    budget: usize,
}

impl<E> SearchState<'_, &mut E>
where
    E: FnMut(&ScheduleRef) -> Result<Sample, String>,
{
    fn exhausted(&self) -> bool {
        self.explored >= self.budget
    }

    /// Measures `pt` (memoized), returning its time if it evaluated.
    fn eval_point(&mut self, pt: &[usize]) -> Option<f64> {
        if let Some(&slot) = self.memo.get(pt) {
            return slot.map(|i| self.ranked[i].sample.time_ms);
        }
        if self.exhausted() {
            return None;
        }
        let Some(sched) = self.space.materialize(self.params, pt) else {
            self.memo.insert(pt.to_vec(), None);
            return None;
        };
        self.explored += 1;
        self.attempted += 1;
        match (self.eval)(&sched) {
            Ok(sample) => {
                let time_ms = sample.time_ms;
                self.ranked.push(Ranked {
                    name: point_label(self.dims, pt),
                    point: Some(pt.to_vec()),
                    schedule: sched,
                    sample,
                });
                self.memo.insert(pt.to_vec(), Some(self.ranked.len() - 1));
                Some(time_ms)
            }
            Err(e) => {
                self.last_error = e;
                self.memo.insert(pt.to_vec(), None);
                None
            }
        }
    }
}

/// Searches `space` for the fastest schedule under `eval`, additionally
/// measuring the `pinned` candidates (name, schedule) so reference
/// schedules — e.g. the hand-tuned one — are always part of the ranking
/// and the winner can never lose to them.
///
/// # Errors
///
/// [`TuneError::EmptySpace`] when there is nothing to measure at all, and
/// [`TuneError::AllCandidatesFailed`] when every evaluation failed.
pub fn tune<E>(
    space: &dyn ScheduleSpace,
    params: &SpaceParams,
    pinned: &[(String, ScheduleRef)],
    tuner: &Tuner,
    mut eval: E,
) -> Result<TuneOutcome, TuneError>
where
    E: FnMut(&ScheduleRef) -> Result<Sample, String>,
{
    let dims = space.dimensions(params);
    let card = cardinality(&dims);
    let mut st = SearchState {
        space,
        params,
        dims: &dims,
        eval: &mut eval,
        memo: HashMap::new(),
        ranked: Vec::new(),
        explored: 0,
        attempted: 0,
        last_error: String::new(),
        budget: tuner.budget.max(1),
    };

    for (name, sched) in pinned {
        st.attempted += 1;
        match (st.eval)(sched) {
            Ok(sample) => st.ranked.push(Ranked {
                name: name.clone(),
                point: None,
                schedule: sched.clone(),
                sample,
            }),
            Err(e) => st.last_error = e,
        }
    }

    let exhaustive = match tuner.strategy {
        Strategy::Exhaustive => true,
        Strategy::GreedyDescent => false,
        Strategy::Auto => card as usize <= st.budget,
    };

    if exhaustive {
        for pt in PointIter::new(&dims) {
            if st.exhausted() {
                break;
            }
            st.eval_point(&pt);
        }
    } else if !dims.is_empty() {
        let mut rng = Prng::new(tuner.seed);
        'restarts: for _ in 0..tuner.restarts.max(1) {
            // A random valid starting point.
            let mut current: Option<(Vec<usize>, f64)> = None;
            for _ in 0..64 {
                let pt: Vec<usize> = dims
                    .iter()
                    .map(|d| rng.gen_range(0..d.levels.len()))
                    .collect();
                if let Some(t) = st.eval_point(&pt) {
                    current = Some((pt, t));
                    break;
                }
                if st.exhausted() {
                    break 'restarts;
                }
            }
            let Some((mut pt, mut best)) = current else {
                continue;
            };
            // Greedy coordinate descent until a sweep stalls.
            loop {
                let mut improved = false;
                for d in 0..dims.len() {
                    let original = pt[d];
                    for level in 0..dims[d].levels.len() {
                        if level == original {
                            continue;
                        }
                        let mut cand = pt.clone();
                        cand[d] = level;
                        if let Some(t) = st.eval_point(&cand) {
                            if t < best {
                                best = t;
                                pt = cand;
                                improved = true;
                            }
                        }
                    }
                }
                if !improved || st.exhausted() {
                    break;
                }
            }
            if st.exhausted() {
                break;
            }
        }
    }

    let SearchState {
        mut ranked,
        explored,
        attempted,
        last_error,
        ..
    } = st;

    if ranked.is_empty() {
        if attempted == 0 {
            return Err(TuneError::EmptySpace {
                target: space.target_name().to_string(),
            });
        }
        return Err(TuneError::AllCandidatesFailed {
            target: space.target_name().to_string(),
            last_error,
        });
    }

    // Re-measure the pinned incumbents now that the session is warm. They
    // were measured first — cold caches, first-touch faults — so a single
    // noisy-high sample could hand the win to a space point that is
    // actually slower than the schedule we already ship. Keep each
    // incumbent's better sample; the winner can then never lose to a
    // pinned reference on measurement noise alone.
    for r in ranked.iter_mut().filter(|r| r.point.is_none()) {
        if let Ok(again) = eval(&r.schedule) {
            if again.time_ms < r.sample.time_ms {
                r.sample = again;
            }
        }
    }

    ranked.sort_by(|a, b| {
        a.sample
            .time_ms
            .total_cmp(&b.sample.time_ms)
            .then_with(|| a.name.cmp(&b.name))
    });

    Ok(TuneOutcome {
        ranked,
        explored,
        cardinality: card,
        strategy: if exhaustive { "exhaustive" } else { "greedy" },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugc_schedule::space::Dimension;
    use ugc_schedule::DefaultSchedule;

    /// A synthetic 3×4×5 space whose cost is a separable function of the
    /// point, with the optimum at (2, 0, 4).
    #[derive(Debug)]
    struct Synthetic;

    impl ScheduleSpace for Synthetic {
        fn target_name(&self) -> &'static str {
            "synthetic"
        }
        fn dimensions(&self, _p: &SpaceParams) -> Vec<Dimension> {
            vec![
                Dimension::new("a", vec!["a0", "a1", "a2"]),
                Dimension::new("b", vec!["b0", "b1", "b2", "b3"]),
                Dimension::new("c", vec!["c0", "c1", "c2", "c3", "c4"]),
            ]
        }
        fn materialize(&self, _p: &SpaceParams, point: &[usize]) -> Option<ScheduleRef> {
            // Encode the point in the hybrid threshold so the evaluator
            // can recover it from the schedule alone.
            let code = (point[0] * 100 + point[1] * 10 + point[2]) as f64;
            #[derive(Debug)]
            struct Coded(f64);
            impl ugc_schedule::SimpleSchedule for Coded {
                fn hybrid_threshold(&self) -> f64 {
                    self.0
                }
                fn as_any(&self) -> &dyn std::any::Any {
                    self
                }
            }
            Some(ScheduleRef::simple(Coded(code)))
        }
    }

    fn cost_of(sched: &ScheduleRef) -> f64 {
        let code = sched.representative().hybrid_threshold() as usize;
        let (a, b, c) = (code / 100, (code / 10) % 10, code % 10);
        // Separable, so coordinate descent finds the global optimum.
        ((a as f64) - 2.0).abs() + (b as f64) + (4.0 - c as f64) + 1.0
    }

    fn params() -> SpaceParams {
        SpaceParams {
            ordered: false,
            data_driven: false,
            num_vertices: 10,
        }
    }

    fn run(tuner: &Tuner) -> TuneOutcome {
        tune(&Synthetic, &params(), &[], tuner, |s| {
            Ok(Sample {
                time_ms: cost_of(s),
                cycles: 0,
                ..Sample::default()
            })
        })
        .unwrap()
    }

    #[test]
    fn exhaustive_finds_the_optimum() {
        let out = run(&Tuner {
            budget: 60,
            ..Tuner::default()
        });
        assert_eq!(out.strategy, "exhaustive");
        assert_eq!(out.explored, 60);
        assert_eq!(out.winner().point, Some(vec![2, 0, 4]));
        assert_eq!(out.winner().name, "a=a2,b=b0,c=c4");
    }

    #[test]
    fn greedy_finds_the_separable_optimum_within_budget() {
        let out = run(&Tuner {
            budget: 30,
            seed: 11,
            ..Tuner::default()
        });
        assert_eq!(out.strategy, "greedy");
        assert!(out.explored <= 30);
        assert_eq!(out.winner().point, Some(vec![2, 0, 4]));
    }

    #[test]
    fn same_seed_same_outcome() {
        let t = Tuner {
            budget: 20,
            seed: 99,
            strategy: Strategy::GreedyDescent,
            restarts: 2,
        };
        let (a, b) = (run(&t), run(&t));
        assert_eq!(a.explored, b.explored);
        assert_eq!(
            a.ranked.iter().map(|r| &r.name).collect::<Vec<_>>(),
            b.ranked.iter().map(|r| &r.name).collect::<Vec<_>>()
        );
    }

    #[test]
    fn budget_is_respected_and_memoized() {
        let out = run(&Tuner {
            budget: 7,
            strategy: Strategy::GreedyDescent,
            restarts: 5,
            seed: 5,
        });
        assert!(out.explored <= 7, "explored {}", out.explored);
        // Every ranked space point is distinct (memoization worked).
        let mut pts: Vec<_> = out.ranked.iter().filter_map(|r| r.point.clone()).collect();
        pts.sort();
        let n = pts.len();
        pts.dedup();
        assert_eq!(pts.len(), n);
    }

    #[test]
    fn pinned_candidates_always_rank() {
        let pinned = vec![(
            "hand_tuned".to_string(),
            ScheduleRef::simple(DefaultSchedule::new()),
        )];
        let out = tune(
            &Synthetic,
            &params(),
            &pinned,
            &Tuner {
                budget: 4,
                ..Tuner::default()
            },
            |s| {
                // The pinned candidate (a DefaultSchedule) costs 0.5 —
                // better than anything in the space.
                let t = if s.representative().hybrid_threshold() == 0.15 {
                    0.5
                } else {
                    cost_of(s)
                };
                Ok(Sample {
                    time_ms: t,
                    cycles: 0,
                    ..Sample::default()
                })
            },
        )
        .unwrap();
        assert_eq!(out.winner().name, "hand_tuned");
        assert_eq!(out.winner().point, None);
        assert!(out.find("hand_tuned").is_some());
    }

    #[test]
    fn noisy_cold_incumbent_is_remeasured_and_kept() {
        let pinned = vec![(
            "incumbent".to_string(),
            ScheduleRef::simple(DefaultSchedule::new()),
        )];
        let mut calls = 0usize;
        let out = tune(
            &Synthetic,
            &params(),
            &pinned,
            &Tuner {
                budget: 60,
                ..Tuner::default()
            },
            |s| {
                let n = calls;
                calls += 1;
                let t = if s.representative().hybrid_threshold() == 0.15 {
                    // The incumbent truly costs 0.6 — better than the
                    // space optimum's 1.0 — but its first, cold
                    // measurement reads 5.0.
                    if n == 0 {
                        5.0
                    } else {
                        0.6
                    }
                } else {
                    cost_of(s)
                };
                Ok(Sample {
                    time_ms: t,
                    cycles: 0,
                    ..Sample::default()
                })
            },
        )
        .unwrap();
        // Without the warm re-measurement the ranking would report the
        // space optimum (1.0) beating the incumbent's noisy 5.0 sample.
        assert_eq!(out.winner().name, "incumbent");
        assert_eq!(out.winner().sample.time_ms, 0.6);
        assert_eq!(out.explored, 60, "re-measurement must not spend budget");
    }

    #[test]
    fn empty_space_is_a_typed_error() {
        #[derive(Debug)]
        struct Empty;
        impl ScheduleSpace for Empty {
            fn target_name(&self) -> &'static str {
                "empty"
            }
            fn dimensions(&self, _p: &SpaceParams) -> Vec<Dimension> {
                vec![]
            }
            fn materialize(&self, _p: &SpaceParams, _pt: &[usize]) -> Option<ScheduleRef> {
                None
            }
        }
        let err = tune(&Empty, &params(), &[], &Tuner::default(), |_| {
            Ok(Sample {
                time_ms: 1.0,
                cycles: 0,
                ..Sample::default()
            })
        })
        .unwrap_err();
        assert_eq!(
            err,
            TuneError::EmptySpace {
                target: "empty".into()
            }
        );
        assert!(err.to_string().contains("empty"));
    }

    #[test]
    fn all_failures_reported() {
        let err = tune(
            &Synthetic,
            &params(),
            &[],
            &Tuner {
                budget: 5,
                ..Tuner::default()
            },
            |_| Err("simulated failure".to_string()),
        )
        .unwrap_err();
        match err {
            TuneError::AllCandidatesFailed { last_error, .. } => {
                assert_eq!(last_error, "simulated failure")
            }
            other => panic!("wrong error: {other:?}"),
        }
    }
}
