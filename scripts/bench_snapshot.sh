#!/usr/bin/env bash
# Records a benchmark snapshot: runs the CPU fig8 benches plus the
# pool_dispatch microbenchmark at a fixed seed/scale and writes the JSON
# lines into BENCH_<n>.json at the repo root (the perf trajectory the
# ROADMAP tracks).
#
# Usage: scripts/bench_snapshot.sh [N]
#   N        snapshot number (default 3); output file BENCH_<N>.json
#
# Env:
#   UGC_BENCH_OUT      override the output path entirely (CI smoke runs
#                      point this at target/ so the tracked snapshot is
#                      untouched)
#   UGC_BENCH_SAMPLES  timed iterations per bench (default 7 here)
#   UGC_BENCH_WARMUP   warmup iterations per bench (default 2 here)
set -euo pipefail

cd "$(dirname "$0")/.."

N="${1:-3}"
OUT="${UGC_BENCH_OUT:-BENCH_${N}.json}"
export UGC_BENCH_SAMPLES="${UGC_BENCH_SAMPLES:-7}"
export UGC_BENCH_WARMUP="${UGC_BENCH_WARMUP:-2}"

TMP="$(mktemp)"
RAW="$(mktemp)"
trap 'rm -f "$TMP" "$RAW"' EXIT

# Runs one bench binary and appends its JSON lines to $TMP. Capturing to a
# file first (instead of piping into grep) makes the bench's own exit code
# the one that gates the script — a crashing bench can't hide behind a
# successful grep, and grep can't hand the bench a broken pipe mid-print.
run_bench() {
  local bench="$1"
  shift
  cargo bench --offline -q -p ugc-bench --bench "$bench" -- "$@" >"$RAW"
  grep '^{' "$RAW" >>"$TMP"
}

echo "== fig8 CPU cells (fixed generator seeds, tiny scale)" >&2
run_bench fig8_speedups cpu/

echo "== pool dispatch microbenchmark" >&2
run_bench pool_dispatch

# Assemble a single JSON document: metadata + the individual bench lines.
{
  printf '{\n'
  printf '  "snapshot": %s,\n' "$N"
  printf '  "host_threads": %s,\n' "$(nproc 2>/dev/null || echo 1)"
  printf '  "samples": %s,\n' "$UGC_BENCH_SAMPLES"
  printf '  "warmup": %s,\n' "$UGC_BENCH_WARMUP"
  printf '  "benches": [\n'
  sed '$!s/$/,/; s/^/    /' "$TMP"
  printf '  ]\n'
  printf '}\n'
} >"$OUT"

echo "wrote $OUT ($(grep -c '"group"' "$OUT") bench entries)" >&2
