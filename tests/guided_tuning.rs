//! Quality contract of the telemetry-guided search: attribution-based
//! pruning and fingerprint warm starts change how much *budget* a tuning
//! run spends, never the *winner's* quality beyond measurement noise.
//!
//! Two properties, both over fresh random graphs on every backend:
//!
//! * **Pruning is quality-neutral** — a cost-model-guided run and an
//!   otherwise identical blind run (same seed, budget, restarts) must end
//!   within a small noise factor of each other. Both rank the pinned
//!   baseline/hand-tuned candidates, so neither can lose to the hand-tuned
//!   schedule — the property bites on the space points the pruned run
//!   never measured.
//! * **Fingerprint transfer saves measurements** — warm-starting greedy
//!   descent from a same-family donor's winner must converge in strictly
//!   fewer measurements than the identical cold search, at equal-or-noise
//!   winner quality. Deterministic on the simulated targets (cycle-exact
//!   costs), so the strict inequality cannot flake.

use ugc::{Algorithm, Target};
use ugc_autotune::TuneOutcome;
use ugc_bench::{autotune, autotune_warm, Strategy, Tuner};
use ugc_testkit::{check, Config, Prng};

const BUDGET: usize = 64;

fn tuner(cost_model: bool, restarts: usize, seed: u64) -> Tuner {
    Tuner {
        seed,
        budget: BUDGET,
        strategy: Strategy::GreedyDescent,
        restarts,
        cost_model,
    }
}

fn family_graph(seed: u64) -> ugc_graph::Graph {
    ugc_graph::generators::uniform_random(96, 320, seed, true)
}

/// Noise tolerance on the winner comparison: the simulators are
/// deterministic but the graphs differ per case, and the CPU backend
/// times wall clock.
fn tolerance(target: Target) -> f64 {
    match target {
        Target::Cpu => 1.5,
        _ => 1.25,
    }
}

fn best_space_point(out: &TuneOutcome) -> Option<Vec<usize>> {
    out.ranked.iter().find_map(|r| r.point.clone())
}

fn assert_quality(target: Target, algo: Algorithm, fast: &TuneOutcome, full: &TuneOutcome) {
    let tol = tolerance(target);
    let (f, b) = (fast.winner().sample.time_ms, full.winner().sample.time_ms);
    assert!(
        f <= b * tol,
        "{target:?}/{}: guided winner {f} ms vs blind {b} ms exceeds {tol}x noise",
        algo.name(),
    );
}

/// Pruned and unpruned greedy descent agree on winner quality.
fn check_pruning_neutral(target: Target, cases: u32) {
    check(
        &format!("pruning_quality_neutral_{target:?}"),
        Config::with_cases(cases),
        |rng: &mut Prng| rng.gen_range(0..1_000_000u64),
        |&seed| {
            let graph = family_graph(seed);
            for algo in [Algorithm::Bfs, Algorithm::Sssp, Algorithm::PageRank] {
                let blind =
                    autotune(target, algo, &graph, &tuner(false, 2, seed)).expect("blind tune");
                let guided =
                    autotune(target, algo, &graph, &tuner(true, 2, seed)).expect("guided tune");
                assert_quality(target, algo, &guided, &blind);
                // Pruned sweeps may reroute the descent, so per-run counts
                // can go either way — but the budget cap must still hold
                // and the skipped sweeps must be accounted, not lost.
                assert!(
                    guided.explored <= BUDGET,
                    "{target:?}/{}: budget cap violated",
                    algo.name(),
                );
            }
        },
    );
}

#[test]
fn cpu_pruning_is_quality_neutral() {
    check_pruning_neutral(Target::Cpu, 2);
}

#[test]
fn gpu_pruning_is_quality_neutral() {
    check_pruning_neutral(Target::Gpu, 2);
}

#[test]
fn swarm_pruning_is_quality_neutral() {
    check_pruning_neutral(Target::Swarm, 2);
}

#[test]
fn hb_pruning_is_quality_neutral() {
    check_pruning_neutral(Target::HammerBlade, 2);
}

/// Warm-starting from a same-family donor's winner converges in strictly
/// fewer measurements than the cold search it replaces, without losing
/// winner quality. "Cold" here is the search as it runs on a cache miss
/// with no fingerprint neighbour: multiple random restarts; the warm hit
/// is what lets a run drop to a single restart. Simulated targets only:
/// cycle-exact costs make the measurement counts deterministic for a
/// fixed graph pair.
fn check_transfer(target: Target, algo: Algorithm, seed: u64) {
    let donor = family_graph(seed);
    let probe = family_graph(seed + 1);
    let donor_out = autotune(target, algo, &donor, &tuner(true, 2, seed)).expect("donor tune");
    let warm = best_space_point(&donor_out).expect("donor produced no space point");

    let cold = autotune(target, algo, &probe, &tuner(true, 2, seed)).expect("cold tune");
    let warm_out =
        autotune_warm(target, algo, &probe, &tuner(true, 1, seed), Some(&warm)).expect("warm tune");

    assert!(
        warm_out.warm_start.is_some(),
        "{target:?}/{}: warm point was rejected",
        algo.name()
    );
    assert!(
        warm_out.explored < cold.explored,
        "{target:?}/{}: warm start did not save measurements ({} vs {})",
        algo.name(),
        warm_out.explored,
        cold.explored,
    );
    assert_quality(target, algo, &warm_out, &cold);
}

#[test]
fn gpu_fingerprint_transfer_saves_measurements() {
    check_transfer(Target::Gpu, Algorithm::Bfs, 11);
}

#[test]
fn swarm_fingerprint_transfer_saves_measurements() {
    check_transfer(Target::Swarm, Algorithm::Sssp, 23);
}

#[test]
fn hb_fingerprint_transfer_saves_measurements() {
    check_transfer(Target::HammerBlade, Algorithm::PageRank, 37);
}
