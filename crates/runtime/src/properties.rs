//! Per-vertex property storage and scalar globals with atomic operations.
//!
//! Every property vector is stored as `Vec<AtomicU64>` holding bit-encoded
//! [`Value`]s, so the same storage supports the real multithreaded CPU
//! backend (sequentially consistent atomics) and the single-threaded
//! architecture simulators.

use std::sync::atomic::{AtomicU64, Ordering};

use ugc_graphir::types::{ReduceOp, Type};

use crate::value::Value;

/// Index of a property vector within a [`PropertyStorage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PropId(pub usize);

/// One property vector.
struct PropArray {
    name: String,
    ty: Type,
    data: Vec<AtomicU64>,
}

/// All property vectors of a running program.
///
/// # Example
///
/// ```
/// use ugc_runtime::{PropertyStorage, Value};
/// use ugc_graphir::types::Type;
///
/// let mut props = PropertyStorage::new(4);
/// let parent = props.add("parent", Type::Vertex, Value::Int(-1));
/// assert_eq!(props.read(parent, 2), Value::Int(-1));
/// props.write(parent, 2, Value::Int(0));
/// assert_eq!(props.read(parent, 2), Value::Int(0));
/// ```
pub struct PropertyStorage {
    num_vertices: usize,
    arrays: Vec<PropArray>,
}

impl std::fmt::Debug for PropertyStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PropertyStorage")
            .field("num_vertices", &self.num_vertices)
            .field(
                "properties",
                &self
                    .arrays
                    .iter()
                    .map(|a| a.name.as_str())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl PropertyStorage {
    /// Creates storage for graphs of `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        PropertyStorage {
            num_vertices,
            arrays: Vec::new(),
        }
    }

    /// Number of vertices each vector covers.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Adds a property initialized to `init` everywhere; returns its id.
    pub fn add(&mut self, name: impl Into<String>, ty: Type, init: Value) -> PropId {
        let bits = init.to_bits(ty);
        let data = (0..self.num_vertices)
            .map(|_| AtomicU64::new(bits))
            .collect();
        self.arrays.push(PropArray {
            name: name.into(),
            ty,
            data,
        });
        PropId(self.arrays.len() - 1)
    }

    /// Resolves a property id by name.
    pub fn id_of(&self, name: &str) -> Option<PropId> {
        self.arrays.iter().position(|a| a.name == name).map(PropId)
    }

    /// The element type of a property.
    pub fn ty(&self, id: PropId) -> Type {
        self.arrays[id.0].ty
    }

    /// The name of a property.
    pub fn name(&self, id: PropId) -> &str {
        &self.arrays[id.0].name
    }

    /// Number of declared properties.
    pub fn len(&self) -> usize {
        self.arrays.len()
    }

    /// Whether no properties are declared.
    pub fn is_empty(&self) -> bool {
        self.arrays.is_empty()
    }

    /// Element size in bytes as the simulators model it (4 bytes for
    /// int/vertex/float-as-float32 analogues would undercount; GraphIt uses
    /// 4-byte ints and floats, so simulators charge 4).
    pub fn elem_bytes(&self, _id: PropId) -> u32 {
        4
    }

    /// Plain read.
    pub fn read(&self, id: PropId, idx: u32) -> Value {
        let a = &self.arrays[id.0];
        Value::from_bits(a.data[idx as usize].load(Ordering::Relaxed), a.ty)
    }

    /// Raw 64-bit cell read: the stored bit pattern, relaxed. Compiled
    /// kernels compare cells against precomputed constants ([`Self::bits_of`])
    /// without constructing a [`Value`].
    pub fn read_bits(&self, id: PropId, idx: u32) -> u64 {
        self.arrays[id.0].data[idx as usize].load(Ordering::Relaxed)
    }

    /// The bit pattern `v` occupies in property `id`'s cells (the encoding
    /// [`Self::write`] would store).
    pub fn bits_of(&self, id: PropId, v: Value) -> u64 {
        v.to_bits(self.arrays[id.0].ty)
    }

    /// Plain write.
    pub fn write(&self, id: PropId, idx: u32, v: Value) {
        let a = &self.arrays[id.0];
        a.data[idx as usize].store(v.to_bits(a.ty), Ordering::Relaxed);
    }

    /// Re-initializes every element of `id` to `v`. Large vectors are
    /// filled by the persistent pool.
    pub fn fill(&self, id: PropId, v: Value) {
        let a = &self.arrays[id.0];
        let bits = v.to_bits(a.ty);
        if a.data.len() >= PARALLEL_PROP_THRESHOLD {
            crate::pool::parallel_for(
                crate::pool::default_threads(),
                a.data.len(),
                PARALLEL_PROP_CHUNK,
                |_tid, range| {
                    for cell in &a.data[range] {
                        cell.store(bits, Ordering::Relaxed);
                    }
                },
            );
        } else {
            for cell in &a.data {
                cell.store(bits, Ordering::Relaxed);
            }
        }
    }

    /// Compare-and-swap; returns whether the swap happened.
    pub fn cas(&self, id: PropId, idx: u32, expected: Value, new: Value) -> bool {
        let a = &self.arrays[id.0];
        a.data[idx as usize]
            .compare_exchange(
                expected.to_bits(a.ty),
                new.to_bits(a.ty),
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
    }

    /// Atomic reduction; returns `(changed, old_value)`.
    ///
    /// `Min`/`Max` only store when strictly improving; `Sum` always stores
    /// and reports `changed` when the addend is non-zero; `Or` stores a
    /// boolean OR.
    pub fn reduce(&self, id: PropId, idx: u32, op: ReduceOp, v: Value) -> (bool, Value) {
        let a = &self.arrays[id.0];
        let cell = &a.data[idx as usize];
        let ty = a.ty;
        let mut cur = cell.load(Ordering::SeqCst);
        loop {
            let old = Value::from_bits(cur, ty);
            let (newv, changed) = apply_reduce(op, old, v, ty);
            if !changed {
                return (false, old);
            }
            match cell.compare_exchange_weak(
                cur,
                newv.to_bits(ty),
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return (true, old),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Non-atomic reduction (single-threaded backends); same result
    /// contract as [`PropertyStorage::reduce`].
    pub fn reduce_relaxed(&self, id: PropId, idx: u32, op: ReduceOp, v: Value) -> (bool, Value) {
        let a = &self.arrays[id.0];
        let cell = &a.data[idx as usize];
        let old = Value::from_bits(cell.load(Ordering::Relaxed), a.ty);
        let (newv, changed) = apply_reduce(op, old, v, a.ty);
        if changed {
            cell.store(newv.to_bits(a.ty), Ordering::Relaxed);
        }
        (changed, old)
    }

    /// Snapshot of a whole property as values (used by validators). Large
    /// vectors are materialized by the persistent pool.
    pub fn snapshot(&self, id: PropId) -> Vec<Value> {
        let a = &self.arrays[id.0];
        if a.data.len() >= PARALLEL_PROP_THRESHOLD {
            let mut out = vec![Value::Int(0); a.data.len()];
            crate::pool::parallel_for_each_mut(
                crate::pool::default_threads(),
                &mut out,
                PARALLEL_PROP_CHUNK,
                |_tid, start, window| {
                    for (i, slot) in window.iter_mut().enumerate() {
                        *slot = Value::from_bits(a.data[start + i].load(Ordering::Relaxed), a.ty);
                    }
                },
            );
            out
        } else {
            (0..self.num_vertices as u32)
                .map(|i| self.read(id, i))
                .collect()
        }
    }
}

/// Below this many elements, fill/snapshot run serially (pool dispatch
/// would cost more than the copy).
const PARALLEL_PROP_THRESHOLD: usize = 1 << 15;
/// Elements per chunk for pool-parallel fill/snapshot.
const PARALLEL_PROP_CHUNK: usize = 4096;

fn apply_reduce(op: ReduceOp, old: Value, v: Value, ty: Type) -> (Value, bool) {
    match op {
        ReduceOp::Sum => {
            let newv = Value::bin(ugc_graphir::types::BinOp::Add, old, v);
            let newv = coerce(newv, ty);
            let changed = !matches!(v, Value::Int(0) | Value::Float(0.0));
            (newv, changed)
        }
        ReduceOp::Min => {
            let better = Value::bin(ugc_graphir::types::BinOp::Lt, v, old).as_bool();
            (coerce(v, ty), better)
        }
        ReduceOp::Max => {
            let better = Value::bin(ugc_graphir::types::BinOp::Gt, v, old).as_bool();
            (coerce(v, ty), better)
        }
        ReduceOp::Or => {
            let newv = Value::Bool(old.as_bool() || v.as_bool());
            (newv, newv != old)
        }
    }
}

fn coerce(v: Value, ty: Type) -> Value {
    match ty {
        Type::Float => Value::Float(v.as_float()),
        Type::Bool => v,
        _ => match v {
            Value::Float(f) => Value::Int(f as i64),
            other => Value::Int(other.as_int()),
        },
    }
}

/// Scalar global variables shared between "host" and "device" code.
#[derive(Debug, Default)]
pub struct GlobalTable {
    names: Vec<String>,
    tys: Vec<Type>,
    cells: Vec<AtomicU64>,
}

impl GlobalTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a global; returns its index.
    pub fn add(&mut self, name: impl Into<String>, ty: Type, init: Value) -> usize {
        self.names.push(name.into());
        self.tys.push(ty);
        self.cells.push(AtomicU64::new(init.to_bits(ty)));
        self.cells.len() - 1
    }

    /// Resolves a global by name.
    pub fn id_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Reads a global.
    pub fn read(&self, id: usize) -> Value {
        Value::from_bits(self.cells[id].load(Ordering::SeqCst), self.tys[id])
    }

    /// Writes a global.
    pub fn write(&self, id: usize, v: Value) {
        self.cells[id].store(v.to_bits(self.tys[id]), Ordering::SeqCst);
    }

    /// Atomic reduction on a global; returns whether it changed.
    pub fn reduce(&self, id: usize, op: ReduceOp, v: Value) -> bool {
        let ty = self.tys[id];
        let cell = &self.cells[id];
        let mut cur = cell.load(Ordering::SeqCst);
        loop {
            let old = Value::from_bits(cur, ty);
            let (newv, changed) = apply_reduce(op, old, v, ty);
            if !changed {
                return false;
            }
            match cell.compare_exchange_weak(
                cur,
                newv.to_bits(ty),
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut p = PropertyStorage::new(3);
        let a = p.add("a", Type::Int, Value::Int(5));
        assert_eq!(p.id_of("a"), Some(a));
        assert_eq!(p.id_of("b"), None);
        assert_eq!(p.ty(a), Type::Int);
        assert_eq!(p.name(a), "a");
        assert_eq!(p.read(a, 1), Value::Int(5));
    }

    #[test]
    fn cas_semantics() {
        let mut p = PropertyStorage::new(2);
        let a = p.add("a", Type::Vertex, Value::Int(-1));
        assert!(p.cas(a, 0, Value::Int(-1), Value::Int(7)));
        assert!(!p.cas(a, 0, Value::Int(-1), Value::Int(9)));
        assert_eq!(p.read(a, 0), Value::Int(7));
    }

    #[test]
    fn reduce_min_only_improves() {
        let mut p = PropertyStorage::new(1);
        let a = p.add("d", Type::Int, Value::Int(10));
        let (c1, old1) = p.reduce(a, 0, ReduceOp::Min, Value::Int(4));
        assert!(c1);
        assert_eq!(old1, Value::Int(10));
        let (c2, _) = p.reduce(a, 0, ReduceOp::Min, Value::Int(6));
        assert!(!c2);
        assert_eq!(p.read(a, 0), Value::Int(4));
    }

    #[test]
    fn reduce_sum_float() {
        let mut p = PropertyStorage::new(1);
        let a = p.add("r", Type::Float, Value::Float(0.0));
        p.reduce(a, 0, ReduceOp::Sum, Value::Float(0.5));
        p.reduce(a, 0, ReduceOp::Sum, Value::Float(0.25));
        assert_eq!(p.read(a, 0), Value::Float(0.75));
    }

    #[test]
    fn reduce_sum_zero_reports_unchanged() {
        let mut p = PropertyStorage::new(1);
        let a = p.add("r", Type::Int, Value::Int(3));
        let (changed, _) = p.reduce(a, 0, ReduceOp::Sum, Value::Int(0));
        assert!(!changed);
    }

    #[test]
    fn reduce_or_bool() {
        let mut p = PropertyStorage::new(1);
        let a = p.add("f", Type::Bool, Value::Bool(false));
        let (c1, _) = p.reduce(a, 0, ReduceOp::Or, Value::Bool(true));
        assert!(c1);
        let (c2, _) = p.reduce(a, 0, ReduceOp::Or, Value::Bool(true));
        assert!(!c2);
    }

    #[test]
    fn parallel_reduce_sum_is_exact() {
        let mut p = PropertyStorage::new(1);
        let a = p.add("acc", Type::Int, Value::Int(0));
        crate::pool::parallel_for(4, 4000, 1000, |_tid, range| {
            for _ in range {
                p.reduce(a, 0, ReduceOp::Sum, Value::Int(1));
            }
        });
        assert_eq!(p.read(a, 0), Value::Int(4000));
    }

    #[test]
    fn parallel_cas_single_winner() {
        let mut p = PropertyStorage::new(1);
        let a = p.add("owner", Type::Int, Value::Int(-1));
        let winners = std::sync::atomic::AtomicUsize::new(0);
        crate::pool::parallel_for(8, 8, 1, |_tid, range| {
            for t in range {
                if p.cas(a, 0, Value::Int(-1), Value::Int(t as i64)) {
                    winners.fetch_add(1, Ordering::SeqCst);
                }
            }
        });
        assert_eq!(winners.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn fill_resets() {
        let mut p = PropertyStorage::new(3);
        let a = p.add("x", Type::Int, Value::Int(1));
        p.write(a, 2, Value::Int(9));
        p.fill(a, Value::Int(0));
        assert_eq!(p.snapshot(a), vec![Value::Int(0); 3]);
    }

    #[test]
    fn large_fill_and_snapshot_use_pool_path() {
        let n = super::PARALLEL_PROP_THRESHOLD + 17;
        let mut p = PropertyStorage::new(n);
        let a = p.add("x", Type::Int, Value::Int(1));
        p.write(a, 5, Value::Int(9));
        p.fill(a, Value::Int(3));
        let snap = p.snapshot(a);
        assert_eq!(snap.len(), n);
        assert!(snap.iter().all(|&v| v == Value::Int(3)));
    }

    #[test]
    fn globals_reduce() {
        let mut g = GlobalTable::new();
        let e = g.add("err", Type::Float, Value::Float(0.0));
        g.reduce(e, ReduceOp::Sum, Value::Float(1.5));
        assert_eq!(g.read(e), Value::Float(1.5));
        assert_eq!(g.id_of("err"), Some(e));
    }
}
