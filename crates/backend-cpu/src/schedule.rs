//! `SimpleCPUSchedule` — the CPU GraphVM's scheduling object.

use std::any::Any;

use ugc_schedule::space::{
    delta_dimension, delta_value, Dimension, PruneRule, ScheduleSpace, SpaceParams,
};
use ugc_schedule::{
    Parallelization, PullFrontierRepr, SchedDirection, ScheduleRef, SimpleSchedule,
};

/// CPU scheduling options (the original GraphIt CPU space).
///
/// A non-consuming builder is unnecessary here — schedules are small value
/// types configured once — so the `with_*` methods consume and return
/// `self` for one-liner construction, mirroring the paper's
/// `sched1.configDirection(PUSH)` style.
///
/// # Example
///
/// ```
/// use ugc_backend_cpu::CpuSchedule;
/// use ugc_schedule::{SchedDirection, SimpleSchedule, Parallelization};
///
/// let s = CpuSchedule::new()
///     .with_direction(SchedDirection::Hybrid)
///     .with_parallelization(Parallelization::EdgeAwareVertexBased)
///     .with_delta(8);
/// assert_eq!(s.direction(), SchedDirection::Hybrid);
/// assert_eq!(s.delta(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct CpuSchedule {
    direction: SchedDirection,
    parallelization: Parallelization,
    pull_frontier: PullFrontierRepr,
    dedup: bool,
    delta: i64,
    hybrid_threshold: f64,
    /// Frontiers smaller than this run serially (avoids parallel dispatch
    /// overhead on tiny road-graph rounds; the CPU analogue of the paper's
    /// bucket-fusion benefit).
    serial_threshold: usize,
    /// NUMA-aware / cache-blocked all-edges traversal (GraphIt's
    /// EdgeBlocking): process edges in destination-range blocks.
    cache_blocking: bool,
}

impl Default for CpuSchedule {
    fn default() -> Self {
        CpuSchedule {
            direction: SchedDirection::Push,
            parallelization: Parallelization::VertexBased,
            pull_frontier: PullFrontierRepr::Boolmap,
            dedup: false,
            delta: 1,
            hybrid_threshold: 0.15,
            serial_threshold: ugc_runtime::pool::SERIAL_DISPATCH_THRESHOLD,
            cache_blocking: false,
        }
    }
}

impl CpuSchedule {
    /// The default CPU schedule (matches the paper's baseline).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the traversal direction.
    pub fn with_direction(mut self, d: SchedDirection) -> Self {
        self.direction = d;
        self
    }

    /// Sets the parallelization scheme.
    pub fn with_parallelization(mut self, p: Parallelization) -> Self {
        self.parallelization = p;
        self
    }

    /// Sets the pull-side input frontier representation.
    pub fn with_pull_frontier(mut self, r: PullFrontierRepr) -> Self {
        self.pull_frontier = r;
        self
    }

    /// Enables explicit output deduplication.
    pub fn with_deduplication(mut self, yes: bool) -> Self {
        self.dedup = yes;
        self
    }

    /// Sets the ∆ bucket width for priority-queue algorithms.
    pub fn with_delta(mut self, delta: i64) -> Self {
        self.delta = delta;
        self
    }

    /// Sets the hybrid push→pull switch threshold (fraction of |V|).
    pub fn with_hybrid_threshold(mut self, t: f64) -> Self {
        self.hybrid_threshold = t;
        self
    }

    /// Sets the serial-execution threshold (frontier size).
    pub fn with_serial_threshold(mut self, t: usize) -> Self {
        self.serial_threshold = t;
        self
    }

    /// Enables cache-blocked all-edges traversal (EdgeBlocking).
    pub fn with_cache_blocking(mut self, yes: bool) -> Self {
        self.cache_blocking = yes;
        self
    }

    /// The serial-execution threshold.
    pub fn serial_threshold(&self) -> usize {
        self.serial_threshold
    }

    /// Whether cache blocking is enabled.
    pub fn cache_blocking(&self) -> bool {
        self.cache_blocking
    }
}

impl SimpleSchedule for CpuSchedule {
    fn parallelization(&self) -> Parallelization {
        self.parallelization
    }

    fn direction(&self) -> SchedDirection {
        self.direction
    }

    fn pull_frontier(&self) -> PullFrontierRepr {
        self.pull_frontier
    }

    fn deduplication(&self) -> bool {
        self.dedup
    }

    fn delta(&self) -> i64 {
        self.delta
    }

    fn hybrid_threshold(&self) -> f64 {
        self.hybrid_threshold
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// The CPU GraphVM's declared search space: the original GraphIt CPU
/// tuning axes (direction × parallelization × deduplication), plus the
/// serial-dispatch threshold, cache blocking, and the shared ∆ sweep for
/// ordered algorithms.
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuScheduleSpace;

/// Cost-model pruning table, keyed by the CPU attribution components
/// (`edge_push` / `edge_pull` / `vertex_apply` / `other`). Each row names
/// an axis that cannot move its dominant component, so guided search may
/// skip its sweep.
pub const CPU_PRUNE_RULES: &[PruneRule] = &[
    PruneRule {
        component: "vertex_apply",
        axis: "dir",
        reason: "direction reorders edge traversal; per-vertex apply work is direction-blind",
    },
    PruneRule {
        component: "vertex_apply",
        axis: "dedup",
        reason: "dedup filters duplicate frontier pushes; apply-bound time has none to filter",
    },
    PruneRule {
        component: "vertex_apply",
        axis: "blocking",
        reason: "cache blocking tiles edge access; apply-bound loops touch no edges",
    },
    PruneRule {
        component: "edge_pull",
        axis: "dedup",
        reason: "dedup suppresses duplicate push-side enqueues; pull traversal reads instead",
    },
];

impl ScheduleSpace for CpuScheduleSpace {
    fn target_name(&self) -> &'static str {
        "cpu"
    }

    fn dimensions(&self, p: &SpaceParams) -> Vec<Dimension> {
        let directions = if p.ordered {
            vec!["push"]
        } else if p.data_driven {
            vec!["push", "pull", "hybrid"]
        } else {
            vec!["push", "pull"]
        };
        vec![
            Dimension::new("dir", directions),
            Dimension::new("par", vec!["vertex", "edge_aware"]),
            Dimension::new("dedup", vec!["off", "on"]),
            Dimension::new("serial", vec!["0", "512", "4096"]),
            Dimension::new("blocking", vec!["off", "on"]),
            delta_dimension(p),
        ]
    }

    fn materialize(&self, p: &SpaceParams, point: &[usize]) -> Option<ScheduleRef> {
        let dims = self.dimensions(p);
        let level = |i: usize| dims[i].levels[point[i]];
        let mut s = CpuSchedule::new()
            .with_direction(match level(0) {
                "pull" => SchedDirection::Pull,
                "hybrid" => SchedDirection::Hybrid,
                _ => SchedDirection::Push,
            })
            .with_parallelization(match level(1) {
                "edge_aware" => Parallelization::EdgeAwareVertexBased,
                _ => Parallelization::VertexBased,
            })
            .with_deduplication(level(2) == "on")
            .with_serial_threshold(match level(3) {
                "512" => 512,
                "4096" => 4096,
                _ => 0,
            })
            .with_cache_blocking(level(4) == "on");
        if p.ordered {
            s = s.with_delta(delta_value(point[5]));
        }
        Some(ScheduleRef::simple(s))
    }

    fn prune_rules(&self) -> &'static [PruneRule] {
        CPU_PRUNE_RULES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_baseline() {
        let s = CpuSchedule::new();
        assert_eq!(s.direction(), SchedDirection::Push);
        assert_eq!(s.parallelization(), Parallelization::VertexBased);
        assert!(!s.deduplication());
        assert_eq!(s.delta(), 1);
    }

    #[test]
    fn builder_chains() {
        let s = CpuSchedule::new()
            .with_direction(SchedDirection::Pull)
            .with_deduplication(true)
            .with_cache_blocking(true)
            .with_serial_threshold(64);
        assert_eq!(s.direction(), SchedDirection::Pull);
        assert!(s.deduplication());
        assert!(s.cache_blocking());
        assert_eq!(s.serial_threshold(), 64);
    }

    #[test]
    fn downcast_from_trait_object() {
        let s: Box<dyn SimpleSchedule> = Box::new(CpuSchedule::new().with_delta(4));
        let c = s.as_any().downcast_ref::<CpuSchedule>().unwrap();
        assert_eq!(c.delta, 4);
    }

    #[test]
    fn space_enumerates_and_materializes() {
        use ugc_schedule::space::{cardinality, PointIter};
        let p = SpaceParams {
            ordered: false,
            data_driven: true,
            num_vertices: 1000,
        };
        let dims = CpuScheduleSpace.dimensions(&p);
        assert_eq!(cardinality(&dims), 3 * 2 * 2 * 3 * 2);
        for pt in PointIter::new(&dims) {
            let s = CpuScheduleSpace.materialize(&p, &pt).expect("no aliases");
            assert!(s.as_simple().is_some());
        }
    }

    #[test]
    fn space_pins_direction_for_ordered() {
        let p = SpaceParams {
            ordered: true,
            data_driven: false,
            num_vertices: 1000,
        };
        let dims = CpuScheduleSpace.dimensions(&p);
        assert_eq!(dims[0].levels, vec!["push"]);
        assert_eq!(dims.last().unwrap().levels.len(), 6, "∆ sweep present");
        let s = CpuScheduleSpace
            .materialize(&p, &[0, 1, 0, 2, 0, 5])
            .unwrap();
        assert_eq!(s.representative().delta(), 64);
    }
}
