//! Property-based end-to-end tests: on random graphs, every backend's
//! result matches the sequential reference implementations. Runs on the
//! in-tree `ugc-testkit` harness (seeded cases + bounded shrinking).

use ugc::{Algorithm, Compiler, Target};
use ugc_graph::{EdgeList, Graph};
use ugc_testkit::{check_with_shrink, Config, Prng, Shrink};

/// Raw material for a random symmetric weighted graph (the shape every
/// paper dataset has). Kept as (n, edges) so failures shrink by removing
/// edges while the vertex count stays fixed.
type RawGraph = (usize, Vec<(u32, u32, i32)>);

fn gen_raw(rng: &mut Prng) -> RawGraph {
    let n = rng.gen_range(4..48usize);
    let len = rng.gen_range(1..128usize);
    let edges = (0..len)
        .map(|_| {
            (
                rng.gen_range(0..n as u32),
                rng.gen_range(0..n as u32),
                rng.gen_range(1i32..32),
            )
        })
        .collect();
    (n, edges)
}

fn shrink_raw(input: &RawGraph) -> Vec<RawGraph> {
    let (n, edges) = input;
    edges
        .shrink()
        .into_iter()
        .filter(|e| {
            e.iter()
                .all(|&(s, d, w)| s < *n as u32 && d < *n as u32 && w >= 1)
        })
        .map(|e| (*n, e))
        .collect()
}

fn build(raw: &RawGraph) -> Graph {
    let (n, edges) = raw;
    let mut el = EdgeList::new(*n);
    for &(s, d, w) in edges {
        el.push_weighted(s, d, w);
    }
    el.symmetrize();
    el.dedup_and_strip_loops();
    el.into_graph()
}

fn run(algo: Algorithm, target: Target, graph: &Graph, start: u32) -> ugc::RunResult {
    let mut c = Compiler::new(algo);
    if algo.needs_start_vertex() {
        c.start_vertex(start);
    }
    c.run(target, graph).expect("run succeeds")
}

/// The e2e properties compile and execute on four backends per case, so
/// mirror the seed's trimmed case count (ProptestConfig::with_cases(12)).
fn check_graphs(name: &str, prop: impl Fn(&Graph)) {
    check_with_shrink(
        name,
        Config {
            cases: 12,
            ..Config::default()
        },
        gen_raw,
        shrink_raw,
        |raw| prop(&build(raw)),
    );
}

#[test]
fn bfs_valid_on_every_backend() {
    check_graphs("bfs_valid_on_every_backend", |graph| {
        for target in Target::ALL {
            let r = run(Algorithm::Bfs, target, graph, 0);
            ugc_algorithms::validate::check_bfs_parents(graph, 0, r.property_ints("parent"))
                .unwrap_or_else(|e| panic!("{}: {e}", target.name()));
        }
    });
}

#[test]
fn sssp_matches_dijkstra_on_every_backend() {
    check_graphs("sssp_matches_dijkstra_on_every_backend", |graph| {
        for target in Target::ALL {
            let r = run(Algorithm::Sssp, target, graph, 0);
            ugc_algorithms::validate::check_sssp_distances(graph, 0, r.property_ints("dist"))
                .unwrap_or_else(|e| panic!("{}: {e}", target.name()));
        }
    });
}

#[test]
fn cc_matches_union_find_on_every_backend() {
    check_graphs("cc_matches_union_find_on_every_backend", |graph| {
        for target in Target::ALL {
            let r = run(Algorithm::Cc, target, graph, 0);
            ugc_algorithms::validate::check_cc_labels(graph, r.property_ints("IDs"))
                .unwrap_or_else(|e| panic!("{}: {e}", target.name()));
        }
    });
}

#[test]
fn pagerank_matches_reference_on_every_backend() {
    check_graphs("pagerank_matches_reference_on_every_backend", |graph| {
        for target in Target::ALL {
            let r = run(Algorithm::PageRank, target, graph, 0);
            ugc_algorithms::validate::check_pagerank(graph, r.property_floats("old_rank"), 1e-7)
                .unwrap_or_else(|e| panic!("{}: {e}", target.name()));
        }
    });
}

#[test]
fn bc_matches_brandes_on_every_backend() {
    check_graphs("bc_matches_brandes_on_every_backend", |graph| {
        for target in Target::ALL {
            let r = run(Algorithm::Bc, target, graph, 0);
            ugc_algorithms::validate::check_bc(graph, 0, r.property_floats("centrality"), 1e-6)
                .unwrap_or_else(|e| panic!("{}: {e}", target.name()));
        }
    });
}

/// All four backends compute bit-identical integer results.
#[test]
fn backends_agree_exactly() {
    check_graphs("backends_agree_exactly", |graph| {
        let cpu = run(Algorithm::Sssp, Target::Cpu, graph, 0);
        for target in [Target::Gpu, Target::Swarm, Target::HammerBlade] {
            let other = run(Algorithm::Sssp, target, graph, 0);
            assert_eq!(
                cpu.property_ints("dist"),
                other.property_ints("dist"),
                "{} disagrees with CPU",
                target.name()
            );
        }
    });
}
