//! Per-key circuit breakers: fail fast on poisoned work instead of
//! burning retry budget for every caller.
//!
//! `ugc-serve` keys circuits by `(algorithm, dataset, scale)` — a combo
//! that keeps failing with `Permanent`/`Invariant` errors (a poisoned
//! dataset, a broken kernel for one algorithm) should reject immediately
//! with `err circuit_open` rather than re-execute, re-classify, and
//! re-fallback on every request that touches it.
//!
//! The state machine is **count-based and deterministic** — no clocks,
//! so chaos tests replay exactly:
//!
//! * **Closed** — outcomes feed a sliding window of the last
//!   [`BreakerConfig::window`] calls. When the window holds
//!   [`BreakerConfig::failure_threshold`] failures, the circuit opens.
//! * **Open** — the next [`BreakerConfig::cooldown`] admissions are
//!   rejected outright. The admission after that is the half-open probe.
//! * **HalfOpen** — exactly one in-flight probe ([`Admission::Probe`]);
//!   concurrent admissions are rejected while it runs. A successful
//!   probe closes the circuit (window cleared); a failed probe reopens
//!   it for a fresh cooldown.
//!
//! Only failures the *caller* decides are circuit-worthy should be
//! recorded via [`Breaker::record_failure`] — for serve that means
//! `Permanent` and `Invariant` classes. Transient and budget failures
//! are the retry/fallback machinery's job, not the breaker's.
//!
//! Telemetry (`resilience.breaker.{opened,closed,rejected,probes}`) is
//! registered lazily on the first breaker event, matching the crate-wide
//! rule that fault-free runs leave no trace in snapshots.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::sync::{Mutex, OnceLock};

use ugc_telemetry::Counter;

/// Breaker tuning. All counts, no durations: the machine advances only
/// on admissions and recorded outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Failures within the window that trip the circuit.
    pub failure_threshold: u32,
    /// Sliding outcome-window length (calls, not time).
    pub window: u32,
    /// Admissions rejected while open before the half-open probe.
    pub cooldown: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            window: 8,
            cooldown: 4,
        }
    }
}

/// Circuit state for one key, as reported by [`Breaker::state_counts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    /// Calls flow; outcomes feed the window.
    Closed,
    /// Calls rejected until the cooldown elapses.
    Open,
    /// One probe in flight; its outcome decides the next state.
    HalfOpen,
}

/// The admission decision for one call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Circuit closed: run the call, record its outcome.
    Allow,
    /// Circuit half-open: run the call as the single probe and *must*
    /// record its outcome, or the circuit wedges half-open.
    Probe,
    /// Circuit open: fail fast, record nothing.
    Reject,
}

struct Circuit {
    state: State,
    /// Closed-state sliding window; `true` = failure.
    recent: VecDeque<bool>,
    /// Open-state admissions rejected so far this cooldown.
    rejections: u32,
}

impl Circuit {
    fn new() -> Self {
        Circuit {
            state: State::Closed,
            recent: VecDeque::new(),
            rejections: 0,
        }
    }
}

struct BreakerCounters {
    opened: Counter,
    closed: Counter,
    rejected: Counter,
    probes: Counter,
}

fn breaker_counters() -> &'static BreakerCounters {
    static C: OnceLock<BreakerCounters> = OnceLock::new();
    C.get_or_init(|| BreakerCounters {
        opened: Counter::new("resilience.breaker.opened"),
        closed: Counter::new("resilience.breaker.closed"),
        rejected: Counter::new("resilience.breaker.rejected"),
        probes: Counter::new("resilience.breaker.probes"),
    })
}

/// A family of independent circuits, one per key.
///
/// Keys are cheap copies (serve uses `(Algorithm, Dataset, Scale)`).
/// All methods take `&self`; a single mutex guards the map — admission
/// is two orders of magnitude cheaper than the graph traversals behind
/// it, so contention is not a concern at serve's pool sizes.
pub struct Breaker<K> {
    config: BreakerConfig,
    circuits: Mutex<HashMap<K, Circuit>>,
}

impl<K: Eq + Hash + Copy> Breaker<K> {
    /// A breaker family with the given tuning.
    pub fn new(config: BreakerConfig) -> Self {
        Breaker {
            config,
            circuits: Mutex::new(HashMap::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<K, Circuit>> {
        self.circuits.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Decides whether a call keyed `key` may run now.
    ///
    /// [`Admission::Probe`] hands the caller the half-open probe: its
    /// outcome *must* be recorded (success or failure) or the circuit
    /// stays half-open and keeps rejecting everyone else.
    pub fn admit(&self, key: K) -> Admission {
        let mut map = self.lock();
        let c = map.entry(key).or_insert_with(Circuit::new);
        match c.state {
            State::Closed => Admission::Allow,
            State::HalfOpen => {
                breaker_counters().rejected.incr();
                Admission::Reject
            }
            State::Open => {
                if c.rejections < self.config.cooldown {
                    c.rejections += 1;
                    breaker_counters().rejected.incr();
                    Admission::Reject
                } else {
                    c.state = State::HalfOpen;
                    breaker_counters().probes.incr();
                    Admission::Probe
                }
            }
        }
    }

    /// Records a successful outcome for `key`.
    pub fn record_success(&self, key: K) {
        let mut map = self.lock();
        let c = map.entry(key).or_insert_with(Circuit::new);
        match c.state {
            State::Closed => {
                c.recent.push_back(false);
                if c.recent.len() > self.config.window as usize {
                    c.recent.pop_front();
                }
            }
            State::HalfOpen => {
                // Probe succeeded: close with a clean window.
                c.state = State::Closed;
                c.recent.clear();
                c.rejections = 0;
                breaker_counters().closed.incr();
            }
            // A straggler admitted before the trip finished after it;
            // the open circuit's cooldown is unaffected.
            State::Open => {}
        }
    }

    /// Records a circuit-worthy failure for `key`. Callers filter by
    /// error class first; transient faults should not reach here.
    pub fn record_failure(&self, key: K) {
        let mut map = self.lock();
        let c = map.entry(key).or_insert_with(Circuit::new);
        match c.state {
            State::Closed => {
                c.recent.push_back(true);
                if c.recent.len() > self.config.window as usize {
                    c.recent.pop_front();
                }
                let failures = c.recent.iter().filter(|&&f| f).count() as u32;
                if failures >= self.config.failure_threshold {
                    c.state = State::Open;
                    c.recent.clear();
                    c.rejections = 0;
                    breaker_counters().opened.incr();
                }
            }
            State::HalfOpen => {
                // Probe failed: reopen for a fresh cooldown.
                c.state = State::Open;
                c.rejections = 0;
                breaker_counters().opened.incr();
            }
            State::Open => {}
        }
    }

    /// `(closed, half_open, open)` counts over every key seen so far.
    /// Serve surfaces these as `circuit_{closed,half_open,open}` gauges.
    pub fn state_counts(&self) -> (usize, usize, usize) {
        let map = self.lock();
        let mut counts = (0usize, 0usize, 0usize);
        for c in map.values() {
            match c.state {
                State::Closed => counts.0 += 1,
                State::HalfOpen => counts.1 += 1,
                State::Open => counts.2 += 1,
            }
        }
        counts
    }

    /// The current state of `key`'s circuit (Closed if never seen).
    pub fn state(&self, key: K) -> State {
        self.lock().get(&key).map_or(State::Closed, |c| c.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            window: 8,
            cooldown: 4,
        }
    }

    #[test]
    fn trips_after_threshold_failures_in_window() {
        let b: Breaker<u32> = Breaker::new(cfg());
        assert_eq!(b.admit(1), Admission::Allow);
        b.record_failure(1);
        b.record_failure(1);
        assert_eq!(b.state(1), State::Closed, "two failures stay closed");
        b.record_failure(1);
        assert_eq!(b.state(1), State::Open, "third failure trips");
        assert_eq!(b.admit(1), Admission::Reject);
    }

    #[test]
    fn successes_age_failures_out_of_the_window() {
        let b: Breaker<u32> = Breaker::new(cfg());
        b.record_failure(1);
        b.record_failure(1);
        // Eight successes push both failures out of the window.
        for _ in 0..8 {
            b.record_success(1);
        }
        b.record_failure(1);
        b.record_failure(1);
        assert_eq!(b.state(1), State::Closed, "aged failures must not count");
    }

    #[test]
    fn cooldown_then_probe_then_close_on_success() {
        let b: Breaker<u32> = Breaker::new(cfg());
        for _ in 0..3 {
            b.record_failure(1);
        }
        // Cooldown: exactly `cooldown` rejections...
        for i in 0..4 {
            assert_eq!(b.admit(1), Admission::Reject, "rejection {i}");
        }
        // ...then the single half-open probe.
        assert_eq!(b.admit(1), Admission::Probe);
        assert_eq!(b.state(1), State::HalfOpen);
        // Concurrent calls are rejected while the probe is in flight.
        assert_eq!(b.admit(1), Admission::Reject);
        b.record_success(1);
        assert_eq!(b.state(1), State::Closed);
        assert_eq!(b.admit(1), Admission::Allow);
    }

    #[test]
    fn failed_probe_reopens_for_a_fresh_cooldown() {
        let b: Breaker<u32> = Breaker::new(cfg());
        for _ in 0..3 {
            b.record_failure(1);
        }
        for _ in 0..4 {
            assert_eq!(b.admit(1), Admission::Reject);
        }
        assert_eq!(b.admit(1), Admission::Probe);
        b.record_failure(1);
        assert_eq!(b.state(1), State::Open, "failed probe reopens");
        // Full cooldown again before the next probe.
        for _ in 0..4 {
            assert_eq!(b.admit(1), Admission::Reject);
        }
        assert_eq!(b.admit(1), Admission::Probe);
    }

    #[test]
    fn keys_are_independent() {
        let b: Breaker<u32> = Breaker::new(cfg());
        for _ in 0..3 {
            b.record_failure(7);
        }
        assert_eq!(b.admit(7), Admission::Reject);
        assert_eq!(b.admit(8), Admission::Allow, "other keys unaffected");
        assert_eq!(b.state_counts(), (1, 0, 1));
    }

    #[test]
    fn open_state_ignores_straggler_outcomes() {
        let b: Breaker<u32> = Breaker::new(cfg());
        for _ in 0..3 {
            b.record_failure(1);
        }
        // Outcomes from calls admitted before the trip must not advance
        // or reset the cooldown.
        b.record_success(1);
        b.record_failure(1);
        for _ in 0..4 {
            assert_eq!(b.admit(1), Admission::Reject);
        }
        assert_eq!(b.admit(1), Admission::Probe);
    }
}
