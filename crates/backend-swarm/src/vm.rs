//! The Swarm GraphVM entry point.

use std::collections::HashMap;

use ugc_graph::Graph;
use ugc_graphir::ir::Program;
use ugc_runtime::interp::{contain, run_main, ExecError, ProgramState};
use ugc_runtime::value::Value;
use ugc_sim_swarm::{SwarmConfig, SwarmSim, SwarmStats};

use crate::executor::SwarmExecutor;

/// The Swarm GraphVM: runs GraphIR on the speculative-task simulator.
#[derive(Debug, Clone, Default)]
pub struct SwarmGraphVm {
    /// Simulated machine configuration.
    pub config: SwarmConfig,
}

/// Result of one simulated execution.
pub struct SwarmExecution<'g> {
    /// Final program state.
    pub state: ProgramState<'g>,
    /// Simulated cycles.
    pub cycles: u64,
    /// Simulated milliseconds.
    pub time_ms: f64,
    /// Task/abort/idle statistics (Fig. 11's categories).
    pub stats: SwarmStats,
}

impl std::fmt::Debug for SwarmExecution<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwarmExecution")
            .field("cycles", &self.cycles)
            .field("stats", &self.stats)
            .finish()
    }
}

impl SwarmExecution<'_> {
    /// Snapshot of an integer property.
    ///
    /// # Panics
    ///
    /// Panics if the property does not exist.
    pub fn property_ints(&self, name: &str) -> Vec<i64> {
        let id = self.state.props.id_of(name).expect("property exists");
        self.state
            .props
            .snapshot(id)
            .into_iter()
            .map(|v| v.as_int())
            .collect()
    }

    /// Snapshot of a float property.
    ///
    /// # Panics
    ///
    /// Panics if the property does not exist.
    pub fn property_floats(&self, name: &str) -> Vec<f64> {
        let id = self.state.props.id_of(name).expect("property exists");
        self.state
            .props
            .snapshot(id)
            .into_iter()
            .map(|v| v.as_float())
            .collect()
    }
}

impl SwarmGraphVm {
    /// A VM over the given machine configuration.
    pub fn new(config: SwarmConfig) -> Self {
        SwarmGraphVm { config }
    }

    /// A VM with `n` cores (queues scale with the core count).
    pub fn with_cores(n: usize) -> Self {
        SwarmGraphVm {
            config: SwarmConfig::default().with_cores(n),
        }
    }

    /// Executes a midend-processed program on `graph`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] for unbound externs or execution failures.
    pub fn execute<'g>(
        &self,
        prog: Program,
        graph: &'g Graph,
        externs: &HashMap<String, Value>,
    ) -> Result<SwarmExecution<'g>, ExecError> {
        contain(std::panic::AssertUnwindSafe(|| {
            let mut state = ProgramState::new(prog, graph, externs)?;
            let mut exec = SwarmExecutor::new(SwarmSim::new(self.config.clone()));
            run_main(&mut state, &mut exec)?;
            Ok(SwarmExecution {
                cycles: exec.sim.time_cycles(),
                time_ms: exec.sim.time_ms(),
                stats: exec.sim.stats,
                state,
            })
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{Frontiers, SwarmSchedule, TaskGranularity};
    use ugc_schedule::{apply_schedule, ScheduleRef};

    const BFS: &str = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load("g");
const parent : vector{Vertex}(int) = -1;
const start_vertex : Vertex;
func toFilter(v : Vertex) -> output : bool
    output = (parent[v] == -1);
end
func updateEdge(src : Vertex, dst : Vertex)
    parent[dst] = src;
end
func main()
    var frontier : vertexset{Vertex} = new vertexset{Vertex}(0);
    frontier.addVertex(start_vertex);
    parent[start_vertex] = start_vertex;
    #s0# while (frontier.getVertexSetSize() != 0)
        #s1# var output : vertexset{Vertex} = edges.from(frontier).to(toFilter).applyModified(updateEdge, parent, true);
        delete frontier;
        frontier = output;
    end
end
"#;

    fn run_bfs(sched: Option<SwarmSchedule>) -> (Vec<i64>, u64, SwarmStats) {
        let mut prog = ugc_midend::frontend_to_ir(BFS).unwrap();
        if let Some(s) = sched {
            apply_schedule(&mut prog, "s0:s1", ScheduleRef::simple(s)).unwrap();
        }
        ugc_midend::run_passes(&mut prog).unwrap();
        let graph = ugc_graph::generators::road_grid(12, 12, 0.05, 5, true);
        let mut externs = HashMap::new();
        externs.insert("start_vertex".to_string(), Value::Int(0));
        let vm = SwarmGraphVm::default();
        let run = vm.execute(prog, &graph, &externs).unwrap();
        (run.property_ints("parent"), run.cycles, run.stats)
    }

    #[test]
    fn bfs_buffered_baseline_correct() {
        let (parents, cycles, stats) = run_bfs(None);
        assert!(parents.iter().all(|&p| p != -1));
        assert!(cycles > 0);
        assert!(stats.commits > 0);
    }

    #[test]
    fn vertexset_to_tasks_correct_and_faster_on_road_graph() {
        let (p_base, c_base, _) = run_bfs(Some(SwarmSchedule::new()));
        let (p_opt, c_opt, stats) = run_bfs(Some(
            SwarmSchedule::new().with_frontiers(Frontiers::VertexsetToTasks),
        ));
        assert_eq!(
            p_base.iter().filter(|&&p| p != -1).count(),
            p_opt.iter().filter(|&&p| p != -1).count()
        );
        assert!(stats.commits > 0);
        assert!(
            c_opt < c_base,
            "tasks {c_opt} should beat buffered {c_base} on a road graph"
        );
    }

    #[test]
    fn fine_grained_with_hints_correct() {
        let (parents, _, _) = run_bfs(Some(
            SwarmSchedule::new()
                .with_frontiers(Frontiers::VertexsetToTasks)
                .with_task_granularity(TaskGranularity::FineGrained),
        ));
        assert!(parents.iter().all(|&p| p != -1));
    }
}
