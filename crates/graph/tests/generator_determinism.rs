//! Generator determinism: `rmat` and `road_grid` must produce
//! byte-identical edge lists for the same seed across repeated runs and
//! regardless of how many threads are generating concurrently. This is
//! the contract that makes benchmarks and cross-backend comparisons
//! reproducible, and it must survive any future PRNG or generator change
//! only via an explicit, reviewed break.

use ugc_graph::Graph;

/// Full structural fingerprint of a graph: CSR offsets, targets, weights.
fn fingerprint(g: &Graph) -> (Vec<usize>, Vec<u32>, Vec<i32>) {
    let csr = g.out_csr();
    (
        csr.offsets().to_vec(),
        csr.targets().to_vec(),
        csr.weights().map(|w| w.to_vec()).unwrap_or_default(),
    )
}

#[test]
fn rmat_identical_across_runs_and_thread_counts() {
    let reference = fingerprint(&ugc_graph::generators::rmat(8, 6, 42, true));
    // Repeated sequential runs.
    for _ in 0..3 {
        assert_eq!(
            fingerprint(&ugc_graph::generators::rmat(8, 6, 42, true)),
            reference
        );
    }
    // Concurrent generation at several thread counts.
    for threads in [1usize, 2, 4, 8] {
        let results: Vec<_> = std::thread::scope(|s| {
            (0..threads)
                .map(|_| s.spawn(|| fingerprint(&ugc_graph::generators::rmat(8, 6, 42, true))))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("generator thread panicked"))
                .collect()
        });
        for r in results {
            assert_eq!(r, reference, "rmat diverged under {threads} threads");
        }
    }
}

#[test]
fn road_grid_identical_across_runs_and_thread_counts() {
    let reference = fingerprint(&ugc_graph::generators::road_grid(24, 24, 0.08, 7, true));
    for _ in 0..3 {
        assert_eq!(
            fingerprint(&ugc_graph::generators::road_grid(24, 24, 0.08, 7, true)),
            reference
        );
    }
    for threads in [1usize, 2, 4, 8] {
        let results: Vec<_> = std::thread::scope(|s| {
            (0..threads)
                .map(|_| {
                    s.spawn(|| {
                        fingerprint(&ugc_graph::generators::road_grid(24, 24, 0.08, 7, true))
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("generator thread panicked"))
                .collect()
        });
        for r in results {
            assert_eq!(r, reference, "road_grid diverged under {threads} threads");
        }
    }
}

/// The byte-identical contract also pins the serialized form: two graphs
/// from the same seed must serialize to identical bytes.
#[test]
fn serialized_edge_lists_byte_identical() {
    let a = ugc_graph::generators::rmat(7, 4, 9, false);
    let b = ugc_graph::generators::rmat(7, 4, 9, false);
    let mut buf_a = Vec::new();
    let mut buf_b = Vec::new();
    ugc_graph::io::write_edge_list(&a, &mut buf_a).unwrap();
    ugc_graph::io::write_edge_list(&b, &mut buf_b).unwrap();
    assert_eq!(buf_a, buf_b);
}
