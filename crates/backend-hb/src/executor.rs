//! The HammerBlade operator executor: lowers operators to manycore kernel
//! phases.

use std::collections::HashSet;

use ugc_graph::Csr;
use ugc_graphir::ir::{EdgeSetIteratorData, Stmt};
use ugc_graphir::keys;
use ugc_graphir::types::{Direction, VertexSetRepr};
use ugc_runtime::bytecode::Instr;
use ugc_runtime::eval::{BufferedOutput, EdgeCtx, Evaluator, MemoryModel, NullOutput};
use ugc_runtime::interp::{ExecError, OperatorExecutor, ProgramState};
use ugc_runtime::properties::PropId;
use ugc_runtime::value::Value;
use ugc_runtime::vertexset::VertexSet;
use ugc_runtime::UdfId;
use ugc_schedule::schedule_of;
use ugc_sim_hb::{CoreTrace, HbAccess, HbSim};

use crate::schedule::{HbLoadBalance, HbSchedule};

/// Synthetic array ids (property ids are small; no collisions).
pub mod arrays {
    /// CSR offsets.
    pub const GRAPH_OFFSETS: u32 = 0x100;
    /// CSR targets.
    pub const GRAPH_TARGETS: u32 = 0x101;
    /// CSR weights.
    pub const GRAPH_WEIGHTS: u32 = 0x102;
    /// Sparse frontier array.
    pub const FRONTIER_IN: u32 = 0x110;
    /// Membership map for pull traversal.
    pub const FRONTIER_MAP: u32 = 0x113;
}

/// Records one core's accesses; loads of scratchpad-resident data cost a
/// scalar instruction instead of a memory request.
struct HbRecorder<'a> {
    trace: CoreTrace,
    /// `(props, id range)` currently resident in the scratchpad.
    scratch: Option<(&'a HashSet<PropId>, std::ops::Range<u32>)>,
}

impl MemoryModel for HbRecorder<'_> {
    fn load(&mut self, prop: PropId, idx: u32) {
        if let Some((props, range)) = &self.scratch {
            if props.contains(&prop) && range.contains(&idx) {
                self.trace.computes += 1; // scratchpad hit
                return;
            }
        }
        self.trace.accesses.push(HbAccess::Demand {
            prop: prop.0 as u32,
            idx,
            write: false,
        });
    }
    fn store(&mut self, prop: PropId, idx: u32) {
        self.trace.accesses.push(HbAccess::Demand {
            prop: prop.0 as u32,
            idx,
            write: true,
        });
    }
    fn atomic(&mut self, prop: PropId, idx: u32) {
        // Global atomics are lock-based on the manycore (§III-C4):
        // acquire + data + release.
        self.trace.accesses.push(HbAccess::Demand {
            prop: prop.0 as u32,
            idx,
            write: true,
        });
        self.trace.accesses.push(HbAccess::Demand {
            prop: prop.0 as u32,
            idx,
            write: true,
        });
        self.trace.computes += 4;
    }
    fn compute(&mut self, n: u32) {
        self.trace.computes += n as u64;
    }
}

impl HbRecorder<'_> {
    fn raw(&mut self, a: HbAccess) {
        self.trace.accesses.push(a);
    }
}

/// Executes GraphIR operators as manycore kernel phases.
#[derive(Debug)]
pub struct HbExecutor {
    /// The simulated machine.
    pub sim: HbSim,
}

impl HbExecutor {
    /// Creates an executor over a simulator.
    pub fn new(sim: HbSim) -> Self {
        HbExecutor { sim }
    }
}

struct HbPlan {
    udf: UdfId,
    takes_weight: bool,
    src_filter: Option<UdfId>,
    dst_filter: Option<UdfId>,
    requires_output: bool,
    dedup: bool,
    sched: HbSchedule,
    /// Properties indexed by the UDF's first parameter — the candidates
    /// for scratchpad prefetch under the blocked access method.
    owned_props: HashSet<PropId>,
}

fn plan(
    state: &ProgramState<'_>,
    stmt: &Stmt,
    data: &EdgeSetIteratorData,
) -> Result<HbPlan, ExecError> {
    let udf = state
        .udfs
        .id_of(&data.apply)
        .ok_or_else(|| ExecError::new(format!("unknown UDF `{}`", data.apply)))?;
    let lookup = |name: &Option<String>| -> Result<Option<UdfId>, ExecError> {
        match name {
            None => Ok(None),
            Some(n) => state
                .udfs
                .id_of(n)
                .map(Some)
                .ok_or_else(|| ExecError::new(format!("unknown filter `{n}`"))),
        }
    };
    let sched = schedule_of(stmt)
        .and_then(|r| r.as_simple().cloned())
        .and_then(|s| s.as_any().downcast_ref::<HbSchedule>().cloned())
        .unwrap_or_default();
    // Scan the UDF bytecode for loads indexed by parameter 0 (the owned
    // vertex) — those are safe to prefetch per work block.
    let mut owned_props = HashSet::new();
    for i in &state.udfs.get(udf).instrs {
        if let Instr::LoadProp { prop, idx, .. } = i {
            if *idx == 0 {
                owned_props.insert(*prop);
            }
        }
    }
    Ok(HbPlan {
        udf,
        takes_weight: state.udfs.get(udf).num_params == 3,
        src_filter: lookup(&data.src_filter)?,
        dst_filter: lookup(&data.dst_filter)?,
        requires_output: data.output.is_some(),
        dedup: stmt.meta.flag(keys::APPLY_DEDUPLICATION),
        sched,
        owned_props,
    })
}

fn evaluator<'a>(state: &'a ProgramState<'_>) -> Evaluator<'a> {
    Evaluator {
        udfs: &state.udfs,
        props: &state.props,
        globals: &state.globals,
        graph: state.graph,
        really_atomic: false,
    }
}

fn passes_filter(ev: &Evaluator<'_>, f: Option<UdfId>, v: u32, rec: &mut HbRecorder<'_>) -> bool {
    match f {
        None => true,
        Some(id) => ev
            .call(
                id,
                &[Value::Int(v as i64)],
                EdgeCtx::default(),
                &mut NullOutput,
                rec,
            )
            .is_none_or(|r| r.as_bool()),
    }
}

/// Partitions members into per-core work lists under a strategy.
fn partition(
    csr: &Csr,
    members: &[u32],
    lb: HbLoadBalance,
    block_size: u32,
    num_cores: usize,
) -> Vec<Vec<Vec<u32>>> {
    // result[core] = list of work blocks (each a member list).
    let mut cores: Vec<Vec<Vec<u32>>> = vec![Vec::new(); num_cores];
    match lb {
        HbLoadBalance::VertexBased => {
            let chunk = members.len().div_ceil(num_cores).max(1);
            for (i, block) in members.chunks(chunk).enumerate() {
                cores[i % num_cores].push(block.to_vec());
            }
        }
        HbLoadBalance::EdgeBased => {
            // Degree-balanced contiguous chunks.
            let total: usize = members.iter().map(|&v| csr.degree(v)).sum();
            let per_core = (total / num_cores).max(1);
            let mut cur = Vec::new();
            let mut acc = 0usize;
            let mut core = 0usize;
            for &v in members {
                cur.push(v);
                acc += csr.degree(v);
                if acc >= per_core {
                    cores[core % num_cores].push(std::mem::take(&mut cur));
                    core += 1;
                    acc = 0;
                }
            }
            if !cur.is_empty() {
                cores[core % num_cores].push(cur);
            }
        }
        HbLoadBalance::Aligned => {
            // Blocks of consecutive vertex ids aligned to `block_size`,
            // handed to cores round-robin (the paper's V/b work blocks).
            // Shrink b when the frontier is small so every core gets work
            // (b stays a multiple of the 8-element cache line).
            // Target ≥ ~8 blocks per core so LPT assignment can balance
            // (the paper's V/b >> cores regime), while staying a multiple
            // of the 8-element cache line.
            let ideal = (members.len() / (8 * num_cores)).max(8) as u32;
            let block_size = block_size.min(ideal.next_power_of_two()).max(8);
            let mut blocks: Vec<Vec<u32>> = Vec::new();
            let mut cur_block: Option<(u32, Vec<u32>)> = None;
            let mut sorted = members.to_vec();
            sorted.sort_unstable();
            for v in sorted {
                let b = v / block_size;
                match &mut cur_block {
                    Some((bid, list)) if *bid == b => list.push(v),
                    _ => {
                        if let Some((_, list)) = cur_block.take() {
                            blocks.push(list);
                        }
                        cur_block = Some((b, vec![v]));
                    }
                }
            }
            if let Some((_, list)) = cur_block {
                blocks.push(list);
            }
            // "Cores work on these blocks until all work blocks have been
            // processed": dynamic block grabbing, modeled as longest-
            // processing-time-first assignment to the least-loaded core.
            blocks.sort_by_cached_key(|b| {
                std::cmp::Reverse(b.iter().map(|&v| csr.degree(v)).sum::<usize>())
            });
            let mut load = vec![0usize; num_cores];
            for b in blocks {
                let w: usize = b.iter().map(|&v| csr.degree(v)).sum::<usize>() + b.len();
                let (c, _) = load
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &l)| l)
                    .expect("cores > 0");
                load[c] += w;
                cores[c].push(b);
            }
        }
    }
    cores
}

impl HbExecutor {
    #[allow(clippy::too_many_arguments)]
    fn traversal_phase(
        &mut self,
        state: &ProgramState<'_>,
        csr: &Csr,
        members: &[u32],
        plan: &HbPlan,
        pull_membership: Option<&VertexSet>,
        name: &str,
    ) -> BufferedOutput {
        let ev = evaluator(state);
        let num_cores = self.sim.cfg.num_cores();
        let assignment = partition(
            csr,
            members,
            plan.sched.load_balance(),
            plan.sched.block_size(),
            num_cores,
        );
        let mut merged = BufferedOutput::default();
        let blocked = plan.sched.blocked_access() && !plan.owned_props.is_empty();
        let mut traces = Vec::with_capacity(num_cores);
        for core_blocks in &assignment {
            let mut rec = HbRecorder {
                trace: CoreTrace::default(),
                scratch: None,
            };
            for block in core_blocks {
                if block.is_empty() {
                    continue;
                }
                if blocked {
                    // Prefetch the block's owned-property range into the
                    // scratchpad in one burst.
                    let lo = *block.iter().min().expect("non-empty");
                    let hi = *block.iter().max().expect("non-empty");
                    for p in &plan.owned_props {
                        rec.raw(HbAccess::Bulk {
                            prop: p.0 as u32,
                            start: lo,
                            count: hi - lo + 1,
                            write: false,
                        });
                    }
                    rec.scratch = Some((&plan.owned_props, lo..hi + 1));
                } else {
                    rec.scratch = None;
                }
                for &v in block {
                    // Work-list fetch and offsets lookup.
                    rec.raw(HbAccess::Demand {
                        prop: arrays::FRONTIER_IN,
                        idx: v,
                        write: false,
                    });
                    rec.raw(HbAccess::Demand {
                        prop: arrays::GRAPH_OFFSETS,
                        idx: v,
                        write: false,
                    });
                    rec.trace.computes += 6;
                    if !passes_filter(&ev, plan.src_filter, v, &mut rec) {
                        continue;
                    }
                    let deg = csr.degree(v);
                    let lo_e = csr.edge_offset(v);
                    if deg > 0 {
                        // Neighbor list scan is a pipelined sequential read.
                        rec.raw(HbAccess::Bulk {
                            prop: arrays::GRAPH_TARGETS,
                            start: lo_e as u32,
                            count: deg as u32,
                            write: false,
                        });
                        if plan.takes_weight {
                            rec.raw(HbAccess::Bulk {
                                prop: arrays::GRAPH_WEIGHTS,
                                start: lo_e as u32,
                                count: deg as u32,
                                write: false,
                            });
                        }
                    }
                    let weights = csr.neighbor_weights(v);
                    for (k, &other) in csr.neighbors(v).iter().enumerate() {
                        let (src, dst) = if pull_membership.is_some() {
                            (other, v)
                        } else {
                            (v, other)
                        };
                        if let Some(m) = pull_membership {
                            rec.raw(HbAccess::Demand {
                                prop: arrays::FRONTIER_MAP,
                                idx: src / 4,
                                write: false,
                            });
                            if !m.contains(src) {
                                continue;
                            }
                        }
                        if !passes_filter(&ev, plan.dst_filter, dst, &mut rec) {
                            continue;
                        }
                        let w = weights.map_or(1, |ws| ws[k]) as i64;
                        let mut args = vec![Value::Int(src as i64), Value::Int(dst as i64)];
                        if plan.takes_weight {
                            args.push(Value::Int(w));
                        }
                        ev.call(
                            plan.udf,
                            &args,
                            EdgeCtx { weight: w },
                            &mut merged,
                            &mut rec,
                        );
                    }
                }
            }
            rec.scratch = None;
            traces.push(rec.trace);
        }
        self.sim.run_phase(name, traces);
        merged
    }
}

impl OperatorExecutor for HbExecutor {
    fn edge_iterator(
        &mut self,
        state: &mut ProgramState<'_>,
        stmt: &Stmt,
        data: &EdgeSetIteratorData,
    ) -> Result<Option<VertexSet>, ExecError> {
        let plan = plan(state, stmt, data)?;
        let direction = stmt
            .meta
            .get_direction(keys::DIRECTION)
            .unwrap_or(Direction::Push);
        let input = state.input_set(&data.input)?;
        let fwd: &Csr = if data.transposed {
            state.graph.in_csr()
        } else {
            state.graph.out_csr()
        };
        let bwd: &Csr = if data.transposed {
            state.graph.out_csr()
        } else {
            state.graph.in_csr()
        };
        let out = match direction {
            Direction::Push => {
                // Arrival order: sparse frontiers are unsorted on the real
                // machine — exactly what alignment-based partitioning fixes.
                let members = input.members_in_order();
                self.traversal_phase(state, fwd, &members, &plan, None, "push")
            }
            Direction::Pull => {
                let repr = stmt
                    .meta
                    .get_repr(keys::PULL_INPUT_FRONTIER)
                    .unwrap_or(VertexSetRepr::Boolmap);
                let membership = if data.input.is_none() {
                    None
                } else {
                    Some(input.to_repr(repr))
                };
                let all: Vec<u32> = (0..state.graph.num_vertices() as u32).collect();
                self.traversal_phase(state, bwd, &all, &plan, membership.as_ref(), "pull")
            }
        };
        for (q, v, p) in out.priority_updates {
            state.queues[q].push(v, p);
        }
        if plan.requires_output {
            let mut set = VertexSet::from_members(state.graph.num_vertices(), out.enqueued);
            if plan.dedup {
                set.dedup();
            }
            let repr = stmt
                .meta
                .get_repr(keys::OUTPUT_REPRESENTATION)
                .unwrap_or(VertexSetRepr::Sparse);
            if set.repr() != repr {
                set = set.to_repr(repr);
            }
            Ok(Some(set))
        } else {
            Ok(None)
        }
    }

    fn vertex_iterator(
        &mut self,
        state: &mut ProgramState<'_>,
        stmt: &Stmt,
        set: Option<&str>,
        apply: &str,
    ) -> Result<(), ExecError> {
        let udf = state
            .udfs
            .id_of(apply)
            .ok_or_else(|| ExecError::new(format!("unknown UDF `{apply}`")))?;
        let members = match set {
            None => VertexSet::all(state.graph.num_vertices()).iter(),
            Some(n) => state
                .env
                .set(n)
                .ok_or_else(|| ExecError::new(format!("set `{n}` is not bound")))?
                .iter(),
        };
        let sched = schedule_of(stmt)
            .and_then(|r| r.as_simple().cloned())
            .and_then(|s| s.as_any().downcast_ref::<HbSchedule>().cloned())
            .unwrap_or_default();
        let ev = evaluator(state);
        let num_cores = self.sim.cfg.num_cores();
        let chunk = members.len().div_ceil(num_cores).max(1);
        let mut merged = BufferedOutput::default();
        let mut traces = Vec::with_capacity(num_cores);
        let _ = sched;
        for block in members.chunks(chunk) {
            let mut rec = HbRecorder {
                trace: CoreTrace::default(),
                scratch: None,
            };
            for &v in block {
                rec.raw(HbAccess::Demand {
                    prop: arrays::FRONTIER_IN,
                    idx: v,
                    write: false,
                });
                ev.call(
                    udf,
                    &[Value::Int(v as i64)],
                    EdgeCtx::default(),
                    &mut merged,
                    &mut rec,
                );
            }
            traces.push(rec.trace);
        }
        self.sim.run_phase("vertex_apply", traces);
        for (q, v, p) in merged.priority_updates {
            state.queues[q].push(v, p);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugc_graph::generators;

    fn flatten(cores: &[Vec<Vec<u32>>]) -> Vec<u32> {
        let mut all: Vec<u32> = cores
            .iter()
            .flat_map(|c| c.iter())
            .flat_map(|b| b.iter().copied())
            .collect();
        all.sort_unstable();
        all
    }

    #[test]
    fn every_strategy_partitions_all_members() {
        let g = generators::rmat(8, 5, 2, false);
        let members: Vec<u32> = (0..g.num_vertices() as u32).collect();
        for lb in [
            HbLoadBalance::VertexBased,
            HbLoadBalance::EdgeBased,
            HbLoadBalance::Aligned,
        ] {
            let cores = partition(g.out_csr(), &members, lb, 64, 128);
            assert_eq!(flatten(&cores), members, "{lb:?}");
        }
    }

    #[test]
    fn aligned_blocks_are_id_contiguous_ranges() {
        let g = generators::road_grid(16, 16, 0.0, 1, false);
        let members: Vec<u32> = (0..256).rev().collect(); // arrival order reversed
        let cores = partition(g.out_csr(), &members, HbLoadBalance::Aligned, 8, 4);
        for core in &cores {
            for block in core {
                let lo = *block.iter().min().unwrap();
                let hi = *block.iter().max().unwrap();
                // One block never spans two aligned ranges.
                assert_eq!(lo / 8, hi / 8, "block {block:?} spans ranges");
            }
        }
    }

    #[test]
    fn edge_based_balances_degree() {
        let g = generators::star(512);
        let members: Vec<u32> = (0..512).collect();
        let cores = partition(g.out_csr(), &members, HbLoadBalance::EdgeBased, 64, 8);
        let loads: Vec<usize> = cores
            .iter()
            .map(|c| {
                c.iter()
                    .flat_map(|b| b.iter())
                    .map(|&v| g.out_degree(v))
                    .sum()
            })
            .collect();
        let max = *loads.iter().max().unwrap();
        let nonzero = loads.iter().filter(|&&l| l > 0).count();
        assert!(nonzero >= 2, "{loads:?}");
        // The hub (511 edges) is one vertex — max load is the hub's chunk;
        // every other chunk is small.
        assert!(max >= 511, "{loads:?}");
    }

    #[test]
    fn partition_handles_empty_members() {
        let g = generators::path(4);
        for lb in [
            HbLoadBalance::VertexBased,
            HbLoadBalance::EdgeBased,
            HbLoadBalance::Aligned,
        ] {
            let cores = partition(g.out_csr(), &[], lb, 64, 8);
            assert!(flatten(&cores).is_empty(), "{lb:?}");
        }
    }
}
