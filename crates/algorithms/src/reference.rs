//! Sequential reference implementations used to validate every backend.

use std::collections::VecDeque;

use ugc_graph::{Graph, VertexId};

/// The DSL's "infinite distance" marker (`int` max).
pub const INF: i64 = i32::MAX as i64;

/// BFS levels from `src`; `-1` for unreachable vertices.
pub fn bfs_levels(g: &Graph, src: VertexId) -> Vec<i64> {
    let mut level = vec![-1i64; g.num_vertices()];
    let mut q = VecDeque::new();
    level[src as usize] = 0;
    q.push_back(src);
    while let Some(v) = q.pop_front() {
        for &u in g.out_neighbors(v) {
            if level[u as usize] == -1 {
                level[u as usize] = level[v as usize] + 1;
                q.push_back(u);
            }
        }
    }
    level
}

/// BFS parent pointers from `src` (the BFS algorithm's `parent` vector):
/// `parent[src] == src`, `-1` for unreachable vertices. Any valid BFS
/// tree passes the validators; this one is the first-discovered tree.
pub fn bfs_parents(g: &Graph, src: VertexId) -> Vec<i64> {
    let mut parent = vec![-1i64; g.num_vertices()];
    let mut q = VecDeque::new();
    parent[src as usize] = src as i64;
    q.push_back(src);
    while let Some(v) = q.pop_front() {
        for &u in g.out_neighbors(v) {
            if parent[u as usize] == -1 {
                parent[u as usize] = v as i64;
                q.push_back(u);
            }
        }
    }
    parent
}

/// Dijkstra distances from `src`; [`INF`] for unreachable vertices.
pub fn dijkstra(g: &Graph, src: VertexId) -> Vec<i64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut dist = vec![INF; g.num_vertices()];
    let mut heap = BinaryHeap::new();
    dist[src as usize] = 0;
    heap.push(Reverse((0i64, src)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        let weights = g.out_csr().neighbor_weights(v);
        for (k, &u) in g.out_neighbors(v).iter().enumerate() {
            let w = weights.map_or(1, |ws| ws[k]) as i64;
            let nd = d + w;
            if nd < dist[u as usize] {
                dist[u as usize] = nd;
                heap.push(Reverse((nd, u)));
            }
        }
    }
    dist
}

/// Connected-component labels: each vertex gets the minimum vertex id of
/// its (weakly) connected component — the fixpoint of min-label
/// propagation on symmetric graphs.
pub fn cc_labels(g: &Graph) -> Vec<i64> {
    let n = g.num_vertices();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for (s, d, _) in g.out_csr().iter_edges() {
        let (rs, rd) = (find(&mut parent, s as usize), find(&mut parent, d as usize));
        if rs != rd {
            // Union by smaller root id so the representative is the min.
            let (lo, hi) = if rs < rd { (rs, rd) } else { (rd, rs) };
            parent[hi] = lo;
        }
    }
    (0..n).map(|v| find(&mut parent, v) as i64).collect()
}

/// PageRank with `iters` damped iterations (the DSL source's exact
/// update schedule, including zero-out-degree handling).
pub fn pagerank(g: &Graph, iters: usize, damp: f64) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let beta = (1.0 - damp) / n as f64;
    let mut old_rank = vec![1.0 / n as f64; n];
    let mut new_rank = vec![0.0f64; n];
    for _ in 0..iters {
        let contrib: Vec<f64> = (0..n as VertexId)
            .map(|v| {
                let d = g.out_degree(v);
                if d == 0 {
                    0.0
                } else {
                    old_rank[v as usize] / d as f64
                }
            })
            .collect();
        for (s, d, _) in g.out_csr().iter_edges() {
            new_rank[d as usize] += contrib[s as usize];
        }
        for v in 0..n {
            old_rank[v] = beta + damp * new_rank[v];
            new_rank[v] = 0.0;
        }
    }
    old_rank
}

/// Brandes single-source dependency scores from `src`: for every vertex
/// `v`, `delta[v] = Σ_{w : v precedes w} σ_v/σ_w · (1 + delta[w])`,
/// the quantity the BC algorithm's `centrality` vector holds.
pub fn bc_dependencies(g: &Graph, src: VertexId) -> Vec<f64> {
    let n = g.num_vertices();
    let mut sigma = vec![0u64; n];
    let mut level = vec![-1i64; n];
    let mut order: Vec<VertexId> = Vec::new();
    sigma[src as usize] = 1;
    level[src as usize] = 0;
    let mut q = VecDeque::new();
    q.push_back(src);
    while let Some(v) = q.pop_front() {
        order.push(v);
        for &u in g.out_neighbors(v) {
            if level[u as usize] == -1 {
                level[u as usize] = level[v as usize] + 1;
                q.push_back(u);
            }
            if level[u as usize] == level[v as usize] + 1 {
                sigma[u as usize] += sigma[v as usize];
            }
        }
    }
    let mut delta = vec![0.0f64; n];
    for &w in order.iter().rev() {
        for &v in g.in_neighbors(w) {
            if level[v as usize] >= 0 && level[v as usize] + 1 == level[w as usize] {
                delta[v as usize] +=
                    sigma[v as usize] as f64 / sigma[w as usize] as f64 * (1.0 + delta[w as usize]);
            }
        }
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugc_graph::generators;

    #[test]
    fn bfs_levels_on_path() {
        let g = generators::path(4);
        assert_eq!(bfs_levels(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs_levels(&g, 2), vec![-1, -1, 0, 1]);
    }

    #[test]
    fn bfs_parents_on_path() {
        let g = generators::path(4);
        assert_eq!(bfs_parents(&g, 0), vec![0, 0, 1, 2]);
        assert_eq!(bfs_parents(&g, 2), vec![-1, -1, 2, 2]);
    }

    #[test]
    fn dijkstra_on_two_communities() {
        let g = generators::two_communities();
        let d = dijkstra(&g, 0);
        assert_eq!(d[0], 0);
        // 0->1 weight 1 (first pushed edge).
        assert_eq!(d[1], 1);
        assert!(d.iter().all(|&x| x < INF));
    }

    #[test]
    fn dijkstra_unreachable_is_inf() {
        let g = ugc_graph::Graph::from_edges(3, &[(0, 1)]);
        let d = dijkstra(&g, 0);
        assert_eq!(d[2], INF);
    }

    #[test]
    fn cc_labels_two_components() {
        let g = ugc_graph::Graph::from_edges(5, &[(0, 1), (1, 0), (2, 3), (3, 2)]);
        let l = cc_labels(&g);
        assert_eq!(l, vec![0, 0, 2, 2, 4]);
    }

    #[test]
    fn pagerank_sums_to_one() {
        let g = generators::rmat(8, 4, 1, false);
        let pr = pagerank(&g, 20, 0.85);
        let s: f64 = pr.iter().sum();
        // Dangling mass leaks, so <= 1, but should be near 1 on a
        // symmetrized graph with few isolated vertices.
        assert!(s > 0.5 && s <= 1.0 + 1e-9, "sum {s}");
    }

    #[test]
    fn bc_star_center_dominates() {
        let g = generators::star(6);
        let d = bc_dependencies(&g, 1);
        // From leaf 1, all shortest paths go through the hub 0.
        assert!(d[0] > d[2], "{d:?}");
    }

    #[test]
    fn bc_path_dependencies() {
        let g = generators::path(4);
        let d = bc_dependencies(&g, 0);
        // delta[2] = 1 (for 3), delta[1] = 1*(1+1) = 2, delta[0] = 3.
        assert_eq!(d, vec![3.0, 2.0, 1.0, 0.0]);
    }
}
