//! Structural verifier run between compiler passes.
//!
//! Catches dangling references early: undeclared properties, unknown UDFs,
//! unbound variables, duplicate scheduling labels. Backends call
//! [`verify`] before lowering so pass bugs surface at compile time rather
//! than as wrong answers.

use std::collections::HashSet;
use std::fmt;

use crate::ir::{ExprKind, Program, Stmt, StmtKind};
use crate::visit::{stmt_exprs, walk_expr, walk_stmts};

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Human-readable description of the failure.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for VerifyError {}

fn err(message: impl Into<String>) -> VerifyError {
    VerifyError {
        message: message.into(),
    }
}

/// Verifies structural invariants of a program.
///
/// # Errors
///
/// Returns every violation found (the list is never silently truncated).
pub fn verify(prog: &Program) -> Result<(), Vec<VerifyError>> {
    let mut errors = Vec::new();

    let props: HashSet<&str> = prog.properties.iter().map(|p| p.name.as_str()).collect();
    let funcs: HashSet<&str> = prog.functions.iter().map(|f| f.name.as_str()).collect();
    let queues: HashSet<&str> = prog.queues.iter().map(|q| q.name.as_str()).collect();

    // Queues must track declared properties.
    for q in &prog.queues {
        if !props.contains(q.tracked_property.as_str()) {
            errors.push(err(format!(
                "queue `{}` tracks undeclared property `{}`",
                q.name, q.tracked_property
            )));
        }
    }

    // Duplicate declarations.
    check_unique(
        prog.properties.iter().map(|p| p.name.as_str()),
        "property",
        &mut errors,
    );
    check_unique(
        prog.functions.iter().map(|f| f.name.as_str()),
        "function",
        &mut errors,
    );
    check_unique(
        prog.globals.iter().map(|g| g.name.as_str()),
        "global",
        &mut errors,
    );

    // Duplicate labels in main.
    let mut labels = HashSet::new();
    walk_stmts(&prog.main, &mut |s: &Stmt| {
        if let Some(l) = &s.label {
            if !labels.insert(l.clone()) {
                errors.push(err(format!("duplicate scheduling label `#{l}#`")));
            }
        }
    });

    // References inside every statement (main + function bodies).
    let mut check_body = |body: &[Stmt], ctx: &str| {
        walk_stmts(body, &mut |s: &Stmt| {
            match &s.kind {
                StmtKind::EdgeSetIterator(d) => {
                    if !funcs.contains(d.apply.as_str()) {
                        errors.push(err(format!(
                            "{ctx}: EdgeSetIterator applies unknown function `{}`",
                            d.apply
                        )));
                    }
                    for flt in [&d.src_filter, &d.dst_filter].into_iter().flatten() {
                        if !funcs.contains(flt.as_str()) {
                            errors.push(err(format!(
                                "{ctx}: EdgeSetIterator filter `{flt}` is not a declared function"
                            )));
                        }
                    }
                    if let Some(tp) = &d.tracked_prop {
                        if !props.contains(tp.as_str()) {
                            errors.push(err(format!(
                                "{ctx}: EdgeSetIterator tracks undeclared property `{tp}`"
                            )));
                        }
                    }
                }
                StmtKind::VertexSetIterator { apply, .. } if !funcs.contains(apply.as_str()) => {
                    errors.push(err(format!(
                        "{ctx}: VertexSetIterator applies unknown function `{apply}`"
                    )));
                }
                StmtKind::UpdatePriority { queue, .. } if !queues.contains(queue.as_str()) => {
                    errors.push(err(format!(
                        "{ctx}: UpdatePriority on undeclared queue `{queue}`"
                    )));
                }
                StmtKind::Assign { target, .. } | StmtKind::Reduce { target, .. } => {
                    if let crate::ir::LValue::Prop { prop, .. } = target {
                        if !props.contains(prop.as_str()) {
                            errors
                                .push(err(format!("{ctx}: write to undeclared property `{prop}`")));
                        }
                    }
                }
                _ => {}
            }
            stmt_exprs(s, &mut |e| {
                walk_expr(e, &mut |e| match &e.kind {
                    ExprKind::PropRead { prop, .. } if !props.contains(prop.as_str()) => {
                        errors.push(err(format!("{ctx}: read of undeclared property `{prop}`")));
                    }
                    ExprKind::CompareAndSwap { prop, .. } if !props.contains(prop.as_str()) => {
                        errors.push(err(format!(
                            "{ctx}: CompareAndSwap on undeclared property `{prop}`"
                        )));
                    }
                    ExprKind::Call { func, .. } if !funcs.contains(func.as_str()) => {
                        errors.push(err(format!("{ctx}: call to unknown function `{func}`")));
                    }
                    _ => {}
                });
            });
        });
    };

    check_body(&prog.main, "main");
    for f in &prog.functions {
        check_body(&f.body, &format!("function `{}`", f.name));
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn check_unique<'a>(
    names: impl Iterator<Item = &'a str>,
    what: &str,
    errors: &mut Vec<VerifyError>,
) {
    let mut seen = HashSet::new();
    for n in names {
        if !seen.insert(n) {
            errors.push(err(format!("duplicate {what} `{n}`")));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{EdgeSetIteratorData, Expr, Function, Program, Stmt, StmtKind};
    use crate::types::Type;

    fn valid_program() -> Program {
        let mut p = Program::new();
        p.add_property("parent", Type::Vertex, Expr::int(-1));
        p.add_function(Function::new("updateEdge", vec![], None));
        p.main.push(Stmt::new(StmtKind::EdgeSetIterator(
            EdgeSetIteratorData::all_edges("edges", "updateEdge"),
        )));
        p
    }

    #[test]
    fn valid_program_passes() {
        assert!(verify(&valid_program()).is_ok());
    }

    #[test]
    fn unknown_apply_function_fails() {
        let mut p = valid_program();
        if let StmtKind::EdgeSetIterator(d) = &mut p.main[0].kind {
            d.apply = "nope".into();
        }
        let errs = verify(&p).unwrap_err();
        assert!(errs[0].to_string().contains("unknown function `nope`"));
    }

    #[test]
    fn undeclared_property_read_fails() {
        let mut p = valid_program();
        p.function_mut("updateEdge")
            .unwrap()
            .body
            .push(Stmt::new(StmtKind::ExprStmt(Expr::prop(
                "ghost",
                Expr::int(0),
            ))));
        let errs = verify(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("ghost")));
    }

    #[test]
    fn duplicate_label_fails() {
        let mut p = valid_program();
        p.main[0].label = Some("s0".into());
        p.main.push(Stmt::labeled("s0", StmtKind::Break));
        let errs = verify(&p).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("duplicate scheduling label")));
    }

    #[test]
    fn queue_tracking_unknown_property_fails() {
        let mut p = valid_program();
        p.add_queue("pq", "missing", Expr::int(0));
        let errs = verify(&p).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("undeclared property `missing`")));
    }

    #[test]
    fn duplicate_function_fails() {
        let mut p = valid_program();
        p.add_function(Function::new("updateEdge", vec![], None));
        let errs = verify(&p).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("duplicate function")));
    }

    #[test]
    fn update_priority_requires_declared_queue() {
        let mut p = valid_program();
        p.function_mut("updateEdge")
            .unwrap()
            .body
            .push(Stmt::new(StmtKind::UpdatePriority {
                queue: "pq".into(),
                vertex: Expr::int(0),
                op: crate::types::ReduceOp::Min,
                value: Expr::int(1),
            }));
        let errs = verify(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("undeclared queue")));
    }
}
