//! Hand-tuned Swarm BFS and SSSP (Fig. 12's prior-work comparators).
//!
//! Prior work [42, 43] hand-wrote these algorithms for Swarm, tuned for
//! road graphs: each visited vertex *eagerly* spawns one tiny task per
//! neighbor (maximum fine-grained parallelism, minimum per-task state).
//! On low-degree road graphs this is near-optimal; on social graphs the
//! eager per-neighbor spawning drowns in task overhead, which is where the
//! paper's Swarm GraphVM wins "by being selective in spawning tasks".

use ugc_graph::Graph;
use ugc_sim_swarm::{SwarmConfig, SwarmSim, TaskSpec};

const MEM_CYCLES: u64 = 4;
const TASK_BASE: u64 = 8;

fn parent_line(v: u32) -> u64 {
    (1u64 << 28) + v as u64
}

/// Result of a hand-tuned run.
#[derive(Debug, Clone)]
pub struct HandRun {
    /// Simulated cycles.
    pub cycles: u64,
    /// Tasks committed.
    pub commits: u64,
    /// Result array (parents or distances).
    pub result: Vec<i64>,
}

/// Hand-tuned BFS: per-neighbor visit tasks with spatial hints.
pub fn hand_tuned_bfs(graph: &Graph, start: u32, cfg: SwarmConfig) -> HandRun {
    let n = graph.num_vertices();
    let mut parent = vec![-1i64; n];
    parent[start as usize] = start as i64;

    let mut tasks: Vec<TaskSpec> = Vec::new();
    let mut roots = Vec::new();
    // Functional BFS, eager per-neighbor tasks.
    // queue entries: (vertex claimed for, parent, round, pre-created id)
    // Queue entries: (vertex, round, task id, winner?). Eager spawning
    // creates a task per in-edge; only the first one per vertex "wins" (the
    // others execute as cheap stale checks, as on the real hardware).
    let mut queue = std::collections::VecDeque::new();
    let root_id = 0usize;
    tasks.push(TaskSpec {
        ts: 0,
        ..Default::default()
    });
    roots.push(root_id);
    queue.push_back((start, 0u64, root_id, true));
    while let Some((v, round, id, winner)) = queue.pop_front() {
        let mut children = Vec::new();
        let mut duration = TASK_BASE + 2 * MEM_CYCLES;
        if winner {
            duration += graph.out_degree(v) as u64; // spawn loop
            for &u in graph.out_neighbors(v) {
                let child_wins = parent[u as usize] == -1;
                if child_wins {
                    parent[u as usize] = v as i64;
                }
                let cid = tasks.len();
                tasks.push(TaskSpec {
                    ts: round + 1,
                    ..Default::default()
                });
                children.push(cid);
                queue.push_back((u, round + 1, cid, child_wins));
            }
        }
        tasks[id].ts = round;
        tasks[id].duration = duration;
        tasks[id].reads = vec![parent_line(v)];
        tasks[id].writes = if winner { vec![parent_line(v)] } else { vec![] };
        tasks[id].hint = Some(parent_line(v));
        tasks[id].children = children;
    }
    let mut sim = SwarmSim::new(cfg);
    sim.simulate(&tasks, &roots, false);
    HandRun {
        cycles: sim.time_cycles(),
        commits: sim.stats.commits,
        result: parent,
    }
}

/// Hand-tuned ∆-stepping-free SSSP: one task per relaxation, timestamped by
/// tentative distance, spawned *eagerly for every neighbor* of a settled
/// vertex (the road-graph tuning of prior work).
pub fn hand_tuned_sssp(graph: &Graph, start: u32, cfg: SwarmConfig) -> HandRun {
    let n = graph.num_vertices();
    let mut dist = vec![i32::MAX as i64; n];
    dist[start as usize] = 0;

    let mut tasks: Vec<TaskSpec> = Vec::new();
    let mut roots = Vec::new();
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(i64, usize, u32)>> =
        std::collections::BinaryHeap::new();
    let id0 = 0usize;
    tasks.push(TaskSpec {
        ts: 0,
        ..Default::default()
    });
    roots.push(id0);
    heap.push(std::cmp::Reverse((0, id0, start)));
    while let Some(std::cmp::Reverse((d, id, v))) = heap.pop() {
        let fresh = dist[v as usize] == d;
        let mut duration = TASK_BASE + MEM_CYCLES;
        let mut children = Vec::new();
        if fresh {
            let weights = graph.out_csr().neighbor_weights(v);
            duration += graph.out_degree(v) as u64 * 2;
            for (k, &u) in graph.out_neighbors(v).iter().enumerate() {
                let w = weights.map_or(1, |ws| ws[k]) as i64;
                let nd = d + w;
                // Eager: spawn a relax task for EVERY neighbor, improving
                // or not — the prior-work tuning that suits road graphs.
                let cid = tasks.len();
                tasks.push(TaskSpec {
                    ts: nd.max(0) as u64,
                    ..Default::default()
                });
                children.push(cid);
                if nd < dist[u as usize] {
                    dist[u as usize] = nd;
                }
                heap.push(std::cmp::Reverse((nd, cid, u)));
            }
        }
        tasks[id].ts = d.max(0) as u64;
        tasks[id].duration = duration;
        tasks[id].reads = vec![parent_line(v)];
        tasks[id].writes = if fresh { vec![parent_line(v)] } else { vec![] };
        tasks[id].hint = Some(parent_line(v));
        tasks[id].children = children;
    }
    let mut sim = SwarmSim::new(cfg);
    sim.simulate(&tasks, &roots, false);
    HandRun {
        cycles: sim.time_cycles(),
        commits: sim.stats.commits,
        result: dist,
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use ugc_algorithms::reference;

    #[test]
    fn hand_bfs_reaches_component() {
        let g = ugc_graph::generators::road_grid(12, 12, 0.05, 1, true);
        let run = hand_tuned_bfs(&g, 0, SwarmConfig::default());
        let levels = reference::bfs_levels(&g, 0);
        for v in 0..levels.len() {
            assert_eq!(run.result[v] != -1, levels[v] != -1, "vertex {v}");
        }
        assert!(run.cycles > 0);
    }

    #[test]
    fn hand_sssp_matches_dijkstra() {
        let g = ugc_graph::generators::road_grid(10, 10, 0.05, 2, true);
        let run = hand_tuned_sssp(&g, 0, SwarmConfig::default());
        assert_eq!(run.result, reference::dijkstra(&g, 0));
    }

    #[test]
    fn eager_spawning_explodes_on_social_graphs() {
        // Task count per committed useful relaxation is much higher on a
        // power-law graph than on a road graph.
        let road = ugc_graph::generators::road_grid(16, 16, 0.05, 3, true);
        let social = ugc_graph::generators::rmat(8, 8, 3, true);
        let r = hand_tuned_sssp(&road, 0, SwarmConfig::default());
        let s = hand_tuned_sssp(&social, 0, SwarmConfig::default());
        let road_tasks_per_vertex = r.commits as f64 / road.num_vertices() as f64;
        let social_tasks_per_vertex = s.commits as f64 / social.num_vertices() as f64;
        assert!(
            social_tasks_per_vertex > 2.0 * road_tasks_per_vertex,
            "social {social_tasks_per_vertex:.1} vs road {road_tasks_per_vertex:.1}"
        );
    }
}
