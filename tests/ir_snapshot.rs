//! GraphIR snapshot: the pretty-printed IR of the BFS program after the
//! hardware-independent pipeline contains exactly the structures the
//! paper's Fig. 4 shows, and printing is stable.

use ugc_algorithms::Algorithm;
use ugc_graphir::printer::print_program;
use ugc_integration::compile;

#[test]
fn bfs_ir_matches_fig4_structure() {
    let prog = compile(Algorithm::Bfs, None);
    let text = print_program(&prog);

    // Fig. 4's load-bearing pieces, in one pass over the printed IR:
    for needle in [
        // the tracked-update UDF with an atomic claim + conditional enqueue
        "CompareAndSwap<is_atomic=true>(parent[dst], -1, src)",
        "EnqueueVertex",
        // the while loop over the frontier
        "WhileLoopStmt",
        "VertexSetSize(frontier)",
        // the flagship operator with its optimization metadata
        "EdgeSetIterator<",
        "direction=PUSH",
        "requires_output=true",
        "can_reuse_frontier=true",
        // the scheduling label survives lowering
        "#s1#",
    ] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }
}

#[test]
fn printing_is_deterministic_across_compilations() {
    for algo in Algorithm::ALL {
        let a = print_program(&compile(algo, None));
        let b = print_program(&compile(algo, None));
        assert_eq!(a, b, "{}", algo.name());
    }
}

#[test]
fn sssp_ir_carries_queue_binding() {
    let prog = compile(Algorithm::Sssp, None);
    let text = print_program(&prog);
    assert!(text.contains("PrioQueue"), "{text}");
    assert!(text.contains("queue_updated=\"pq\""), "{text}");
    assert!(text.contains("UpdatePriorityMin<is_atomic=true>"), "{text}");
    assert!(text.contains("PrioQueueFinished(pq)"), "{text}");
}

#[test]
fn bc_ir_has_transposed_iterator_and_lists() {
    let prog = compile(Algorithm::Bc, None);
    let text = print_program(&prog);
    assert!(text.contains("transposed"), "{text}");
    assert!(text.contains("ListAppend"), "{text}");
    assert!(text.contains("ListPopBack"), "{text}");
}

#[test]
fn every_udf_atomicity_is_explicit_after_passes() {
    // After the atomics pass, every property reduction in an edge UDF
    // carries an explicit is_atomic decision (true or false, never
    // unspecified).
    let prog = compile(Algorithm::PageRank, None);
    let f = prog
        .functions
        .iter()
        .find(|f| f.name.starts_with("updateEdge"))
        .expect("updateEdge exists");
    let mut found = 0;
    ugc_graphir::visit::walk_stmts(&f.body, &mut |s| {
        if let ugc_graphir::ir::StmtKind::Reduce { .. } = s.kind {
            assert!(
                s.meta.get_bool(ugc_graphir::keys::IS_ATOMIC).is_some(),
                "reduction without atomicity decision"
            );
            found += 1;
        }
    });
    assert!(found > 0);
}
