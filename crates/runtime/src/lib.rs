#![warn(missing_docs)]

//! Shared runtime substrate for every UGC GraphVM.
//!
//! The paper's GraphVMs each ship a runtime library (Table III). In this
//! reproduction large parts of those libraries are shared — exactly the
//! pieces whose semantics must agree across backends for a program to
//! produce the same answer everywhere:
//!
//! * [`value::Value`] — the scalar value domain of GraphIR programs,
//! * [`properties::PropertyStorage`] — per-vertex property vectors with
//!   atomic operations (the `VertexData` arrays of Table II),
//! * [`vertexset::VertexSet`] — frontier representations (SPARSE / BITMAP /
//!   BOOLMAP) with conversions,
//! * [`buckets::BucketQueue`] — the ∆-stepping bucketed priority queue,
//! * [`frontier_list::FrontierList`] — the list-of-frontiers used by BC,
//! * [`bytecode`] / [`eval`] — compilation of user-defined functions to a
//!   register bytecode and its evaluator with a pluggable
//!   [`eval::MemoryModel`], so architecture simulators observe every
//!   load/store/atomic with its address while the real CPU backend pays no
//!   observation cost,
//! * [`parallel`] / [`pool`] — work-distribution primitives for the CPU
//!   backend, dispatching to a persistent std-only work-stealing worker
//!   pool (`UGC_THREADS=1` forces deterministic serial execution),
//! * [`host`] — host-side variable environment shared by backend
//!   interpreters.

pub mod buckets;
pub mod bytecode;
pub mod eval;
pub mod frontier_list;
pub mod host;
pub mod interp;
pub mod parallel;
pub mod pool;
pub mod properties;
pub mod value;
pub mod vertexset;

pub use buckets::BucketQueue;
pub use bytecode::{compile_udfs, UdfId, UdfProgram, UdfSet};
pub use eval::{EdgeCtx, MemoryModel, NullMemory, UdfOutput};
pub use frontier_list::FrontierList;
pub use interp::{contain, ExecError};
pub use properties::{GlobalTable, PropId, PropertyStorage};
pub use ugc_resilience::ErrorClass;
pub use value::Value;
pub use vertexset::VertexSet;
