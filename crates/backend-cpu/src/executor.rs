//! The CPU operator executor: real multithreaded traversal.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use ugc_graph::Csr;
use ugc_graphir::ir::{EdgeSetIteratorData, Stmt};
use ugc_graphir::keys;
use ugc_graphir::types::{Direction, VertexSetRepr};
use ugc_runtime::eval::{BufferedOutput, EdgeCtx, Evaluator, NullMemory, NullOutput};
use ugc_runtime::interp::{ExecError, OperatorExecutor, ProgramState};
use ugc_runtime::parallel::{default_threads, parallel_for_with_local};
use ugc_runtime::pool::parallel_for_chunks_with_local;
use ugc_runtime::value::Value;
use ugc_runtime::vertexset::VertexSet;
use ugc_runtime::UdfId;
use ugc_schedule::{schedule_of, SchedulePoint};

use ugc_telemetry::{Counter, Span};

use crate::kernels::{self, EdgeKernel, Io, KernelCache, KernelKey};
use crate::schedule::CpuSchedule;

/// Telemetry handles for the CPU executor, registered once per process.
struct CpuCounters {
    edge_push: Span,
    edge_pull: Span,
    vertex_apply: Span,
    other_ns: Counter,
    elapsed_ns: Counter,
    runs: Counter,
    direction_switches: Counter,
    kernel_specialized: Counter,
    kernel_fallback: Counter,
}

fn counters() -> &'static CpuCounters {
    static COUNTERS: OnceLock<CpuCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| CpuCounters {
        edge_push: Span::new("cpu.edge_push"),
        edge_pull: Span::new("cpu.edge_pull"),
        vertex_apply: Span::new("cpu.vertex_apply"),
        other_ns: Counter::new("cpu.other.ns"),
        elapsed_ns: Counter::new("cpu.elapsed.ns"),
        runs: Counter::new("cpu.runs"),
        direction_switches: Counter::new("cpu.direction_switches"),
        kernel_specialized: Counter::new("cpu.kernel.specialized"),
        kernel_fallback: Counter::new("cpu.kernel.fallback"),
    })
}

/// Last edge-traversal direction (0 = none yet, 1 = push, 2 = pull).
/// Process-global: executors are cloned per run, and a schedule-driven
/// push/pull flip is interesting wherever it happens.
static LAST_DIRECTION: AtomicUsize = AtomicUsize::new(0);

fn note_direction(direction: Direction) {
    let code = match direction {
        Direction::Push => 1,
        Direction::Pull => 2,
    };
    let prev = LAST_DIRECTION.swap(code, Ordering::Relaxed);
    if prev != 0 && prev != code {
        counters().direction_switches.incr();
    }
}

/// Per-run wall-time attribution in nanoseconds. Components sum exactly to
/// [`CpuAttribution::total`], which is the elapsed time of `main`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpuAttribution {
    /// Time inside push-direction edge traversals.
    pub edge_push: u64,
    /// Time inside pull-direction edge traversals.
    pub edge_pull: u64,
    /// Time inside vertex-apply operators.
    pub vertex_apply: u64,
    /// Interpreter overhead: everything outside the traversal operators.
    pub other: u64,
}

impl CpuAttribution {
    /// Sum of all components.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.edge_push + self.edge_pull + self.vertex_apply + self.other
    }

    /// Named components, in display order.
    #[must_use]
    pub fn components(&self) -> [(&'static str, u64); 4] {
        [
            ("edge_push", self.edge_push),
            ("edge_pull", self.edge_pull),
            ("vertex_apply", self.vertex_apply),
            ("other", self.other),
        ]
    }
}

/// Phase nanoseconds accumulated by one executor over one run.
#[derive(Debug, Clone, Copy, Default)]
struct PhaseNs {
    push: u64,
    pull: u64,
    apply: u64,
}

/// Executes GraphIR iteration operators on host threads.
pub struct CpuExecutor {
    /// Worker thread count (defaults to available parallelism).
    pub num_threads: usize,
    /// Whether edge traversals may use compiled monomorphized kernels
    /// (default: on, unless `UGC_CPU_KERNELS=0`). Off forces the
    /// interpreter everywhere — the differential oracle.
    pub use_kernels: bool,
    /// Per-run kernel table. [`UdfId`]s are only meaningful within one
    /// compiled program, so `Clone` (the per-`execute` entry point) resets
    /// this to empty rather than sharing it.
    kernels: std::sync::Arc<KernelCache>,
    phase_ns: PhaseNs,
}

impl Clone for CpuExecutor {
    fn clone(&self) -> Self {
        CpuExecutor {
            num_threads: self.num_threads,
            use_kernels: self.use_kernels,
            kernels: std::sync::Arc::new(KernelCache::default()),
            phase_ns: self.phase_ns,
        }
    }
}

impl std::fmt::Debug for CpuExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CpuExecutor")
            .field("num_threads", &self.num_threads)
            .field("use_kernels", &self.use_kernels)
            .finish()
    }
}

impl Default for CpuExecutor {
    fn default() -> Self {
        CpuExecutor::with_threads(default_threads())
    }
}

/// Everything a traversal needs, resolved once per operator.
struct OpPlan {
    udf: UdfId,
    takes_weight: bool,
    src_filter: Option<UdfId>,
    dst_filter: Option<UdfId>,
    requires_output: bool,
    dedup: bool,
    out_repr: VertexSetRepr,
    serial_threshold: usize,
    edge_aware: bool,
    cache_blocking: bool,
}

impl CpuExecutor {
    /// An executor with `num_threads` workers.
    #[must_use]
    pub fn with_threads(num_threads: usize) -> Self {
        CpuExecutor {
            num_threads,
            use_kernels: kernels::kernels_enabled_by_env(),
            kernels: std::sync::Arc::new(KernelCache::default()),
            phase_ns: PhaseNs::default(),
        }
    }

    /// Resolves the compiled kernel for one edge traversal (or `None` for
    /// the interpreter fallback), counting the selection either way.
    fn resolve_kernel(
        &self,
        state: &ProgramState<'_>,
        stmt: &Stmt,
        plan: &OpPlan,
    ) -> Option<std::sync::Arc<dyn EdgeKernel>> {
        let kernel = if self.use_kernels {
            let key = KernelKey {
                point: SchedulePoint::of_stmt(stmt),
                udf: plan.udf,
                src_filter: plan.src_filter,
                dst_filter: plan.dst_filter,
                weighted: plan.takes_weight,
            };
            self.kernels.resolve(key, || {
                kernels::recognize(
                    &state.udfs,
                    &state.props,
                    plan.udf,
                    plan.src_filter,
                    plan.dst_filter,
                )
            })
        } else {
            None
        };
        match kernel {
            Some(_) => counters().kernel_specialized.incr(),
            None => counters().kernel_fallback.incr(),
        }
        kernel
    }

    /// Closes out one run: attributes `elapsed_ns` of wall time across the
    /// phases timed during the run, charges the remainder to `other`,
    /// mirrors the totals into the global registry, and resets the per-run
    /// accumulators. Returns all zeros when telemetry is disabled.
    pub fn finish_run(&mut self, elapsed_ns: u64) -> CpuAttribution {
        let phases = std::mem::take(&mut self.phase_ns);
        if !ugc_telemetry::enabled() {
            return CpuAttribution::default();
        }
        let tracked = phases.push + phases.pull + phases.apply;
        let attr = CpuAttribution {
            edge_push: phases.push,
            edge_pull: phases.pull,
            vertex_apply: phases.apply,
            other: elapsed_ns.max(tracked) - tracked,
        };
        let c = counters();
        c.other_ns.add(attr.other);
        c.elapsed_ns.add(attr.total());
        c.runs.incr();
        attr
    }

    fn plan(
        state: &ProgramState<'_>,
        stmt: &Stmt,
        data: &EdgeSetIteratorData,
    ) -> Result<OpPlan, ExecError> {
        let udf = state
            .udfs
            .id_of(&data.apply)
            .ok_or_else(|| ExecError::new(format!("unknown UDF `{}`", data.apply)))?;
        let lookup = |name: &Option<String>| -> Result<Option<UdfId>, ExecError> {
            match name {
                None => Ok(None),
                Some(n) => state
                    .udfs
                    .id_of(n)
                    .map(Some)
                    .ok_or_else(|| ExecError::new(format!("unknown filter `{n}`"))),
            }
        };
        let sched = schedule_of(stmt);
        let cpu_sched = sched
            .as_ref()
            .and_then(|r| r.as_simple().cloned())
            .and_then(|s| s.as_any().downcast_ref::<CpuSchedule>().cloned());
        let parallelization = stmt
            .meta
            .get_str("parallelization")
            .unwrap_or("VERTEX_BASED")
            .to_string();
        Ok(OpPlan {
            udf,
            takes_weight: state.udfs.get(udf).num_params == 3,
            src_filter: lookup(&data.src_filter)?,
            dst_filter: lookup(&data.dst_filter)?,
            requires_output: data.output.is_some(),
            dedup: stmt.meta.flag(keys::APPLY_DEDUPLICATION),
            out_repr: stmt
                .meta
                .get_repr(keys::OUTPUT_REPRESENTATION)
                .unwrap_or(VertexSetRepr::Sparse),
            serial_threshold: cpu_sched.as_ref().map_or(512, |s| s.serial_threshold()),
            edge_aware: parallelization != "VERTEX_BASED",
            cache_blocking: cpu_sched.as_ref().is_some_and(|s| s.cache_blocking()),
        })
    }

    /// Splits `members` into chunks of roughly `grain` out-edges each.
    fn degree_chunks(csr: &Csr, members: &[u32], grain: usize) -> Vec<std::ops::Range<usize>> {
        let mut chunks = Vec::new();
        let mut start = 0usize;
        let mut acc = 0usize;
        for (i, &v) in members.iter().enumerate() {
            acc += csr.degree(v);
            if acc >= grain {
                chunks.push(start..i + 1);
                start = i + 1;
                acc = 0;
            }
        }
        if start < members.len() {
            chunks.push(start..members.len());
        }
        chunks
    }

    fn finish(
        state: &mut ProgramState<'_>,
        plan: &OpPlan,
        locals: Vec<BufferedOutput>,
    ) -> Option<VertexSet> {
        let mut enqueued = Vec::new();
        for l in locals {
            for (q, v, p) in l.priority_updates {
                state.queues[q].push(v, p);
            }
            enqueued.extend(l.enqueued);
        }
        if plan.requires_output {
            let mut out = VertexSet::from_members(state.graph.num_vertices(), enqueued);
            if plan.dedup {
                out.dedup();
            }
            if out.repr() != plan.out_repr {
                out = out.to_repr(plan.out_repr);
            }
            Some(out)
        } else {
            None
        }
    }
}

fn passes(ev: &Evaluator<'_>, f: Option<UdfId>, v: u32) -> bool {
    match f {
        None => true,
        Some(id) => ev
            .call(
                id,
                &[Value::Int(v as i64)],
                EdgeCtx::default(),
                &mut NullOutput,
                &mut NullMemory,
            )
            .is_none_or(|r| r.as_bool()),
    }
}

#[allow(clippy::too_many_arguments)]
fn push_range(
    ev: &Evaluator<'_>,
    csr: &Csr,
    members: &[u32],
    range: std::ops::Range<usize>,
    plan: &OpPlan,
    out: &mut BufferedOutput,
) {
    for &src in &members[range] {
        if !passes(ev, plan.src_filter, src) {
            continue;
        }
        let weights = csr.neighbor_weights(src);
        for (k, &dst) in csr.neighbors(src).iter().enumerate() {
            if !passes(ev, plan.dst_filter, dst) {
                continue;
            }
            let w = weights.map_or(1, |ws| ws[k]) as i64;
            let mut args = vec![Value::Int(src as i64), Value::Int(dst as i64)];
            if plan.takes_weight {
                args.push(Value::Int(w));
            }
            ev.call(plan.udf, &args, EdgeCtx { weight: w }, out, &mut NullMemory);
        }
    }
}

fn pull_range(
    ev: &Evaluator<'_>,
    in_csr: &Csr,
    membership: Option<&VertexSet>,
    range: std::ops::Range<usize>,
    plan: &OpPlan,
    out: &mut BufferedOutput,
) {
    for dst in range {
        let dst = dst as u32;
        if !passes(ev, plan.dst_filter, dst) {
            continue;
        }
        let weights = in_csr.neighbor_weights(dst);
        for (k, &src) in in_csr.neighbors(dst).iter().enumerate() {
            if let Some(m) = membership {
                if !m.contains(src) {
                    continue;
                }
            }
            if !passes(ev, plan.src_filter, src) {
                continue;
            }
            let w = weights.map_or(1, |ws| ws[k]) as i64;
            let mut args = vec![Value::Int(src as i64), Value::Int(dst as i64)];
            if plan.takes_weight {
                args.push(Value::Int(w));
            }
            ev.call(plan.udf, &args, EdgeCtx { weight: w }, out, &mut NullMemory);
            // Direction-optimizing early exit: once the destination no
            // longer passes its filter (e.g. BFS parent now set), stop
            // scanning its in-edges.
            if plan.dst_filter.is_some() && !passes(ev, plan.dst_filter, dst) {
                break;
            }
        }
    }
}

impl OperatorExecutor for CpuExecutor {
    fn edge_iterator(
        &mut self,
        state: &mut ProgramState<'_>,
        stmt: &Stmt,
        data: &EdgeSetIteratorData,
    ) -> Result<Option<VertexSet>, ExecError> {
        let plan = Self::plan(state, stmt, data)?;
        let direction = stmt
            .meta
            .get_direction(keys::DIRECTION)
            .unwrap_or(Direction::Push);
        let t0 = ugc_telemetry::enabled().then(Instant::now);
        note_direction(direction);
        let input = state.input_set(&data.input)?;

        // Resolve traversal CSRs honoring the `transposed` flag.
        let fwd: &Csr = if data.transposed {
            state.graph.in_csr()
        } else {
            state.graph.out_csr()
        };
        let bwd: &Csr = if data.transposed {
            state.graph.out_csr()
        } else {
            state.graph.in_csr()
        };

        let ev = Evaluator::new(&state.udfs, &state.props, &state.globals, state.graph);
        let kernel = self.resolve_kernel(state, stmt, &plan);
        let locals: Vec<BufferedOutput> = match direction {
            Direction::Push => {
                let members = input.iter();
                let io = Io {
                    props: &state.props,
                    csr: fwd,
                };
                // One range-level dispatch: the specialized kernel body or
                // the interpreter, chosen once per operator, never per edge.
                let run = |range: std::ops::Range<usize>, out: &mut BufferedOutput| match &kernel {
                    Some(k) => k.run_push(&io, &members, range, out),
                    None => push_range(&ev, fwd, &members, range, &plan, out),
                };
                if plan.cache_blocking && data.input.is_none() {
                    // EdgeBlocking: iterate destination blocks for locality.
                    match &kernel {
                        Some(k) => {
                            cache_blocked_push_kernel(k.as_ref(), &io, &members, self.num_threads)
                        }
                        None => cache_blocked_push(&ev, fwd, &members, &plan, self.num_threads),
                    }
                } else if members.len() < plan.serial_threshold {
                    let mut out = BufferedOutput::default();
                    run(0..members.len(), &mut out);
                    vec![out]
                } else if plan.edge_aware {
                    // Degree-balanced chunks go straight into per-worker
                    // queues; idle workers steal whole chunks.
                    let chunks = Self::degree_chunks(fwd, &members, 2048);
                    parallel_for_chunks_with_local(
                        self.num_threads,
                        chunks,
                        |_tid, crange, local: &mut BufferedOutput| run(crange, local),
                    )
                } else {
                    parallel_for_with_local(
                        self.num_threads,
                        members.len(),
                        64,
                        |_tid, range, local: &mut BufferedOutput| run(range, local),
                    )
                }
            }
            Direction::Pull => {
                let n = state.graph.num_vertices();
                let membership = if data.input.is_none() {
                    None
                } else {
                    let repr = stmt
                        .meta
                        .get_repr(keys::PULL_INPUT_FRONTIER)
                        .unwrap_or(VertexSetRepr::Boolmap);
                    Some(input.to_repr(repr))
                };
                let membership = membership.as_ref();
                let io = Io {
                    props: &state.props,
                    csr: bwd,
                };
                let run = |range: std::ops::Range<usize>, out: &mut BufferedOutput| match &kernel {
                    Some(k) => k.run_pull(&io, membership, range, out),
                    None => pull_range(&ev, bwd, membership, range, &plan, out),
                };
                if n < plan.serial_threshold {
                    let mut out = BufferedOutput::default();
                    run(0..n, &mut out);
                    vec![out]
                } else {
                    parallel_for_with_local(
                        self.num_threads,
                        n,
                        128,
                        |_tid, range, local: &mut BufferedOutput| run(range, local),
                    )
                }
            }
        };
        let out = CpuExecutor::finish(state, &plan, locals);
        if let Some(t0) = t0 {
            let ns = t0.elapsed().as_nanos() as u64;
            let c = counters();
            match direction {
                Direction::Push => {
                    self.phase_ns.push += ns;
                    c.edge_push.record_ns(ns);
                }
                Direction::Pull => {
                    self.phase_ns.pull += ns;
                    c.edge_pull.record_ns(ns);
                }
            }
        }
        Ok(out)
    }

    fn vertex_iterator(
        &mut self,
        state: &mut ProgramState<'_>,
        _stmt: &Stmt,
        set: Option<&str>,
        apply: &str,
    ) -> Result<(), ExecError> {
        let t0 = ugc_telemetry::enabled().then(Instant::now);
        let udf = state
            .udfs
            .id_of(apply)
            .ok_or_else(|| ExecError::new(format!("unknown UDF `{apply}`")))?;
        let members = match set {
            None => VertexSet::all(state.graph.num_vertices()).iter(),
            Some(n) => state
                .env
                .set(n)
                .ok_or_else(|| ExecError::new(format!("set `{n}` is not bound")))?
                .iter(),
        };
        let ev = Evaluator::new(&state.udfs, &state.props, &state.globals, state.graph);
        let locals: Vec<BufferedOutput> = if members.len() < 512 {
            let mut out = BufferedOutput::default();
            for &v in &members {
                ev.call(
                    udf,
                    &[Value::Int(v as i64)],
                    EdgeCtx::default(),
                    &mut out,
                    &mut NullMemory,
                );
            }
            vec![out]
        } else {
            parallel_for_with_local(
                self.num_threads,
                members.len(),
                256,
                |_tid, range, local: &mut BufferedOutput| {
                    for &v in &members[range] {
                        ev.call(
                            udf,
                            &[Value::Int(v as i64)],
                            EdgeCtx::default(),
                            local,
                            &mut NullMemory,
                        );
                    }
                },
            )
        };
        for l in locals {
            for (q, v, p) in l.priority_updates {
                state.queues[q].push(v, p);
            }
        }
        if let Some(t0) = t0 {
            let ns = t0.elapsed().as_nanos() as u64;
            self.phase_ns.apply += ns;
            counters().vertex_apply.record_ns(ns);
        }
        Ok(())
    }

    fn vertex_filter(
        &mut self,
        state: &mut ProgramState<'_>,
        _stmt: &Stmt,
        input: Option<&str>,
        filter: &str,
    ) -> Result<VertexSet, ExecError> {
        let t0 = ugc_telemetry::enabled().then(Instant::now);
        let udf = state
            .udfs
            .id_of(filter)
            .ok_or_else(|| ExecError::new(format!("unknown filter function `{filter}`")))?;
        let n = state.graph.num_vertices();
        let candidates: Vec<u32> = match input {
            None => (0..n as u32).collect(),
            Some(name) => state
                .env
                .set(name)
                .ok_or_else(|| ExecError::new(format!("set `{name}` is not bound")))?
                .members_in_order(),
        };
        let ev = Evaluator::new(&state.udfs, &state.props, &state.globals, state.graph);
        let keep = |v: u32| {
            ev.call(
                udf,
                &[Value::Int(v as i64)],
                EdgeCtx::default(),
                &mut NullOutput,
                &mut NullMemory,
            )
            .map(|r| r.as_bool())
            .unwrap_or(false)
        };
        let members: Vec<u32> = if candidates.len() < 512 {
            candidates.iter().copied().filter(|&v| keep(v)).collect()
        } else {
            let locals = parallel_for_with_local(
                self.num_threads,
                candidates.len(),
                256,
                |_tid, range, local: &mut Vec<u32>| {
                    local.extend(candidates[range].iter().copied().filter(|&v| keep(v)));
                },
            );
            // Workers steal chunks dynamically, so locals interleave;
            // restore ascending order for a canonical sparse set.
            let mut all: Vec<u32> = locals.into_iter().flatten().collect();
            all.sort_unstable();
            all
        };
        let out = VertexSet::from_members(n, members);
        if let Some(t0) = t0 {
            let ns = t0.elapsed().as_nanos() as u64;
            self.phase_ns.apply += ns;
            counters().vertex_apply.record_ns(ns);
        }
        Ok(out)
    }
}

/// EdgeBlocking (cache-blocked) all-edges push traversal: destinations are
/// processed in blocks sized to the last-level cache so random writes stay
/// resident (GraphIt's EdgeBlocking / NUMA optimization for PageRank).
fn cache_blocked_push(
    ev: &Evaluator<'_>,
    csr: &Csr,
    members: &[u32],
    plan: &OpPlan,
    num_threads: usize,
) -> Vec<BufferedOutput> {
    const BLOCK: u32 = 1 << 14;
    let n = csr.num_vertices() as u32;
    let mut all = Vec::new();
    let mut lo = 0u32;
    while lo < n {
        let hi = (lo + BLOCK).min(n);
        let locals = parallel_for_with_local(
            num_threads,
            members.len(),
            64,
            |_tid, range, local: &mut BufferedOutput| {
                for &src in &members[range] {
                    if !passes(ev, plan.src_filter, src) {
                        continue;
                    }
                    let neigh = csr.neighbors(src);
                    let weights = csr.neighbor_weights(src);
                    let start = neigh.partition_point(|&d| d < lo);
                    for k in start..neigh.len() {
                        let dst = neigh[k];
                        if dst >= hi {
                            break;
                        }
                        if !passes(ev, plan.dst_filter, dst) {
                            continue;
                        }
                        let w = weights.map_or(1, |ws| ws[k]) as i64;
                        let mut args = vec![Value::Int(src as i64), Value::Int(dst as i64)];
                        if plan.takes_weight {
                            args.push(Value::Int(w));
                        }
                        ev.call(
                            plan.udf,
                            &args,
                            EdgeCtx { weight: w },
                            local,
                            &mut NullMemory,
                        );
                    }
                }
            },
        );
        all.extend(locals);
        lo = hi;
    }
    all
}

/// The compiled-kernel twin of [`cache_blocked_push`]: same destination
/// blocking, per-edge work done by the monomorphized kernel body.
fn cache_blocked_push_kernel(
    kernel: &dyn EdgeKernel,
    io: &Io<'_>,
    members: &[u32],
    num_threads: usize,
) -> Vec<BufferedOutput> {
    const BLOCK: u32 = 1 << 14;
    let n = io.csr.num_vertices() as u32;
    let mut all = Vec::new();
    let mut lo = 0u32;
    while lo < n {
        let hi = (lo + BLOCK).min(n);
        let locals = parallel_for_with_local(
            num_threads,
            members.len(),
            64,
            |_tid, range, local: &mut BufferedOutput| {
                kernel.run_push_block(io, members, range, lo, hi, local);
            },
        );
        all.extend(locals);
        lo = hi;
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use ugc_runtime::interp::run_main;

    const BFS: &str = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load("g");
const parent : vector{Vertex}(int) = -1;
const start_vertex : Vertex;
func toFilter(v : Vertex) -> output : bool
    output = (parent[v] == -1);
end
func updateEdge(src : Vertex, dst : Vertex)
    parent[dst] = src;
end
func main()
    var frontier : vertexset{Vertex} = new vertexset{Vertex}(0);
    frontier.addVertex(start_vertex);
    parent[start_vertex] = start_vertex;
    #s0# while (frontier.getVertexSetSize() != 0)
        #s1# var output : vertexset{Vertex} = edges.from(frontier).to(toFilter).applyModified(updateEdge, parent, true);
        delete frontier;
        frontier = output;
    end
end
"#;

    fn run_bfs(sched: Option<CpuSchedule>) -> Vec<i64> {
        let mut prog = ugc_midend::frontend_to_ir(BFS).unwrap();
        if let Some(s) = sched {
            ugc_schedule::apply_schedule(&mut prog, "s1", ugc_schedule::ScheduleRef::simple(s))
                .unwrap();
        }
        ugc_midend::run_passes(&mut prog).unwrap();
        let graph = ugc_graph::generators::two_communities();
        let mut externs = HashMap::new();
        externs.insert("start_vertex".to_string(), Value::Int(0));
        let mut state = ProgramState::new(prog, &graph, &externs).unwrap();
        run_main(&mut state, &mut CpuExecutor::default()).unwrap();
        let parent = state.props.id_of("parent").unwrap();
        state
            .props
            .snapshot(parent)
            .into_iter()
            .map(|v| v.as_int())
            .collect()
    }

    fn assert_valid_bfs_tree(parents: &[i64]) {
        let g = ugc_graph::generators::two_communities();
        // Every vertex reachable from 0; parent edges must exist.
        for (v, &p) in parents.iter().enumerate() {
            assert_ne!(p, -1, "vertex {v} unreached");
            if v != 0 {
                assert!(
                    g.out_neighbors(p as u32).contains(&(v as u32)),
                    "parent edge {p}->{v} missing"
                );
            }
        }
    }

    #[test]
    fn bfs_push_default() {
        assert_valid_bfs_tree(&run_bfs(None));
    }

    #[test]
    fn bfs_pull() {
        assert_valid_bfs_tree(&run_bfs(Some(
            CpuSchedule::new().with_direction(ugc_schedule::SchedDirection::Pull),
        )));
    }

    #[test]
    fn bfs_hybrid() {
        assert_valid_bfs_tree(&run_bfs(Some(
            CpuSchedule::new().with_direction(ugc_schedule::SchedDirection::Hybrid),
        )));
    }

    #[test]
    fn bfs_edge_aware_parallel() {
        assert_valid_bfs_tree(&run_bfs(Some(
            CpuSchedule::new()
                .with_parallelization(ugc_schedule::Parallelization::EdgeAwareVertexBased)
                .with_serial_threshold(0),
        )));
    }

    #[test]
    fn degree_chunks_cover_members() {
        let g = ugc_graph::generators::star(64);
        let members: Vec<u32> = (0..64).collect();
        let chunks = CpuExecutor::degree_chunks(g.out_csr(), &members, 16);
        let covered: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(covered, 64);
        assert!(chunks.len() > 1);
    }
}
