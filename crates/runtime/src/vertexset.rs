//! Frontier (vertex set) representations: SPARSE, BITMAP, BOOLMAP.
//!
//! GraphIR deliberately leaves the concrete representation of a vertex set
//! to the backend (Table II); this module provides all three choices with
//! conversions, so schedules can pick per-operator representations.

use ugc_graphir::types::VertexSetRepr;

/// A set of active vertices in one of three representations.
///
/// # Example
///
/// ```
/// use ugc_runtime::VertexSet;
///
/// let mut s = VertexSet::empty_sparse(8);
/// s.add(3);
/// s.add(5);
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(5));
/// let b = s.to_repr(ugc_graphir::types::VertexSetRepr::Bitmap);
/// assert!(b.contains(3));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum VertexSet {
    /// Dense array of member ids (possibly unsorted; may hold duplicates
    /// until [`VertexSet::dedup`]).
    Sparse {
        /// Total vertices in the graph (universe size).
        universe: usize,
        /// Member vertex ids.
        members: Vec<u32>,
    },
    /// One bit per vertex.
    Bitmap {
        /// Universe size.
        universe: usize,
        /// Packed membership bits.
        words: Vec<u64>,
        /// Cached population count.
        count: usize,
    },
    /// One byte per vertex.
    Boolmap {
        /// Universe size.
        universe: usize,
        /// Membership bytes.
        flags: Vec<bool>,
        /// Cached population count.
        count: usize,
    },
}

impl VertexSet {
    /// Empty sparse set over `universe` vertices.
    pub fn empty_sparse(universe: usize) -> Self {
        VertexSet::Sparse {
            universe,
            members: Vec::new(),
        }
    }

    /// Empty set in the requested representation.
    pub fn empty(universe: usize, repr: VertexSetRepr) -> Self {
        match repr {
            VertexSetRepr::Sparse => Self::empty_sparse(universe),
            VertexSetRepr::Bitmap => VertexSet::Bitmap {
                universe,
                words: vec![0; universe.div_ceil(64)],
                count: 0,
            },
            VertexSetRepr::Boolmap => VertexSet::Boolmap {
                universe,
                flags: vec![false; universe],
                count: 0,
            },
        }
    }

    /// The full set `0..universe` (sparse).
    pub fn all(universe: usize) -> Self {
        VertexSet::Sparse {
            universe,
            members: (0..universe as u32).collect(),
        }
    }

    /// Builds a sparse set from member ids.
    ///
    /// # Panics
    ///
    /// Panics if a member is out of the universe.
    pub fn from_members(universe: usize, members: Vec<u32>) -> Self {
        assert!(
            members.iter().all(|&v| (v as usize) < universe),
            "vertex id out of universe"
        );
        VertexSet::Sparse { universe, members }
    }

    /// The universe (total vertex count).
    pub fn universe(&self) -> usize {
        match self {
            VertexSet::Sparse { universe, .. }
            | VertexSet::Bitmap { universe, .. }
            | VertexSet::Boolmap { universe, .. } => *universe,
        }
    }

    /// Which representation this set currently uses.
    pub fn repr(&self) -> VertexSetRepr {
        match self {
            VertexSet::Sparse { .. } => VertexSetRepr::Sparse,
            VertexSet::Bitmap { .. } => VertexSetRepr::Bitmap,
            VertexSet::Boolmap { .. } => VertexSetRepr::Boolmap,
        }
    }

    /// Number of members (sparse sets count duplicates until deduped).
    pub fn len(&self) -> usize {
        match self {
            VertexSet::Sparse { members, .. } => members.len(),
            VertexSet::Bitmap { count, .. } | VertexSet::Boolmap { count, .. } => *count,
        }
    }

    /// Whether the set has no members.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test.
    pub fn contains(&self, v: u32) -> bool {
        match self {
            VertexSet::Sparse { members, .. } => members.contains(&v),
            VertexSet::Bitmap { words, .. } => {
                (words[v as usize / 64] >> (v as usize % 64)) & 1 == 1
            }
            VertexSet::Boolmap { flags, .. } => flags[v as usize],
        }
    }

    /// Adds a vertex. Sparse sets may accumulate duplicates (call
    /// [`VertexSet::dedup`]); map representations are idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the universe.
    pub fn add(&mut self, v: u32) {
        assert!((v as usize) < self.universe(), "vertex {v} out of universe");
        match self {
            VertexSet::Sparse { members, .. } => members.push(v),
            VertexSet::Bitmap { words, count, .. } => {
                let (w, b) = (v as usize / 64, v as usize % 64);
                if (words[w] >> b) & 1 == 0 {
                    words[w] |= 1 << b;
                    *count += 1;
                }
            }
            VertexSet::Boolmap { flags, count, .. } => {
                if !flags[v as usize] {
                    flags[v as usize] = true;
                    *count += 1;
                }
            }
        }
    }

    /// Removes duplicates from a sparse set, keeping first-arrival order
    /// (how real atomically-appended frontiers behave). No-op on map reprs.
    pub fn dedup(&mut self) {
        if let VertexSet::Sparse { members, universe } = self {
            let mut seen = vec![false; *universe];
            members.retain(|&v| {
                let s = seen[v as usize];
                seen[v as usize] = true;
                !s
            });
        }
    }

    /// Member ids in arrival order (sparse sets) or ascending order (map
    /// representations, which have no arrival order).
    pub fn members_in_order(&self) -> Vec<u32> {
        match self {
            VertexSet::Sparse { members, .. } => members.clone(),
            _ => self.iter(),
        }
    }

    /// Iterates member ids ascending (sparse sets are sorted lazily into a
    /// temporary).
    pub fn iter(&self) -> Vec<u32> {
        match self {
            VertexSet::Sparse { members, .. } => {
                let mut m = members.clone();
                m.sort_unstable();
                m
            }
            VertexSet::Bitmap {
                words, universe, ..
            } => {
                let mut out = Vec::new();
                for (wi, &w) in words.iter().enumerate() {
                    let mut w = w;
                    while w != 0 {
                        let b = w.trailing_zeros() as usize;
                        let v = wi * 64 + b;
                        if v < *universe {
                            out.push(v as u32);
                        }
                        w &= w - 1;
                    }
                }
                out
            }
            VertexSet::Boolmap { flags, .. } => flags
                .iter()
                .enumerate()
                .filter(|(_, &f)| f)
                .map(|(i, _)| i as u32)
                .collect(),
        }
    }

    /// Converts into the requested representation (duplicates collapse).
    pub fn to_repr(&self, repr: VertexSetRepr) -> VertexSet {
        if self.repr() == repr {
            let mut c = self.clone();
            c.dedup();
            return c;
        }
        let mut out = VertexSet::empty(self.universe(), repr);
        for v in self.iter() {
            out.add(v);
        }
        out
    }

    /// Approximate size in bytes of this representation — used by
    /// schedules and simulators to cost frontier materialization.
    pub fn footprint_bytes(&self) -> usize {
        match self {
            VertexSet::Sparse { members, .. } => members.len() * 4,
            VertexSet::Bitmap { words, .. } => words.len() * 8,
            VertexSet::Boolmap { flags, .. } => flags.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_add_and_dedup() {
        let mut s = VertexSet::empty_sparse(10);
        s.add(4);
        s.add(4);
        s.add(2);
        assert_eq!(s.len(), 3);
        s.dedup();
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter(), vec![2, 4]);
        // Arrival order preserved.
        assert_eq!(s.members_in_order(), vec![4, 2]);
    }

    #[test]
    fn bitmap_idempotent_add() {
        let mut s = VertexSet::empty(100, VertexSetRepr::Bitmap);
        s.add(70);
        s.add(70);
        assert_eq!(s.len(), 1);
        assert!(s.contains(70));
        assert!(!s.contains(71));
    }

    #[test]
    fn boolmap_round_trip() {
        let mut s = VertexSet::empty(5, VertexSetRepr::Boolmap);
        s.add(0);
        s.add(4);
        let sp = s.to_repr(VertexSetRepr::Sparse);
        assert_eq!(sp.iter(), vec![0, 4]);
        let bm = sp.to_repr(VertexSetRepr::Bitmap);
        assert_eq!(bm.iter(), vec![0, 4]);
    }

    #[test]
    fn all_set() {
        let s = VertexSet::all(4);
        assert_eq!(s.len(), 4);
        assert_eq!(s.iter(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn conversion_collapses_duplicates() {
        let s = VertexSet::from_members(8, vec![3, 3, 3, 1]);
        let b = s.to_repr(VertexSetRepr::Bitmap);
        assert_eq!(b.len(), 2);
        // Converting to the same repr also dedups.
        let s2 = s.to_repr(VertexSetRepr::Sparse);
        assert_eq!(s2.len(), 2);
    }

    #[test]
    fn footprints_differ() {
        let mut s = VertexSet::empty_sparse(1000);
        s.add(1);
        assert_eq!(s.footprint_bytes(), 4);
        assert_eq!(s.to_repr(VertexSetRepr::Boolmap).footprint_bytes(), 1000);
        assert_eq!(s.to_repr(VertexSetRepr::Bitmap).footprint_bytes(), 128);
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn add_out_of_universe_panics() {
        let mut s = VertexSet::empty_sparse(2);
        s.add(2);
    }

    #[test]
    fn bitmap_iter_skips_padding_bits() {
        let mut s = VertexSet::empty(65, VertexSetRepr::Bitmap);
        s.add(64);
        assert_eq!(s.iter(), vec![64]);
    }
}
