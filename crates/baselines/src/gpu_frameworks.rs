//! Mini reimplementations of Gunrock, GSwitch, and SEP-Graph (Fig. 9's
//! comparators), written directly against the GPU simulator.
//!
//! Each framework is reduced to the design point the paper credits for its
//! behaviour:
//!
//! | framework | direction | load balance | frontier | rounds |
//! |-----------|-----------|--------------|----------|--------|
//! | Gunrock   | push only | TWC          | unfused (filter kernel per op) | synchronous |
//! | GSwitch   | adaptive  | WM           | fused    | synchronous |
//! | SEP-Graph | adaptive  | CM           | fused    | **asynchronous** (no per-round launches/syncs) |
//!
//! Per-edge functor costs include each framework's generality overhead —
//! these engines process *any* user functor through a generic pipeline,
//! unlike UGC's specialized generated code.

use ugc_backend_gpu::load_balance::{self, LoadBalance};
use ugc_graph::{Csr, Graph};
use ugc_sim_gpu::{AccessKind, GpuConfig, GpuSim, LaneTrace, MemAccess, WarpTrace};

/// The three comparator frameworks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Framework {
    /// Gunrock (PPoPP'16): advance/filter kernel pipeline.
    Gunrock,
    /// GSwitch (PPoPP'19): pattern-based adaptive autotuner.
    GSwitch,
    /// SEP-Graph (PPoPP'19): hybrid sync/async execution paths.
    SepGraph,
}

impl Framework {
    /// All three, in the paper's order.
    pub const ALL: [Framework; 3] = [Framework::Gunrock, Framework::GSwitch, Framework::SepGraph];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Framework::Gunrock => "Gunrock",
            Framework::GSwitch => "GSwitch",
            Framework::SepGraph => "SEP-Graph",
        }
    }
}

struct Policy {
    lb: LoadBalance,
    hybrid: bool,
    fused_frontier: bool,
    /// Extra framework kernels per round (filters, frontier management).
    extra_kernels: u32,
    /// Asynchronous execution (no per-round launch/sync) for iterative
    /// algorithms.
    async_rounds: bool,
    /// Per-edge functor overhead (scalar instructions).
    edge_overhead: u32,
}

fn policy(f: Framework) -> Policy {
    match f {
        Framework::Gunrock => Policy {
            lb: LoadBalance::Twc,
            hybrid: false,
            fused_frontier: false,
            extra_kernels: 2,
            async_rounds: false,
            edge_overhead: 26,
        },
        Framework::GSwitch => Policy {
            lb: LoadBalance::Wm,
            hybrid: true,
            fused_frontier: true,
            extra_kernels: 1,
            async_rounds: false,
            edge_overhead: 22,
        },
        Framework::SepGraph => Policy {
            lb: LoadBalance::Cm,
            hybrid: true,
            fused_frontier: true,
            extra_kernels: 0,
            async_rounds: true,
            edge_overhead: 22,
        },
    }
}

/// Result of a framework run: simulated cycles plus the algorithm output
/// used by validation tests.
#[derive(Debug, Clone)]
pub struct FrameworkRun {
    /// Simulated device cycles.
    pub cycles: u64,
    /// Result array (parent / dist / label / scaled rank / sigma).
    pub result: Vec<i64>,
}

/// Property-array ids for the traces.
mod arrays {
    pub const DATA: u32 = 0;
    pub const AUX: u32 = 1;
    pub const TARGETS: u32 = 0x101;
    pub const FRONTIER_IN: u32 = 0x110;
    pub const FRONTIER_OUT: u32 = 0x111;
    pub const CURSOR: u32 = 0x112;
    pub const MAP: u32 = 0x113;
}

struct Lane {
    t: LaneTrace,
}

impl Lane {
    fn new() -> Self {
        Lane {
            t: LaneTrace::default(),
        }
    }
    fn load(&mut self, prop: u32, idx: u32) {
        self.t.mem.push(MemAccess {
            kind: AccessKind::Load,
            prop,
            idx,
        });
    }
    fn store(&mut self, prop: u32, idx: u32) {
        self.t.mem.push(MemAccess {
            kind: AccessKind::Store,
            prop,
            idx,
        });
    }
    fn atomic(&mut self, prop: u32, idx: u32) {
        self.t.mem.push(MemAccess {
            kind: AccessKind::Atomic,
            prop,
            idx,
        });
    }
}

/// Runs one push traversal kernel; `edge_fn(src, dst, w, lane)` returns the
/// vertex to enqueue, if any.
fn push_kernel(
    sim: &mut GpuSim,
    csr: &Csr,
    frontier: &[u32],
    pol: &Policy,
    fused_launch: bool,
    mut edge_fn: impl FnMut(u32, u32, i64, &mut Lane) -> Option<u32>,
) -> Vec<u32> {
    let warps = load_balance::assign(csr, frontier, pol.lb);
    let mut out = Vec::new();
    let mut traces = Vec::with_capacity(warps.len());
    for (wi, warp) in warps.iter().enumerate() {
        let mut lanes = Vec::with_capacity(warp.len());
        for (li, lane_work) in warp.iter().enumerate() {
            let mut lane = Lane::new();
            for lw in lane_work {
                lane.load(arrays::FRONTIER_IN, (wi * 32 + li) as u32);
                lane.t.computes += lw.overhead + 4;
                let base = csr.edge_offset(lw.src);
                let weights = csr.neighbor_weights(lw.src);
                for k in lw.edges.clone() {
                    lane.load(arrays::TARGETS, k as u32);
                    lane.t.computes += pol.edge_overhead;
                    let dst = csr.targets()[k];
                    let w = weights.map_or(1, |ws| ws[k - base]) as i64;
                    if let Some(enq) = edge_fn(lw.src, dst, w, &mut lane) {
                        if pol.fused_frontier {
                            lane.atomic(arrays::CURSOR, 0);
                            lane.store(arrays::FRONTIER_OUT, enq);
                        } else {
                            lane.store(arrays::MAP, enq / 4);
                        }
                        out.push(enq);
                    }
                }
            }
            lanes.push(lane.t);
        }
        traces.push(WarpTrace { lanes });
    }
    sim.run_kernel("baseline_push", traces.into_iter(), fused_launch);
    if !pol.fused_frontier {
        compaction(sim, csr.num_vertices(), out.len());
    }
    for _ in 0..pol.extra_kernels {
        overhead_kernel(sim, frontier.len().max(1));
    }
    out
}

/// Pull traversal over all vertices with early exit; `vertex_fn(dst, lane)`
/// returns whether dst still wants edges; `edge_fn` as in push.
fn pull_kernel(
    sim: &mut GpuSim,
    in_csr: &Csr,
    member: &[bool],
    pol: &Policy,
    fused_launch: bool,
    mut want: impl FnMut(u32) -> bool,
    mut edge_fn: impl FnMut(u32, u32, i64, &mut Lane) -> Option<u32>,
) -> Vec<u32> {
    let n = in_csr.num_vertices();
    let all: Vec<u32> = (0..n as u32).collect();
    let warps = load_balance::assign(in_csr, &all, pol.lb);
    let mut out = Vec::new();
    let mut traces = Vec::with_capacity(warps.len());
    for warp in &warps {
        let mut lanes = Vec::with_capacity(warp.len());
        for lane_work in warp {
            let mut lane = Lane::new();
            'work: for lw in lane_work {
                let dst = lw.src;
                lane.t.computes += lw.overhead + 4;
                lane.load(arrays::DATA, dst);
                if !want(dst) {
                    continue;
                }
                let base = in_csr.edge_offset(dst);
                let weights = in_csr.neighbor_weights(dst);
                for k in lw.edges.clone() {
                    lane.load(arrays::TARGETS, k as u32);
                    lane.t.computes += pol.edge_overhead;
                    let src = in_csr.targets()[k];
                    lane.load(arrays::MAP, src / 4);
                    if !member[src as usize] {
                        continue;
                    }
                    let w = weights.map_or(1, |ws| ws[k - base]) as i64;
                    if let Some(enq) = edge_fn(src, dst, w, &mut lane) {
                        lane.store(arrays::MAP, enq / 4);
                        out.push(enq);
                        if !want(dst) {
                            continue 'work;
                        }
                    }
                }
            }
            lanes.push(lane.t);
        }
        traces.push(WarpTrace { lanes });
    }
    sim.run_kernel("baseline_pull", traces.into_iter(), fused_launch);
    out
}

/// Builds the `wi`-th 32-lane warp trace of a uniform bookkeeping kernel
/// over `0..total`, one `prop` load per lane.
fn uniform_warp(
    total: usize,
    wi: usize,
    computes: u32,
    prop: u32,
    idx_of: fn(usize) -> u32,
) -> WarpTrace {
    let base = wi * 32;
    WarpTrace {
        lanes: (base..(base + 32).min(total))
            .map(|i| LaneTrace {
                computes,
                mem: vec![MemAccess {
                    kind: AccessKind::Load,
                    prop,
                    idx: idx_of(i),
                }],
            })
            .collect(),
    }
}

/// Materializes `total.div_ceil(32)` uniform warp traces in parallel on
/// the persistent pool. Warps land at their own index, so the trace
/// stream is deterministic regardless of thread count.
fn uniform_warps(
    total: usize,
    computes: u32,
    prop: u32,
    idx_of: fn(usize) -> u32,
) -> Vec<WarpTrace> {
    let num_warps = total.div_ceil(32);
    let mut warps: Vec<WarpTrace> = (0..num_warps)
        .map(|_| WarpTrace { lanes: vec![] })
        .collect();
    ugc_runtime::pool::parallel_for_each_mut(
        ugc_runtime::pool::default_threads(),
        &mut warps,
        64,
        |_tid, start, window| {
            for (i, w) in window.iter_mut().enumerate() {
                *w = uniform_warp(total, start + i, computes, prop, idx_of);
            }
        },
    );
    warps
}

fn compaction(sim: &mut GpuSim, n: usize, out_len: usize) {
    let warps = uniform_warps(n, 6, arrays::MAP, |v| (v / 4) as u32);
    sim.run_kernel("baseline_compaction", warps.into_iter(), false);
    let _ = out_len;
}

/// A small bookkeeping kernel (Gunrock-style filter / frontier mgmt).
fn overhead_kernel(sim: &mut GpuSim, work: usize) {
    let warps = uniform_warps(work, 4, arrays::FRONTIER_IN, |i| i as u32);
    sim.run_kernel("baseline_overhead", warps.into_iter(), false);
}

fn dedup(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v.dedup();
    v
}

/// Runs `framework`'s implementation of an algorithm; `algo` is one of
/// "bfs", "sssp", "pr", "cc", "bc".
///
/// # Panics
///
/// Panics on an unknown algorithm name.
pub fn run_framework(
    framework: Framework,
    algo: &str,
    graph: &Graph,
    start: u32,
    cfg: GpuConfig,
) -> FrameworkRun {
    let pol = policy(framework);
    let mut sim = GpuSim::new(cfg);
    let result = match algo {
        "bfs" => bfs(&mut sim, graph, start, &pol),
        "sssp" => sssp(&mut sim, graph, start, &pol),
        "pr" => pr(&mut sim, graph, &pol),
        "cc" => cc(&mut sim, graph, &pol),
        "bc" => bc(&mut sim, graph, start, &pol),
        other => panic!("unknown algorithm `{other}`"),
    };
    FrameworkRun {
        cycles: sim.time_cycles(),
        result,
    }
}

fn bfs(sim: &mut GpuSim, g: &Graph, start: u32, pol: &Policy) -> Vec<i64> {
    let n = g.num_vertices();
    let mut parent = vec![-1i64; n];
    parent[start as usize] = start as i64;
    let mut frontier = vec![start];
    let fused = pol.async_rounds;
    if fused {
        sim.charge_launch();
    }
    while !frontier.is_empty() {
        let dense = pol.hybrid && frontier.len() * 20 > n;
        let next = if dense {
            let mut member = vec![false; n];
            for &v in &frontier {
                member[v as usize] = true;
            }
            let parent_cell = std::cell::RefCell::new(&mut parent);
            pull_kernel(
                sim,
                g.in_csr(),
                &member,
                pol,
                fused,
                |dst| parent_cell.borrow()[dst as usize] == -1,
                |src, dst, _w, lane| {
                    lane.load(arrays::DATA, dst);
                    let mut parent = parent_cell.borrow_mut();
                    if parent[dst as usize] == -1 {
                        lane.store(arrays::DATA, dst);
                        parent[dst as usize] = src as i64;
                        Some(dst)
                    } else {
                        None
                    }
                },
            )
        } else {
            push_kernel(
                sim,
                g.out_csr(),
                &frontier,
                pol,
                fused,
                |src, dst, _w, lane| {
                    if parent[dst as usize] == -1 {
                        lane.atomic(arrays::DATA, dst);
                        parent[dst as usize] = src as i64;
                        Some(dst)
                    } else {
                        lane.load(arrays::DATA, dst);
                        None
                    }
                },
            )
        };
        if fused {
            sim.grid_sync();
        }
        frontier = dedup(next);
    }
    parent
}

fn sssp(sim: &mut GpuSim, g: &Graph, start: u32, pol: &Policy) -> Vec<i64> {
    // Frontier-based relaxation (Bellman-Ford style rounds) — what Gunrock
    // and GSwitch run. SEP-Graph's asynchronous path instead processes
    // priority buckets with no launches or global synchronization at all
    // (monotone relaxations tolerate stale reads) — the design that wins
    // road-graph SSSP in the paper's Fig. 9.
    if pol.async_rounds {
        return sssp_async_buckets(sim, g, start, pol, 64);
    }
    let n = g.num_vertices();
    let mut dist = vec![i32::MAX as i64; n];
    dist[start as usize] = 0;
    let mut frontier = vec![start];
    let fused = pol.async_rounds;
    while !frontier.is_empty() {
        let next = push_kernel(
            sim,
            g.out_csr(),
            &frontier,
            pol,
            fused,
            |src, dst, w, lane| {
                lane.load(arrays::DATA, src);
                let nd = dist[src as usize] + w;
                if nd < dist[dst as usize] {
                    lane.atomic(arrays::DATA, dst);
                    dist[dst as usize] = nd;
                    Some(dst)
                } else {
                    lane.load(arrays::DATA, dst);
                    None
                }
            },
        );
        frontier = dedup(next);
    }
    dist
}

/// SEP-Graph's asynchronous SSSP: ∆-bucketed priority order, zero launch
/// and synchronization overhead between buckets.
fn sssp_async_buckets(
    sim: &mut GpuSim,
    g: &Graph,
    start: u32,
    pol: &Policy,
    delta: i64,
) -> Vec<i64> {
    let n = g.num_vertices();
    let mut dist = vec![i32::MAX as i64; n];
    dist[start as usize] = 0;
    let mut buckets: std::collections::BTreeMap<i64, Vec<u32>> = std::collections::BTreeMap::new();
    buckets.insert(0, vec![start]);
    sim.charge_launch();
    while let Some((&b, _)) = buckets.iter().next() {
        let members = dedup(buckets.remove(&b).expect("bucket exists"));
        let members: Vec<u32> = members
            .into_iter()
            .filter(|&v| dist[v as usize] / delta == b)
            .collect();
        if members.is_empty() {
            continue;
        }
        let mut newly = Vec::new();
        push_kernel(
            sim,
            g.out_csr(),
            &members,
            pol,
            true,
            |src, dst, w, lane| {
                lane.load(arrays::DATA, src);
                let nd = dist[src as usize] + w;
                if nd < dist[dst as usize] {
                    lane.atomic(arrays::DATA, dst);
                    dist[dst as usize] = nd;
                    newly.push((nd / delta, dst));
                    None // frontier management is bucket-local, no global enq
                } else {
                    lane.load(arrays::DATA, dst);
                    None
                }
            },
        );
        for (bb, v) in newly {
            buckets.entry(bb).or_default().push(v);
        }
    }
    dist
}

fn pr(sim: &mut GpuSim, g: &Graph, pol: &Policy) -> Vec<i64> {
    let n = g.num_vertices();
    let mut rank = vec![1.0 / n as f64; n];
    let mut acc = vec![0.0f64; n];
    let all: Vec<u32> = (0..n as u32).collect();
    for _ in 0..20 {
        let contrib: Vec<f64> = (0..n)
            .map(|v| {
                let d = g.out_degree(v as u32);
                if d == 0 {
                    0.0
                } else {
                    rank[v] / d as f64
                }
            })
            .collect();
        overhead_kernel(sim, n); // contrib kernel
        push_kernel(sim, g.out_csr(), &all, pol, false, |src, dst, _w, lane| {
            lane.load(arrays::AUX, src);
            lane.atomic(arrays::DATA, dst);
            acc[dst as usize] += contrib[src as usize];
            None
        });
        overhead_kernel(sim, n); // apply kernel
        for v in 0..n {
            rank[v] = (1.0 - 0.85) / n as f64 + 0.85 * acc[v];
            acc[v] = 0.0;
        }
    }
    rank.iter().map(|r| (r * 1e12) as i64).collect()
}

fn cc(sim: &mut GpuSim, g: &Graph, pol: &Policy) -> Vec<i64> {
    let n = g.num_vertices();
    let mut label: Vec<i64> = (0..n as i64).collect();
    let mut frontier: Vec<u32> = (0..n as u32).collect();
    while !frontier.is_empty() {
        let next = push_kernel(
            sim,
            g.out_csr(),
            &frontier,
            pol,
            false,
            |src, dst, _w, lane| {
                lane.load(arrays::DATA, src);
                if label[src as usize] < label[dst as usize] {
                    lane.atomic(arrays::DATA, dst);
                    label[dst as usize] = label[src as usize];
                    Some(dst)
                } else {
                    lane.load(arrays::DATA, dst);
                    None
                }
            },
        );
        frontier = dedup(next);
    }
    label
}

fn bc(sim: &mut GpuSim, g: &Graph, start: u32, pol: &Policy) -> Vec<i64> {
    let n = g.num_vertices();
    let mut sigma = vec![0i64; n];
    let mut level = vec![-1i64; n];
    sigma[start as usize] = 1;
    level[start as usize] = 0;
    let mut frontier = vec![start];
    let mut levels = vec![frontier.clone()];
    let mut d = 0i64;
    while !frontier.is_empty() {
        let next = push_kernel(
            sim,
            g.out_csr(),
            &frontier,
            pol,
            false,
            |src, dst, _w, lane| {
                lane.load(arrays::DATA, dst);
                if level[dst as usize] == -1 {
                    lane.store(arrays::DATA, dst);
                    level[dst as usize] = d + 1;
                }
                if level[dst as usize] == d + 1 {
                    lane.atomic(arrays::AUX, dst);
                    sigma[dst as usize] += sigma[src as usize];
                    Some(dst)
                } else {
                    None
                }
            },
        );
        frontier = dedup(next);
        if !frontier.is_empty() {
            levels.push(frontier.clone());
        }
        d += 1;
    }
    // Backward dependency accumulation over recorded levels.
    let mut delta = vec![0.0f64; n];
    for lvl in levels.iter().rev() {
        push_kernel(sim, g.in_csr(), lvl, pol, false, |w_v, v, _w, lane| {
            // Iterating in-edges of the level: (w_v = level vertex, v = pred)
            if level[v as usize] >= 0 && level[v as usize] + 1 == level[w_v as usize] {
                lane.load(arrays::AUX, v);
                lane.atomic(arrays::DATA, v);
                delta[v as usize] += sigma[v as usize] as f64 / sigma[w_v as usize] as f64
                    * (1.0 + delta[w_v as usize]);
            }
            None
        });
    }
    delta.iter().map(|d| (d * 1e6) as i64).collect()
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use ugc_algorithms::reference;

    fn graph() -> Graph {
        ugc_graph::generators::rmat(8, 6, 3, true)
    }

    #[test]
    fn bfs_reaches_same_set_for_all_frameworks() {
        let g = graph();
        let expect = reference::bfs_levels(&g, 0);
        for f in Framework::ALL {
            let run = run_framework(f, "bfs", &g, 0, GpuConfig::default());
            for v in 0..expect.len() {
                assert_eq!(
                    run.result[v] != -1,
                    expect[v] != -1,
                    "{} vertex {v}",
                    f.name()
                );
            }
            assert!(run.cycles > 0);
        }
    }

    #[test]
    fn sssp_matches_dijkstra() {
        let g = graph();
        let expect = reference::dijkstra(&g, 0);
        for f in Framework::ALL {
            let run = run_framework(f, "sssp", &g, 0, GpuConfig::default());
            assert_eq!(run.result, expect, "{}", f.name());
        }
    }

    #[test]
    fn cc_matches_union_find() {
        let g = graph();
        let expect = reference::cc_labels(&g);
        let run = run_framework(Framework::Gunrock, "cc", &g, 0, GpuConfig::default());
        assert_eq!(run.result, expect);
    }

    #[test]
    fn pr_close_to_reference() {
        let g = graph();
        let expect = reference::pagerank(&g, 20, 0.85);
        let run = run_framework(Framework::GSwitch, "pr", &g, 0, GpuConfig::default());
        for v in 0..expect.len() {
            let got = run.result[v] as f64 / 1e12;
            assert!((got - expect[v]).abs() < 1e-6, "vertex {v}");
        }
    }

    #[test]
    fn bc_close_to_reference() {
        let g = graph();
        let expect = reference::bc_dependencies(&g, 0);
        let run = run_framework(Framework::SepGraph, "bc", &g, 0, GpuConfig::default());
        for v in 0..expect.len() {
            let got = run.result[v] as f64 / 1e6;
            assert!(
                (got - expect[v]).abs() < 1e-3,
                "vertex {v}: {got} vs {}",
                expect[v]
            );
        }
    }

    #[test]
    fn sep_graph_async_beats_gunrock_on_road_sssp() {
        let g = ugc_graph::generators::road_grid(24, 24, 0.05, 2, true);
        let gun = run_framework(Framework::Gunrock, "sssp", &g, 0, GpuConfig::default());
        let sep = run_framework(Framework::SepGraph, "sssp", &g, 0, GpuConfig::default());
        assert!(
            sep.cycles < gun.cycles,
            "SEP {} must beat Gunrock {} on road SSSP",
            sep.cycles,
            gun.cycles
        );
    }
}
