//! Multi-source traversals: the batching engine behind `ugc-serve`.
//!
//! Concurrent BFS/SSSP queries against the same graph are coalesced into
//! **one** traversal that carries a state *lane* per source (MS-BFS style:
//! a `u64` bitmask per vertex tracks which lanes have discovered it, so a
//! vertex's neighbor list is scanned once per round for *all* lanes instead
//! of once per query). The answers these functions produce are the unique
//! fixpoints of their problems — BFS *levels* (not parent trees, which are
//! tie-broken by visit order) and shortest-path *distances* — so a batched
//! run is bit-equal to running each source on its own, which is what the
//! `tests/serve.rs` differential suite asserts.
//!
//! Every entry point reports [`TraversalStats`] with the number of
//! neighbor-list edge scans performed, the currency in which batching wins
//! are measured: `ms_bfs_levels(&[a, b])` scans each shared frontier vertex
//! once where two single-source runs scan it twice.

use ugc_graph::{Graph, VertexId};

use crate::reference::INF;

/// Lanes per traversal wave: one bit of a `u64` mask per source. Batches
/// larger than this are processed in consecutive waves over the same
/// graph (stats accumulate across waves).
pub const MAX_LANES: usize = 64;

/// Work accounting for one (possibly multi-wave) traversal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraversalStats {
    /// Edges examined: every time a vertex's neighbor list is walked, its
    /// degree is added once — regardless of how many lanes rode the scan.
    pub edge_scans: u64,
    /// Frontier rounds executed (summed across waves).
    pub rounds: u64,
}

impl TraversalStats {
    fn absorb(&mut self, other: TraversalStats) {
        self.edge_scans += other.edge_scans;
        self.rounds += other.rounds;
    }
}

/// BFS levels from every source, batched: `result[i][v]` is the depth of
/// `v` from `sources[i]`, `-1` when unreachable — bit-equal to
/// [`crate::reference::bfs_levels`] per lane.
///
/// # Panics
///
/// Panics if any source is out of range (callers validate requests first).
pub fn ms_bfs_levels(g: &Graph, sources: &[VertexId]) -> (Vec<Vec<i64>>, TraversalStats) {
    let mut out = Vec::with_capacity(sources.len());
    let mut stats = TraversalStats::default();
    for wave in sources.chunks(MAX_LANES) {
        let (levels, s) = bfs_wave(g, wave);
        out.extend(levels);
        stats.absorb(s);
    }
    (out, stats)
}

fn bfs_wave(g: &Graph, wave: &[VertexId]) -> (Vec<Vec<i64>>, TraversalStats) {
    let n = g.num_vertices();
    let mut levels: Vec<Vec<i64>> = wave.iter().map(|_| vec![-1i64; n]).collect();
    let mut visited = vec![0u64; n];
    let mut frontier = vec![0u64; n];
    let mut stats = TraversalStats::default();
    for (lane, &s) in wave.iter().enumerate() {
        assert!((s as usize) < n, "source {s} out of range (n={n})");
        // Identical sources share a lane's trajectory but keep their own
        // answer vector; the bitmask simply ORs their bits together.
        frontier[s as usize] |= 1 << lane;
        visited[s as usize] |= 1 << lane;
        levels[lane][s as usize] = 0;
    }
    let mut depth = 0i64;
    let mut any = !wave.is_empty();
    while any {
        any = false;
        let mut next = vec![0u64; n];
        stats.rounds += 1;
        for v in 0..n {
            let bits = frontier[v];
            if bits == 0 {
                continue;
            }
            // One scan of v's neighbor list serves every lane in `bits`.
            stats.edge_scans += g.out_degree(v as u32) as u64;
            for &u in g.out_neighbors(v as u32) {
                let fresh = bits & !visited[u as usize];
                if fresh == 0 {
                    continue;
                }
                visited[u as usize] |= fresh;
                next[u as usize] |= fresh;
                let mut m = fresh;
                while m != 0 {
                    let lane = m.trailing_zeros() as usize;
                    levels[lane][u as usize] = depth + 1;
                    m &= m - 1;
                }
                any = true;
            }
        }
        frontier = next;
        depth += 1;
    }
    (levels, stats)
}

/// Shortest-path distances from every source, batched: `result[i][v]` is
/// the distance from `sources[i]` to `v`, [`INF`] when unreachable —
/// bit-equal to [`crate::reference::dijkstra`] per lane (weights are
/// non-negative, so the frontier-driven relaxation converges to the same
/// unique fixpoint).
///
/// # Panics
///
/// Panics if any source is out of range.
pub fn ms_sssp_distances(g: &Graph, sources: &[VertexId]) -> (Vec<Vec<i64>>, TraversalStats) {
    let mut out = Vec::with_capacity(sources.len());
    let mut stats = TraversalStats::default();
    for wave in sources.chunks(MAX_LANES) {
        let (dists, s) = sssp_wave(g, wave);
        out.extend(dists);
        stats.absorb(s);
    }
    (out, stats)
}

fn sssp_wave(g: &Graph, wave: &[VertexId]) -> (Vec<Vec<i64>>, TraversalStats) {
    let n = g.num_vertices();
    let mut dist: Vec<Vec<i64>> = wave.iter().map(|_| vec![INF; n]).collect();
    let mut active = vec![0u64; n];
    let mut stats = TraversalStats::default();
    let mut any = false;
    for (lane, &s) in wave.iter().enumerate() {
        assert!((s as usize) < n, "source {s} out of range (n={n})");
        dist[lane][s as usize] = 0;
        active[s as usize] |= 1 << lane;
        any = true;
    }
    while any {
        any = false;
        stats.rounds += 1;
        let mut next = vec![0u64; n];
        for v in 0..n {
            let bits = active[v];
            if bits == 0 {
                continue;
            }
            // One scan of v's adjacency relaxes every active lane.
            stats.edge_scans += g.out_degree(v as u32) as u64;
            let weights = g.out_csr().neighbor_weights(v as u32);
            for (k, &u) in g.out_neighbors(v as u32).iter().enumerate() {
                let w = weights.map_or(1, |ws| ws[k]) as i64;
                let mut m = bits;
                while m != 0 {
                    let lane = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let nd = dist[lane][v] + w;
                    if nd < dist[lane][u as usize] {
                        dist[lane][u as usize] = nd;
                        next[u as usize] |= 1 << lane;
                        any = true;
                    }
                }
            }
        }
        active = next;
    }
    (dist, stats)
}

/// Single-source BFS levels with the same work accounting as the batched
/// engine — `ugc-serve`'s single-query fast path (no lane masks, no
/// per-vertex bit scans).
pub fn bfs_levels_counted(g: &Graph, src: VertexId) -> (Vec<i64>, TraversalStats) {
    use std::collections::VecDeque;
    let n = g.num_vertices();
    assert!((src as usize) < n, "source {src} out of range (n={n})");
    let mut level = vec![-1i64; n];
    let mut q = VecDeque::new();
    level[src as usize] = 0;
    q.push_back(src);
    let mut stats = TraversalStats {
        edge_scans: 0,
        rounds: 1,
    };
    while let Some(v) = q.pop_front() {
        stats.edge_scans += g.out_degree(v) as u64;
        for &u in g.out_neighbors(v) {
            if level[u as usize] == -1 {
                level[u as usize] = level[v as usize] + 1;
                q.push_back(u);
            }
        }
    }
    (level, stats)
}

/// Single-source shortest paths with the batched engine's work accounting
/// (frontier relaxation, one lane) — the SSSP single-query fast path.
pub fn sssp_distances_counted(g: &Graph, src: VertexId) -> (Vec<i64>, TraversalStats) {
    let (mut d, stats) = sssp_wave(g, &[src]);
    (d.pop().expect("one lane"), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    fn graphs() -> Vec<(&'static str, Graph)> {
        vec![
            ("two_communities", ugc_graph::generators::two_communities()),
            (
                "road_8x8",
                ugc_graph::generators::road_grid(8, 8, 0.05, 3, true),
            ),
            ("rmat_7", ugc_graph::generators::rmat(7, 4, 5, true)),
            (
                "uniform_100",
                ugc_graph::generators::uniform_random(100, 300, 5, true),
            ),
        ]
    }

    #[test]
    fn batched_bfs_levels_match_reference() {
        for (name, g) in graphs() {
            let sources: Vec<u32> = vec![0, 1, 0, (g.num_vertices() as u32) - 1];
            let (batched, _) = ms_bfs_levels(&g, &sources);
            for (lane, &s) in sources.iter().enumerate() {
                assert_eq!(
                    batched[lane],
                    reference::bfs_levels(&g, s),
                    "{name}: lane {lane} (source {s})"
                );
            }
        }
    }

    #[test]
    fn batched_sssp_distances_match_dijkstra() {
        for (name, g) in graphs() {
            let sources: Vec<u32> = vec![0, 2, 0];
            let (batched, _) = ms_sssp_distances(&g, &sources);
            for (lane, &s) in sources.iter().enumerate() {
                assert_eq!(
                    batched[lane],
                    reference::dijkstra(&g, s),
                    "{name}: lane {lane} (source {s})"
                );
            }
        }
    }

    #[test]
    fn fast_paths_match_batched_lanes() {
        for (name, g) in graphs() {
            let (levels, _) = bfs_levels_counted(&g, 1);
            assert_eq!(levels, reference::bfs_levels(&g, 1), "{name}");
            let (dist, _) = sssp_distances_counted(&g, 1);
            assert_eq!(dist, reference::dijkstra(&g, 1), "{name}");
        }
    }

    #[test]
    fn coalesced_pair_scans_fewer_edges_than_two_runs() {
        for (name, g) in graphs() {
            let (_, solo) = ms_bfs_levels(&g, &[0]);
            let (_, pair) = ms_bfs_levels(&g, &[0, 0]);
            // A repeated source shares every scan: the pair costs exactly
            // one traversal where two sequential runs cost two.
            assert_eq!(pair.edge_scans, solo.edge_scans, "{name}");
            assert!(
                pair.edge_scans < 2 * solo.edge_scans.max(1),
                "{name}: batching saved no work"
            );
            // Distinct sources still never exceed the sequential cost.
            let (_, a) = ms_bfs_levels(&g, &[0]);
            let (_, b) = ms_bfs_levels(&g, &[1]);
            let (_, both) = ms_bfs_levels(&g, &[0, 1]);
            assert!(
                both.edge_scans <= a.edge_scans + b.edge_scans,
                "{name}: batched pair scanned more than sequential runs"
            );
        }
    }

    #[test]
    fn wave_overflow_spills_to_second_wave() {
        let g = ugc_graph::generators::uniform_random(80, 240, 5, true);
        let sources: Vec<u32> = (0..(MAX_LANES as u32 + 5)).map(|i| i % 80).collect();
        let (batched, stats) = ms_bfs_levels(&g, &sources);
        assert_eq!(batched.len(), sources.len());
        for (lane, &s) in sources.iter().enumerate() {
            assert_eq!(batched[lane], reference::bfs_levels(&g, s), "lane {lane}");
        }
        assert!(stats.rounds > 0 && stats.edge_scans > 0);
    }

    #[test]
    fn empty_source_list_is_empty() {
        let g = ugc_graph::generators::two_communities();
        let (levels, stats) = ms_bfs_levels(&g, &[]);
        assert!(levels.is_empty());
        assert_eq!(stats.edge_scans, 0);
    }
}
