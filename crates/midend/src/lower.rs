//! Lowering from the GraphIt AST to GraphIR.
//!
//! The lowering resolves the algorithm language's method-call surface
//! syntax (`edges.from(frontier).to(filter).applyModified(...)`) into the
//! domain operators of Table II, tracks edgeset/vertexset aliases
//! (`edges.transpose()`, `edges.getVertices()`), and maps builtins onto
//! GraphIR intrinsics.

use std::collections::HashMap;

use ugc_frontend::ast::{AExpr, AExprKind, AStmt, AStmtKind, Decl, SourceProgram, TypeExpr};
use ugc_graphir::ir::{
    EdgeSetIteratorData, Expr, Function, LValue, Param, Program, Stmt, StmtKind,
};
use ugc_graphir::keys;
use ugc_graphir::types::{Intrinsic, Type};
use ugc_graphir::verify::verify;

use crate::MidendError;

/// Lowers a parsed (and ideally type-checked) program to GraphIR.
///
/// # Errors
///
/// Returns [`MidendError`] for constructs outside the supported subset or
/// when the result fails GraphIR verification.
pub fn lower(ast: &SourceProgram) -> Result<Program, MidendError> {
    let mut cx = Lowerer::default();
    cx.collect_decls(ast)?;
    let mut prog = Program::new();

    for d in &ast.decls {
        match d {
            Decl::Element { .. } => {}
            Decl::Const(c) => cx.lower_const(c, &mut prog)?,
            Decl::Func(_) => {}
        }
    }
    for d in &ast.decls {
        if let Decl::Func(f) = d {
            if f.name == "main" {
                let mut body = Vec::new();
                cx.lower_stmts(&f.body, &mut body)?;
                prog.main = body;
            } else {
                let params = f
                    .params
                    .iter()
                    .map(|(n, t)| Param::new(n.clone(), scalar_type(t)))
                    .collect();
                let ret = f
                    .ret
                    .as_ref()
                    .map(|(n, t)| Param::new(n.clone(), scalar_type(t)));
                let mut func = Function::new(f.name.clone(), params, ret);
                let mut body = Vec::new();
                cx.lower_stmts(&f.body, &mut body)?;
                func.body = body;
                prog.add_function(func);
            }
        }
    }

    verify(&prog).map_err(|errs| {
        MidendError::new(format!(
            "lowered program failed verification: {}",
            errs.iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        ))
    })?;
    Ok(prog)
}

fn scalar_type(t: &TypeExpr) -> Type {
    match t {
        TypeExpr::Int => Type::Int,
        TypeExpr::Float => Type::Float,
        TypeExpr::Bool => Type::Bool,
        TypeExpr::Vertex => Type::Vertex,
        TypeExpr::VertexSet => Type::VertexSet,
        TypeExpr::EdgeSet { .. } => Type::EdgeSet,
        TypeExpr::Vector(inner) => scalar_type(inner),
        TypeExpr::PriorityQueue => Type::PrioQueue,
        TypeExpr::List => Type::FrontierList,
    }
}

/// How an edge-set chain terminates.
enum Terminal {
    Apply(String),
    ApplyModified {
        func: String,
        prop: String,
        dedup: bool,
    },
    ApplyUpdatePriority(String),
}

struct ChainInfo {
    graph: String,
    transposed: bool,
    input: Option<String>,
    src_filter: Option<String>,
    dst_filter: Option<String>,
    terminal: Terminal,
}

#[derive(Default)]
struct Lowerer {
    /// edgeset var → (canonical graph var, transposed?).
    graph_vars: HashMap<String, (String, bool)>,
    /// vertexset consts aliasing "all vertices".
    all_vertices: Vec<String>,
    /// Known function names (for from(func) disambiguation).
    funcs: Vec<String>,
    /// Known property vector names.
    props: Vec<String>,
    /// Known queue names.
    queues: Vec<String>,
    /// The canonical (first-declared) graph variable.
    canonical_graph: Option<String>,
}

impl Lowerer {
    fn err<T>(msg: impl std::fmt::Display) -> Result<T, MidendError> {
        Err(MidendError::new(msg.to_string()))
    }

    fn collect_decls(&mut self, ast: &SourceProgram) -> Result<(), MidendError> {
        for d in &ast.decls {
            match d {
                Decl::Func(f) => self.funcs.push(f.name.clone()),
                Decl::Const(c) => match &c.ty {
                    TypeExpr::EdgeSet { .. } => {
                        let (base, transposed) = match &c.init {
                            Some(AExpr {
                                kind:
                                    AExprKind::MethodCall {
                                        receiver, method, ..
                                    },
                                ..
                            }) if method == "transpose" => {
                                let AExprKind::Ident(base) = &receiver.kind else {
                                    return Self::err(
                                        "transpose() receiver must be an edgeset variable",
                                    );
                                };
                                (base.clone(), true)
                            }
                            _ => (c.name.clone(), false),
                        };
                        if self.canonical_graph.is_none() && !transposed {
                            self.canonical_graph = Some(c.name.clone());
                        }
                        self.graph_vars.insert(c.name.clone(), (base, transposed));
                    }
                    TypeExpr::VertexSet => {
                        // `edges.getVertices()` aliases the full vertex set.
                        if let Some(AExpr {
                            kind: AExprKind::MethodCall { method, .. },
                            ..
                        }) = &c.init
                        {
                            if method == "getVertices" {
                                self.all_vertices.push(c.name.clone());
                            }
                        }
                    }
                    TypeExpr::Vector(_) => self.props.push(c.name.clone()),
                    TypeExpr::PriorityQueue => self.queues.push(c.name.clone()),
                    _ => {}
                },
                Decl::Element { .. } => {}
            }
        }
        // Resolve transpose aliases transitively (one level suffices).
        let resolved: HashMap<String, (String, bool)> = self
            .graph_vars
            .iter()
            .map(|(k, (base, t))| {
                let (b2, t2) = self
                    .graph_vars
                    .get(base)
                    .cloned()
                    .unwrap_or((base.clone(), false));
                (k.clone(), (b2, *t ^ t2))
            })
            .collect();
        self.graph_vars = resolved;
        Ok(())
    }

    fn lower_const(
        &mut self,
        c: &ugc_frontend::ast::ConstDecl,
        prog: &mut Program,
    ) -> Result<(), MidendError> {
        match &c.ty {
            TypeExpr::EdgeSet { .. } | TypeExpr::VertexSet => {
                // Graphs are bound by the host; vertexset aliases need no IR.
                Ok(())
            }
            TypeExpr::Vector(inner) => {
                let init = match &c.init {
                    Some(e) => self.lower_expr(e)?,
                    None => Expr::int(0),
                };
                prog.add_property(c.name.clone(), scalar_type(inner), init);
                Ok(())
            }
            TypeExpr::PriorityQueue => {
                let Some(AExpr {
                    kind: AExprKind::New { args, .. },
                    ..
                }) = &c.init
                else {
                    return Self::err(format!(
                        "priority queue `{}` must be initialized with `new priority_queue{{...}}(vector, source)`",
                        c.name
                    ));
                };
                let AExprKind::Ident(tracked) = &args[0].kind else {
                    return Self::err("priority queue's first argument must be a vector name");
                };
                let source = self.lower_expr(&args[1])?;
                prog.add_queue(c.name.clone(), tracked.clone(), source);
                Ok(())
            }
            scalar => {
                let ty = scalar_type(scalar);
                let init = c.init.as_ref().map(|e| self.lower_expr(e)).transpose()?;
                let is_extern = init.is_none();
                prog.add_global(c.name.clone(), ty, init);
                if is_extern {
                    prog.globals
                        .last_mut()
                        .expect("just pushed")
                        .meta
                        .set("extern", true);
                }
                Ok(())
            }
        }
    }

    fn is_func(&self, name: &str) -> bool {
        self.funcs.iter().any(|f| f == name)
    }

    fn is_all_vertices(&self, name: &str) -> bool {
        self.all_vertices.iter().any(|v| v == name)
    }

    fn graph_expr_name(&self) -> String {
        self.canonical_graph
            .clone()
            .unwrap_or_else(|| "edges".into())
    }

    /// Tries to interpret an expression as an edge-set operator chain.
    fn as_chain(&self, e: &AExpr) -> Result<Option<ChainInfo>, MidendError> {
        let AExprKind::MethodCall {
            receiver,
            method,
            args,
        } = &e.kind
        else {
            return Ok(None);
        };
        let terminal = match method.as_str() {
            "apply" => {
                let AExprKind::Ident(f) = &args[0].kind else {
                    return Self::err("apply expects a function name");
                };
                // Could be a vertexset apply — check the chain base below.
                Terminal::Apply(f.clone())
            }
            "applyModified" => {
                let AExprKind::Ident(f) = &args[0].kind else {
                    return Self::err("applyModified expects a function name");
                };
                let AExprKind::Ident(p) = &args[1].kind else {
                    return Self::err("applyModified expects a vector name");
                };
                let dedup = match args.get(2) {
                    Some(AExpr {
                        kind: AExprKind::Bool(b),
                        ..
                    }) => *b,
                    None => true,
                    _ => return Self::err("applyModified third argument must be a bool literal"),
                };
                Terminal::ApplyModified {
                    func: f.clone(),
                    prop: p.clone(),
                    dedup,
                }
            }
            "applyUpdatePriority" => {
                let AExprKind::Ident(f) = &args[0].kind else {
                    return Self::err("applyUpdatePriority expects a function name");
                };
                Terminal::ApplyUpdatePriority(f.clone())
            }
            _ => return Ok(None),
        };
        // Walk the receiver chain down to the edgeset variable.
        let mut input = None;
        let mut src_filter = None;
        let mut dst_filter = None;
        let mut cur: &AExpr = receiver;
        loop {
            match &cur.kind {
                AExprKind::Ident(base) => {
                    let Some((graph, transposed)) = self.graph_vars.get(base).cloned() else {
                        // Not an edgeset chain after all (e.g. vertexset.apply).
                        return Ok(None);
                    };
                    return Ok(Some(ChainInfo {
                        graph,
                        transposed,
                        input,
                        src_filter,
                        dst_filter,
                        terminal,
                    }));
                }
                AExprKind::MethodCall {
                    receiver: r,
                    method: m,
                    args: a,
                } => {
                    match m.as_str() {
                        "from" => {
                            let AExprKind::Ident(n) = &a[0].kind else {
                                return Self::err("from() expects a set or filter name");
                            };
                            if self.is_func(n) {
                                src_filter = Some(n.clone());
                            } else if self.is_all_vertices(n) {
                                input = None;
                            } else {
                                input = Some(n.clone());
                            }
                        }
                        "to" | "dstFilter" => {
                            let AExprKind::Ident(n) = &a[0].kind else {
                                return Self::err(format!("{m}() expects a function name"));
                            };
                            dst_filter = Some(n.clone());
                        }
                        "srcFilter" => {
                            let AExprKind::Ident(n) = &a[0].kind else {
                                return Self::err("srcFilter() expects a function name");
                            };
                            src_filter = Some(n.clone());
                        }
                        other => {
                            return Self::err(format!("unsupported edgeset chain method `{other}`"))
                        }
                    }
                    cur = r;
                }
                _ => return Ok(None),
            }
        }
    }

    /// Detects `set.filter(pred)` — receiver a vertexset variable or an
    /// all-vertices alias, `pred` a declared function — and builds the
    /// filter statement writing into `out_name`.
    fn as_vertex_filter(&self, e: &AExpr, out_name: &str, label: Option<String>) -> Option<Stmt> {
        let AExprKind::MethodCall {
            receiver,
            method,
            args,
        } = &e.kind
        else {
            return None;
        };
        if method != "filter" {
            return None;
        }
        let AExprKind::Ident(recv) = &receiver.kind else {
            return None;
        };
        let AExprKind::Ident(f) = &args.first()?.kind else {
            return None;
        };
        if !self.is_func(f) || self.graph_vars.contains_key(recv) {
            return None;
        }
        let input = if self.is_all_vertices(recv) {
            None
        } else {
            Some(recv.clone())
        };
        Some(Stmt {
            kind: StmtKind::VertexSetFilter {
                input,
                out: out_name.to_string(),
                filter: f.clone(),
            },
            label,
            meta: Default::default(),
        })
    }

    fn chain_to_stmt(
        &self,
        info: ChainInfo,
        output: Option<String>,
        label: Option<String>,
    ) -> Stmt {
        let (apply, tracked_prop, requires_output, dedup, ordered) = match info.terminal {
            Terminal::Apply(f) => (f, None, output.is_some(), false, false),
            Terminal::ApplyModified { func, prop, dedup } => (func, Some(prop), true, dedup, false),
            Terminal::ApplyUpdatePriority(f) => (f, None, false, false, true),
        };
        let is_all = info.input.is_none() && info.src_filter.is_none();
        let data = EdgeSetIteratorData {
            graph: info.graph,
            input: info.input,
            output,
            apply,
            src_filter: info.src_filter,
            dst_filter: info.dst_filter,
            tracked_prop,
            transposed: info.transposed,
        };
        let mut s = Stmt {
            kind: StmtKind::EdgeSetIterator(data),
            label,
            meta: Default::default(),
        };
        s.meta.set(keys::REQUIRES_OUTPUT, requires_output);
        s.meta.set(keys::IS_ALL_EDGES, is_all);
        if dedup {
            s.meta.set(keys::APPLY_DEDUPLICATION, true);
        }
        if ordered {
            s.meta.set(keys::IS_ORDERED, true);
        }
        s
    }

    fn lower_stmts(&self, stmts: &[AStmt], out: &mut Vec<Stmt>) -> Result<(), MidendError> {
        for s in stmts {
            self.lower_stmt(s, out)?;
        }
        Ok(())
    }

    fn lower_stmt(&self, s: &AStmt, out: &mut Vec<Stmt>) -> Result<(), MidendError> {
        let label = s.label.clone();
        match &s.kind {
            AStmtKind::VarDecl { name, ty, init } => {
                match init {
                    Some(e) => {
                        if let Some(chain) = self.as_chain(e)? {
                            out.push(self.chain_to_stmt(chain, Some(name.clone()), label));
                            return Ok(());
                        }
                        if let Some(st) = self.as_vertex_filter(e, name, label.clone()) {
                            out.push(st);
                            return Ok(());
                        }
                        match &e.kind {
                            AExprKind::New { ty: nty, args } => match nty {
                                TypeExpr::VertexSet => {
                                    let count = if args.is_empty() {
                                        Expr::int(0)
                                    } else {
                                        self.lower_expr(&args[0])?
                                    };
                                    out.push(Stmt {
                                        kind: StmtKind::VarDecl {
                                            name: name.clone(),
                                            ty: Type::VertexSet,
                                            init: Some(Expr::intrinsic(
                                                Intrinsic::NewVertexSet,
                                                vec![count],
                                            )),
                                        },
                                        label,
                                        meta: Default::default(),
                                    });
                                    return Ok(());
                                }
                                TypeExpr::List => {
                                    out.push(Stmt {
                                        kind: StmtKind::VarDecl {
                                            name: name.clone(),
                                            ty: Type::FrontierList,
                                            init: Some(Expr::intrinsic(
                                                Intrinsic::NewFrontierList,
                                                vec![],
                                            )),
                                        },
                                        label,
                                        meta: Default::default(),
                                    });
                                    return Ok(());
                                }
                                other => {
                                    return Self::err(format!(
                                        "cannot lower `new` of {other:?} in a statement"
                                    ))
                                }
                            },
                            AExprKind::MethodCall {
                                receiver,
                                method,
                                args,
                                ..
                            } => {
                                if method == "pop" {
                                    let AExprKind::Ident(l) = &receiver.kind else {
                                        return Self::err("pop() receiver must be a list variable");
                                    };
                                    out.push(Stmt::new(StmtKind::VarDecl {
                                        name: name.clone(),
                                        ty: Type::VertexSet,
                                        init: None,
                                    }));
                                    out.push(Stmt {
                                        kind: StmtKind::ListPopBack {
                                            list: l.clone(),
                                            out: name.clone(),
                                        },
                                        label,
                                        meta: Default::default(),
                                    });
                                    return Ok(());
                                }
                                if method == "retrieve" {
                                    let AExprKind::Ident(l) = &receiver.kind else {
                                        return Self::err(
                                            "retrieve() receiver must be a list variable",
                                        );
                                    };
                                    let idx = self.lower_expr(&args[0])?;
                                    out.push(Stmt::new(StmtKind::VarDecl {
                                        name: name.clone(),
                                        ty: Type::VertexSet,
                                        init: None,
                                    }));
                                    out.push(Stmt {
                                        kind: StmtKind::ListRetrieve {
                                            list: l.clone(),
                                            index: idx,
                                            out: name.clone(),
                                        },
                                        label,
                                        meta: Default::default(),
                                    });
                                    return Ok(());
                                }
                                // Fall through: expression-valued method call
                                // (size, dequeue_ready_set, ...).
                            }
                            _ => {}
                        }
                        let init = self.lower_expr(e)?;
                        out.push(Stmt {
                            kind: StmtKind::VarDecl {
                                name: name.clone(),
                                ty: scalar_type(ty),
                                init: Some(init),
                            },
                            label,
                            meta: Default::default(),
                        });
                        Ok(())
                    }
                    None => {
                        out.push(Stmt {
                            kind: StmtKind::VarDecl {
                                name: name.clone(),
                                ty: scalar_type(ty),
                                init: None,
                            },
                            label,
                            meta: Default::default(),
                        });
                        Ok(())
                    }
                }
            }
            AStmtKind::Assign { target, value } => {
                // Assignment of an edge-set chain into an existing variable.
                if let AExprKind::Ident(name) = &target.kind {
                    if let Some(chain) = self.as_chain(value)? {
                        out.push(self.chain_to_stmt(chain, Some(name.clone()), label));
                        return Ok(());
                    }
                    if let Some(st) = self.as_vertex_filter(value, name, label.clone()) {
                        out.push(st);
                        return Ok(());
                    }
                }
                let lv = self.lower_lvalue(target)?;
                let v = self.lower_expr(value)?;
                out.push(Stmt {
                    kind: StmtKind::Assign {
                        target: lv,
                        value: v,
                    },
                    label,
                    meta: Default::default(),
                });
                Ok(())
            }
            AStmtKind::Reduce { target, op, value } => {
                let lv = self.lower_lvalue(target)?;
                let v = self.lower_expr(value)?;
                out.push(Stmt {
                    kind: StmtKind::Reduce {
                        target: lv,
                        op: *op,
                        value: v,
                        tracking: None,
                    },
                    label,
                    meta: Default::default(),
                });
                Ok(())
            }
            AStmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self.lower_expr(cond)?;
                let mut tb = Vec::new();
                self.lower_stmts(then_body, &mut tb)?;
                let mut eb = Vec::new();
                self.lower_stmts(else_body, &mut eb)?;
                out.push(Stmt {
                    kind: StmtKind::If {
                        cond: c,
                        then_body: tb,
                        else_body: eb,
                    },
                    label,
                    meta: Default::default(),
                });
                Ok(())
            }
            AStmtKind::While { cond, body } => {
                let c = self.lower_expr(cond)?;
                let mut b = Vec::new();
                self.lower_stmts(body, &mut b)?;
                out.push(Stmt {
                    kind: StmtKind::While { cond: c, body: b },
                    label,
                    meta: Default::default(),
                });
                Ok(())
            }
            AStmtKind::For {
                var,
                start,
                end,
                body,
            } => {
                let st = self.lower_expr(start)?;
                let en = self.lower_expr(end)?;
                let mut b = Vec::new();
                self.lower_stmts(body, &mut b)?;
                out.push(Stmt {
                    kind: StmtKind::For {
                        var: var.clone(),
                        start: st,
                        end: en,
                        body: b,
                    },
                    label,
                    meta: Default::default(),
                });
                Ok(())
            }
            AStmtKind::ExprStmt(e) => {
                if let Some(chain) = self.as_chain(e)? {
                    out.push(self.chain_to_stmt(chain, None, label));
                    return Ok(());
                }
                if let AExprKind::MethodCall {
                    receiver,
                    method,
                    args,
                } = &e.kind
                {
                    if let AExprKind::Ident(recv) = &receiver.kind {
                        match method.as_str() {
                            "apply" => {
                                let AExprKind::Ident(f) = &args[0].kind else {
                                    return Self::err("apply expects a function name");
                                };
                                let set = if self.is_all_vertices(recv) {
                                    None
                                } else {
                                    Some(recv.clone())
                                };
                                let mut st = Stmt {
                                    kind: StmtKind::VertexSetIterator {
                                        set,
                                        apply: f.clone(),
                                    },
                                    label,
                                    meta: Default::default(),
                                };
                                st.meta.set(keys::IS_ALL_VERTS, self.is_all_vertices(recv));
                                st.meta.set(keys::IS_PARALLEL, true);
                                out.push(st);
                                return Ok(());
                            }
                            "addVertex" => {
                                let v = self.lower_expr(&args[0])?;
                                out.push(Stmt {
                                    kind: StmtKind::EnqueueVertex {
                                        set: Some(recv.clone()),
                                        vertex: v,
                                    },
                                    label,
                                    meta: Default::default(),
                                });
                                return Ok(());
                            }
                            "append" => {
                                let AExprKind::Ident(setname) = &args[0].kind else {
                                    return Self::err("append expects a set variable");
                                };
                                out.push(Stmt {
                                    kind: StmtKind::ListAppend {
                                        list: recv.clone(),
                                        set: setname.clone(),
                                    },
                                    label,
                                    meta: Default::default(),
                                });
                                return Ok(());
                            }
                            "updatePriorityMin" | "updatePrioritySum" => {
                                let v = self.lower_expr(&args[0])?;
                                let p = self.lower_expr(&args[1])?;
                                let op = if method == "updatePriorityMin" {
                                    ugc_graphir::types::ReduceOp::Min
                                } else {
                                    ugc_graphir::types::ReduceOp::Sum
                                };
                                out.push(Stmt {
                                    kind: StmtKind::UpdatePriority {
                                        queue: recv.clone(),
                                        vertex: v,
                                        op,
                                        value: p,
                                    },
                                    label,
                                    meta: Default::default(),
                                });
                                return Ok(());
                            }
                            _ => {}
                        }
                    }
                }
                let ex = self.lower_expr(e)?;
                out.push(Stmt {
                    kind: StmtKind::ExprStmt(ex),
                    label,
                    meta: Default::default(),
                });
                Ok(())
            }
            AStmtKind::Print(e) => {
                let ex = self.lower_expr(e)?;
                out.push(Stmt {
                    kind: StmtKind::Print(ex),
                    label,
                    meta: Default::default(),
                });
                Ok(())
            }
            AStmtKind::Delete(name) => {
                out.push(Stmt {
                    kind: StmtKind::Delete { name: name.clone() },
                    label,
                    meta: Default::default(),
                });
                Ok(())
            }
            AStmtKind::Break => {
                out.push(Stmt {
                    kind: StmtKind::Break,
                    label,
                    meta: Default::default(),
                });
                Ok(())
            }
        }
    }

    fn lower_lvalue(&self, e: &AExpr) -> Result<LValue, MidendError> {
        match &e.kind {
            AExprKind::Ident(n) => Ok(LValue::Var(n.clone())),
            AExprKind::Index { base, index } => {
                let AExprKind::Ident(p) = &base.kind else {
                    return Self::err("only named vectors can be indexed");
                };
                Ok(LValue::prop(p.clone(), self.lower_expr(index)?))
            }
            _ => Self::err("invalid assignment target"),
        }
    }

    fn lower_expr(&self, e: &AExpr) -> Result<Expr, MidendError> {
        match &e.kind {
            AExprKind::Int(v) => Ok(Expr::int(*v)),
            AExprKind::Float(v) => Ok(Expr::float(*v)),
            AExprKind::Bool(v) => Ok(Expr::bool(*v)),
            AExprKind::Str(s) => Self::err(format!("string literal {s:?} outside load()")),
            AExprKind::Ident(n) => Ok(Expr::var(n.clone())),
            AExprKind::Index { base, index } => {
                let AExprKind::Ident(p) = &base.kind else {
                    return Self::err("only named vectors can be indexed");
                };
                Ok(Expr::prop(p.clone(), self.lower_expr(index)?))
            }
            AExprKind::Binary { op, lhs, rhs } => {
                Ok(Expr::bin(*op, self.lower_expr(lhs)?, self.lower_expr(rhs)?))
            }
            AExprKind::Unary { op, operand } => Ok(Expr::un(*op, self.lower_expr(operand)?)),
            AExprKind::Call { callee, args } => match callee.as_str() {
                "fabs" => Ok(Expr::intrinsic(
                    Intrinsic::Abs,
                    vec![self.lower_expr(&args[0])?],
                )),
                "out_degree" => Ok(Expr::intrinsic(
                    Intrinsic::OutDegree,
                    vec![
                        Expr::var(self.graph_expr_name()),
                        self.lower_expr(&args[0])?,
                    ],
                )),
                "in_degree" => Ok(Expr::intrinsic(
                    Intrinsic::InDegree,
                    vec![
                        Expr::var(self.graph_expr_name()),
                        self.lower_expr(&args[0])?,
                    ],
                )),
                "intersect_count" => Ok(Expr::intrinsic(
                    Intrinsic::IntersectCount,
                    vec![
                        Expr::var(self.graph_expr_name()),
                        self.lower_expr(&args[0])?,
                        self.lower_expr(&args[1])?,
                    ],
                )),
                "to_float" => Ok(Expr::un(
                    ugc_graphir::types::UnOp::ToFloat,
                    self.lower_expr(&args[0])?,
                )),
                "to_int" => Ok(Expr::un(
                    ugc_graphir::types::UnOp::ToInt,
                    self.lower_expr(&args[0])?,
                )),
                "load" => Self::err("load() is only valid as an edgeset initializer"),
                udf => {
                    let mut lowered = Vec::with_capacity(args.len());
                    for a in args {
                        lowered.push(self.lower_expr(a)?);
                    }
                    Ok(Expr::call(udf, lowered))
                }
            },
            AExprKind::MethodCall {
                receiver,
                method,
                args: _,
            } => {
                let AExprKind::Ident(recv) = &receiver.kind else {
                    return Self::err(format!(
                        "method `{method}` not supported in expression position"
                    ));
                };
                match method.as_str() {
                    "size" | "getVertexSetSize" => {
                        if self.is_all_vertices(recv) {
                            Ok(Expr::intrinsic(
                                Intrinsic::NumVertices,
                                vec![Expr::var(self.graph_expr_name())],
                            ))
                        } else {
                            Ok(Expr::intrinsic(
                                Intrinsic::VertexSetSize,
                                vec![Expr::var(recv.clone())],
                            ))
                        }
                    }
                    "getSize" => Ok(Expr::intrinsic(
                        Intrinsic::ListSize,
                        vec![Expr::var(recv.clone())],
                    )),
                    "finished" => Ok(Expr::intrinsic(
                        Intrinsic::PrioQueueFinished,
                        vec![Expr::var(recv.clone())],
                    )),
                    "dequeue_ready_set" => Ok(Expr::intrinsic(
                        Intrinsic::DequeueReadySet,
                        vec![Expr::var(recv.clone())],
                    )),
                    other => Self::err(format!(
                        "method `{other}` not supported in expression position"
                    )),
                }
            }
            AExprKind::New { .. } => Self::err("`new` only supported as a variable initializer"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugc_graphir::visit::find_labeled;

    const BFS_SRC: &str = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load("g");
const vertices : vertexset{Vertex} = edges.getVertices();
const parent : vector{Vertex}(int) = -1;
const start_vertex : Vertex;
func toFilter(v : Vertex) -> output : bool
    output = (parent[v] == -1);
end
func updateEdge(src : Vertex, dst : Vertex)
    parent[dst] = src;
end
func main()
    var frontier : vertexset{Vertex} = new vertexset{Vertex}(0);
    frontier.addVertex(start_vertex);
    parent[start_vertex] = start_vertex;
    #s0# while (frontier.getVertexSetSize() != 0)
        #s1# var output : vertexset{Vertex} = edges.from(frontier).to(toFilter).applyModified(updateEdge, parent, true);
        delete frontier;
        frontier = output;
    end
end
"#;

    fn lower_src(src: &str) -> Program {
        let ast = ugc_frontend::parse_and_check(src).unwrap();
        lower(&ast).unwrap()
    }

    #[test]
    fn bfs_lowering_shape() {
        let p = lower_src(BFS_SRC);
        assert!(p.property("parent").is_some());
        assert!(p.global("start_vertex").is_some());
        assert!(p.global("start_vertex").unwrap().meta.flag("extern"));
        let s1 = find_labeled(&p, "s1").unwrap();
        let StmtKind::EdgeSetIterator(d) = &s1.kind else {
            panic!("expected EdgeSetIterator, got {:?}", s1.kind)
        };
        assert_eq!(d.graph, "edges");
        assert_eq!(d.input.as_deref(), Some("frontier"));
        assert_eq!(d.output.as_deref(), Some("output"));
        assert_eq!(d.dst_filter.as_deref(), Some("toFilter"));
        assert_eq!(d.tracked_prop.as_deref(), Some("parent"));
        assert!(s1.meta.flag(keys::REQUIRES_OUTPUT));
        assert!(s1.meta.flag(keys::APPLY_DEDUPLICATION));
        assert!(!s1.meta.flag(keys::IS_ALL_EDGES));
    }

    #[test]
    fn all_edges_apply_lowering() {
        let src = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load("g");
const rank : vector{Vertex}(float) = 0.0;
func upd(src : Vertex, dst : Vertex)
    rank[dst] += 1.0;
end
func main()
    #s1# edges.apply(upd);
end
"#;
        let p = lower_src(src);
        let s1 = find_labeled(&p, "s1").unwrap();
        let StmtKind::EdgeSetIterator(d) = &s1.kind else {
            panic!()
        };
        assert!(d.input.is_none());
        assert!(d.output.is_none());
        assert!(s1.meta.flag(keys::IS_ALL_EDGES));
        assert!(!s1.meta.flag(keys::REQUIRES_OUTPUT));
    }

    #[test]
    fn transpose_alias_resolved() {
        let src = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load("g");
const t_edges : edgeset{Edge}(Vertex,Vertex) = edges.transpose();
const deps : vector{Vertex}(float) = 0.0;
func upd(src : Vertex, dst : Vertex)
    deps[dst] += deps[src];
end
func main()
    #s1# t_edges.apply(upd);
end
"#;
        let p = lower_src(src);
        let s1 = find_labeled(&p, "s1").unwrap();
        let StmtKind::EdgeSetIterator(d) = &s1.kind else {
            panic!()
        };
        assert_eq!(d.graph, "edges");
        assert!(d.transposed);
    }

    #[test]
    fn vertices_size_becomes_num_vertices() {
        let src = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load("g");
const vertices : vertexset{Vertex} = edges.getVertices();
const damp : float = 0.85;
const beta : float = (1.0 - damp) / to_float(vertices.size());
func main()
end
"#;
        let p = lower_src(src);
        let g = p.global("beta").unwrap();
        let text = ugc_graphir::printer::print_expr(g.init.as_ref().unwrap());
        assert!(text.contains("NumVertices"), "{text}");
    }

    #[test]
    fn vertexset_apply_lowering() {
        let src = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load("g");
const vertices : vertexset{Vertex} = edges.getVertices();
const r : vector{Vertex}(float) = 0.0;
func reset(v : Vertex)
    r[v] = 0.0;
end
func main()
    vertices.apply(reset);
    var f : vertexset{Vertex} = new vertexset{Vertex}(0);
    f.apply(reset);
end
"#;
        let p = lower_src(src);
        let StmtKind::VertexSetIterator { set, .. } = &p.main[0].kind else {
            panic!()
        };
        assert!(set.is_none());
        assert!(p.main[0].meta.flag(keys::IS_ALL_VERTS));
        let StmtKind::VertexSetIterator { set, .. } = &p.main[2].kind else {
            panic!()
        };
        assert_eq!(set.as_deref(), Some("f"));
    }

    #[test]
    fn priority_queue_lowering() {
        let src = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex,int) = load("g");
const dist : vector{Vertex}(int) = 2147483647;
const start_vertex : Vertex;
const pq : priority_queue{Vertex}(int) = new priority_queue{Vertex}(int)(dist, start_vertex);
func relax(src : Vertex, dst : Vertex, weight : int)
    var nd : int = dist[src] + weight;
    pq.updatePriorityMin(dst, nd);
end
func main()
    dist[start_vertex] = 0;
    #s0# while (pq.finished() == false)
        var frontier : vertexset{Vertex} = pq.dequeue_ready_set();
        #s1# edges.from(frontier).applyUpdatePriority(relax);
        delete frontier;
    end
end
"#;
        let p = lower_src(src);
        assert_eq!(p.queues.len(), 1);
        assert_eq!(p.queues[0].tracked_property, "dist");
        let s1 = find_labeled(&p, "s1").unwrap();
        assert!(s1.meta.flag(keys::IS_ORDERED));
        let relax = p.function("relax").unwrap();
        assert!(relax
            .body
            .iter()
            .any(|s| matches!(s.kind, StmtKind::UpdatePriority { .. })));
    }

    #[test]
    fn list_operations_lowering() {
        let src = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load("g");
func main()
    var l : list{vertexset{Vertex}} = new list{vertexset{Vertex}}();
    var f : vertexset{Vertex} = new vertexset{Vertex}(4);
    l.append(f);
    var n : int = l.getSize();
    var g : vertexset{Vertex} = l.pop();
    delete g;
end
"#;
        let p = lower_src(src);
        assert!(p
            .main
            .iter()
            .any(|s| matches!(s.kind, StmtKind::ListAppend { .. })));
        assert!(p
            .main
            .iter()
            .any(|s| matches!(s.kind, StmtKind::ListPopBack { .. })));
    }

    #[test]
    fn rejects_unknown_chain_method() {
        let src = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load("g");
func f(src : Vertex, dst : Vertex)
end
func main()
    edges.explode(f).apply(f);
end
"#;
        let ast = ugc_frontend::parse(src).unwrap();
        assert!(lower(&ast).is_err());
    }
}
