//! The shared immutable graph cache.
//!
//! Every `(dataset, scale)` pair is generated at most once, on first
//! touch, and then served to all requests behind an `Arc`. Amortizing
//! graph construction is the first half of the serving story (the second
//! is batching the traversals themselves): dataset generation dominates
//! per-query cost for everything but the largest traversals.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use ugc_graph::{Dataset, Graph, Scale};

use crate::Stat;

/// Build-once, share-forever store of generated datasets.
///
/// The outer map lock is held only long enough to fetch the per-key cell;
/// the (potentially slow) generation runs inside the cell's `OnceLock`,
/// so concurrent builders of *different* graphs never serialize and
/// concurrent requesters of the *same* graph build it exactly once.
pub struct GraphCache {
    map: Mutex<HashMap<(Dataset, Scale), Arc<OnceLock<Arc<Graph>>>>>,
    builds: Stat,
    hits: Stat,
}

impl Default for GraphCache {
    fn default() -> Self {
        GraphCache::new()
    }
}

impl GraphCache {
    /// An empty cache.
    pub fn new() -> GraphCache {
        GraphCache {
            map: Mutex::new(HashMap::new()),
            builds: Stat::new("serve.cache.builds"),
            hits: Stat::new("serve.cache.hits"),
        }
    }

    /// The graph for `(dataset, scale)`, generating it on first touch.
    pub fn get(&self, dataset: Dataset, scale: Scale) -> Arc<Graph> {
        let cell = self
            .map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry((dataset, scale))
            .or_default()
            .clone();
        if let Some(g) = cell.get() {
            self.hits.incr();
            return g.clone();
        }
        // Losers of the init race block here until the winner's build
        // finishes; neither counts a hit (both had to wait for the build).
        cell.get_or_init(|| {
            self.builds.incr();
            Arc::new(dataset.generate(scale))
        })
        .clone()
    }

    /// Graphs built so far (cache misses).
    pub fn builds(&self) -> u64 {
        self.builds.get()
    }

    /// Lookups served from an already-built graph.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Distinct `(dataset, scale)` entries resident.
    pub fn resident(&self) -> usize {
        self.map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_once_and_shares() {
        let cache = GraphCache::new();
        let a = cache.get(Dataset::RoadNetCa, Scale::Tiny);
        let b = cache.get(Dataset::RoadNetCa, Scale::Tiny);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.builds(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.resident(), 1);
    }

    #[test]
    fn concurrent_first_touch_builds_exactly_once() {
        let cache = Arc::new(GraphCache::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = cache.clone();
                std::thread::spawn(move || c.get(Dataset::Pokec, Scale::Tiny).num_vertices())
            })
            .collect();
        let sizes: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(sizes.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(cache.builds(), 1);
    }

    #[test]
    fn distinct_keys_are_distinct_graphs() {
        let cache = GraphCache::new();
        cache.get(Dataset::RoadNetCa, Scale::Tiny);
        cache.get(Dataset::Pokec, Scale::Tiny);
        assert_eq!(cache.builds(), 2);
        assert_eq!(cache.resident(), 2);
    }
}
