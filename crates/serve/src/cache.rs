//! The shared immutable graph cache, byte-accounted and bounded.
//!
//! Every `(dataset, scale)` pair is generated at most once per residency,
//! on first touch, and then served to all requests behind an `Arc`.
//! Amortizing graph construction is the first half of the serving story
//! (the second is batching the traversals themselves): dataset generation
//! dominates per-query cost for everything but the largest traversals.
//!
//! # Byte accounting and eviction
//!
//! With a byte cap set ([`GraphCache::with_cap`], wired to
//! `UGC_CACHE_BYTES` by `repro serve`), every resident graph is charged
//! its *eventual* footprint ([`Graph::resident_bytes`] — out-CSR plus
//! the lazily-materialized transpose) the moment it is inserted, and the
//! cache holds a hard invariant: **charged resident bytes never exceed
//! the cap**. Inserting a graph that does not fit evicts unpinned
//! entries in least-recently-used order first; if the graph still does
//! not fit — everything else is pinned by in-flight batches, or the
//! graph alone is bigger than the cap — the build is abandoned and the
//! caller gets [`CacheOverflow`], which the executor surfaces as
//! `err overloaded` (shed, not served). With no cap the cache behaves
//! exactly as before: build once, share forever.
//!
//! # Pinning
//!
//! [`GraphCache::get`] returns a [`PinnedGraph`] guard. While any guard
//! for a key is alive the entry cannot be evicted — a batch mid-traversal
//! keeps its graph resident no matter what pressure later builds apply.
//! Dropping the guard unpins; the `Arc<Graph>` inside may outlive
//! eviction (the tuner holds plain `Arc`s), but evicted bytes are no
//! longer charged to the cache.

use std::collections::HashMap;
use std::ops::Deref;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

use ugc_graph::{Dataset, Graph, Scale};

use crate::Stat;

/// Why a [`GraphCache::get`] was refused: admitting the build would
/// break the byte cap even after evicting every unpinned entry.
#[derive(Debug, Clone, Copy)]
pub struct CacheOverflow {
    /// Bytes the requested graph would charge.
    pub needed: usize,
    /// The configured cap.
    pub cap: usize,
    /// Bytes currently charged (all of it pinned, or the graph simply
    /// does not fit alone).
    pub resident: usize,
}

impl std::fmt::Display for CacheOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "graph needs {} bytes but cache cap is {} ({} resident and pinned); retry later",
            self.needed, self.cap, self.resident
        )
    }
}

/// A build in flight: the winner publishes the outcome here so waiters
/// neither rebuild nor busy-wait.
struct BuildCell {
    outcome: Mutex<Option<Result<Arc<Graph>, CacheOverflow>>>,
    done: Condvar,
}

enum Slot {
    /// Built and charged. `pins` guards eviction; `last_use` is a
    /// logical LRU tick.
    Ready {
        graph: Arc<Graph>,
        bytes: usize,
        pins: usize,
        last_use: u64,
    },
    /// First touch in progress; waiters block on the cell.
    Building(Arc<BuildCell>),
}

struct CacheState {
    map: HashMap<(Dataset, Scale), Slot>,
    /// Bytes charged by `Ready` slots. Invariant: `<= cap` when capped.
    resident_bytes: usize,
    /// Monotone LRU clock.
    tick: u64,
}

/// Build-once, share-while-resident store of generated datasets.
///
/// The map lock is never held across a graph build: first touch installs
/// a [`Slot::Building`] placeholder, builds unlocked, then re-locks to
/// charge bytes and (maybe) evict. Concurrent requesters of the same key
/// wait on the build cell; concurrent builders of different keys never
/// serialize.
pub struct GraphCache {
    state: Mutex<CacheState>,
    cap: Option<usize>,
    builds: Stat,
    hits: Stat,
    evictions: Stat,
}

/// An access guard: the graph plus an eviction pin on its cache entry.
/// Dropping the guard unpins. Derefs to [`Graph`].
pub struct PinnedGraph {
    cache: Arc<GraphCache>,
    key: (Dataset, Scale),
    graph: Arc<Graph>,
}

impl PinnedGraph {
    /// The shared graph, for handing `Arc` clones to the tuner (clones
    /// do not pin — only this guard does).
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }
}

impl std::fmt::Debug for PinnedGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PinnedGraph")
            .field("dataset", &self.key.0)
            .field("scale", &self.key.1)
            .finish_non_exhaustive()
    }
}

impl Deref for PinnedGraph {
    type Target = Graph;
    fn deref(&self) -> &Graph {
        &self.graph
    }
}

impl Drop for PinnedGraph {
    fn drop(&mut self) {
        self.cache.unpin(self.key);
    }
}

impl Default for GraphCache {
    fn default() -> Self {
        GraphCache::new()
    }
}

impl GraphCache {
    /// An unbounded cache (build once, share forever).
    pub fn new() -> GraphCache {
        GraphCache::with_cap(None)
    }

    /// A cache charging at most `cap` bytes when `Some`.
    pub fn with_cap(cap: Option<usize>) -> GraphCache {
        GraphCache {
            state: Mutex::new(CacheState {
                map: HashMap::new(),
                resident_bytes: 0,
                tick: 0,
            }),
            cap,
            builds: Stat::new("serve.cache.builds"),
            hits: Stat::new("serve.cache.hits"),
            evictions: Stat::new("serve.cache.evictions"),
        }
    }

    /// The graph for `(dataset, scale)`, pinned against eviction for the
    /// guard's lifetime; generated (and charged) on first touch.
    ///
    /// # Errors
    ///
    /// [`CacheOverflow`] when a capped cache cannot admit the graph even
    /// after evicting every unpinned entry. Waiters on a failed build
    /// fail the same way without re-attempting the build.
    pub fn get(
        self: &Arc<Self>,
        dataset: Dataset,
        scale: Scale,
    ) -> Result<PinnedGraph, CacheOverflow> {
        let key = (dataset, scale);
        loop {
            let cell = {
                let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
                st.tick += 1;
                let tick = st.tick;
                match st.map.get_mut(&key) {
                    Some(Slot::Ready {
                        graph,
                        pins,
                        last_use,
                        ..
                    }) => {
                        *pins += 1;
                        *last_use = tick;
                        let graph = graph.clone();
                        self.hits.incr();
                        return Ok(PinnedGraph {
                            cache: self.clone(),
                            key,
                            graph,
                        });
                    }
                    Some(Slot::Building(cell)) => cell.clone(),
                    None => {
                        // First touch: install the placeholder and build
                        // outside the lock.
                        let cell = Arc::new(BuildCell {
                            outcome: Mutex::new(None),
                            done: Condvar::new(),
                        });
                        st.map.insert(key, Slot::Building(cell.clone()));
                        drop(st);
                        return self.build_and_charge(key, cell);
                    }
                }
            };
            // Wait out someone else's build, then re-examine the map: the
            // slot is usually Ready by now (pin it via the loop), but may
            // have been evicted again under pressure — rebuild then.
            let mut outcome = cell.outcome.lock().unwrap_or_else(PoisonError::into_inner);
            while outcome.is_none() {
                outcome = cell
                    .done
                    .wait(outcome)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            if let Some(Err(of)) = *outcome {
                return Err(of);
            }
            // Builder succeeded: loop back to pin the Ready slot. No hit
            // is counted for waiters — they paid the build latency too.
        }
    }

    /// Builds `key`'s graph, then charges it under the lock (evicting as
    /// needed) and publishes the outcome to waiters.
    fn build_and_charge(
        self: &Arc<Self>,
        key: (Dataset, Scale),
        cell: Arc<BuildCell>,
    ) -> Result<PinnedGraph, CacheOverflow> {
        let graph = Arc::new(key.0.generate(key.1));
        let bytes = graph.resident_bytes();
        let result = {
            let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            if self.make_room(&mut st, bytes) {
                self.builds.incr();
                st.resident_bytes += bytes;
                st.tick += 1;
                let tick = st.tick;
                st.map.insert(
                    key,
                    Slot::Ready {
                        graph: graph.clone(),
                        bytes,
                        pins: 1,
                        last_use: tick,
                    },
                );
                Ok(graph)
            } else {
                // Abandon: remove the placeholder so a later, calmer
                // first touch can try again.
                st.map.remove(&key);
                Err(CacheOverflow {
                    needed: bytes,
                    cap: self.cap.unwrap_or(usize::MAX),
                    resident: st.resident_bytes,
                })
            }
        };
        let mut outcome = cell.outcome.lock().unwrap_or_else(PoisonError::into_inner);
        *outcome = Some(result.clone());
        cell.done.notify_all();
        drop(outcome);
        result.map(|graph| PinnedGraph {
            cache: self.clone(),
            key,
            graph,
        })
    }

    /// Evicts unpinned entries (LRU first) until `needed` more bytes fit
    /// under the cap. Returns false when they cannot.
    fn make_room(&self, st: &mut CacheState, needed: usize) -> bool {
        let Some(cap) = self.cap else { return true };
        if needed > cap {
            return false;
        }
        while st.resident_bytes + needed > cap {
            let victim = st
                .map
                .iter()
                .filter_map(|(k, slot)| match slot {
                    Slot::Ready {
                        pins: 0, last_use, ..
                    } => Some((*last_use, *k)),
                    _ => None,
                })
                .min_by_key(|(last_use, _)| *last_use)
                .map(|(_, k)| k);
            let Some(vk) = victim else { return false };
            if let Some(Slot::Ready { bytes, .. }) = st.map.remove(&vk) {
                st.resident_bytes -= bytes;
                self.evictions.incr();
            }
        }
        true
    }

    fn unpin(&self, key: (Dataset, Scale)) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(Slot::Ready { pins, .. }) = st.map.get_mut(&key) {
            *pins = pins.saturating_sub(1);
        }
    }

    /// Graphs built so far (cache misses; rebuilds after eviction count
    /// again).
    pub fn builds(&self) -> u64 {
        self.builds.get()
    }

    /// Lookups served from an already-built graph.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Entries evicted under byte pressure.
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }

    /// Distinct `(dataset, scale)` entries resident (built or building).
    pub fn resident(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .map
            .len()
    }

    /// Bytes currently charged by resident graphs.
    pub fn resident_bytes(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .resident_bytes
    }

    /// The configured byte cap, if any.
    pub fn cap_bytes(&self) -> Option<usize> {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_once_and_shares() {
        let cache = Arc::new(GraphCache::new());
        let a = cache.get(Dataset::RoadNetCa, Scale::Tiny).unwrap();
        let b = cache.get(Dataset::RoadNetCa, Scale::Tiny).unwrap();
        assert!(Arc::ptr_eq(a.graph(), b.graph()));
        assert_eq!(cache.builds(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.resident(), 1);
        assert_eq!(cache.evictions(), 0);
        assert!(cache.resident_bytes() > 0);
    }

    #[test]
    fn concurrent_first_touch_builds_exactly_once() {
        let cache = Arc::new(GraphCache::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = cache.clone();
                std::thread::spawn(move || {
                    c.get(Dataset::Pokec, Scale::Tiny).unwrap().num_vertices()
                })
            })
            .collect();
        let sizes: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(sizes.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(cache.builds(), 1);
    }

    #[test]
    fn distinct_keys_are_distinct_graphs() {
        let cache = Arc::new(GraphCache::new());
        cache.get(Dataset::RoadNetCa, Scale::Tiny).unwrap();
        cache.get(Dataset::Pokec, Scale::Tiny).unwrap();
        assert_eq!(cache.builds(), 2);
        assert_eq!(cache.resident(), 2);
    }

    #[test]
    fn lru_eviction_respects_the_cap() {
        // Size the cap to hold exactly one tiny graph at a time.
        let probe = Arc::new(GraphCache::new());
        let one = probe
            .get(Dataset::RoadNetCa, Scale::Tiny)
            .unwrap()
            .resident_bytes();
        let two = probe
            .get(Dataset::Pokec, Scale::Tiny)
            .unwrap()
            .resident_bytes();
        let cap = one.max(two) + one.min(two) / 2;
        let cache = Arc::new(GraphCache::with_cap(Some(cap)));
        drop(cache.get(Dataset::RoadNetCa, Scale::Tiny).unwrap());
        assert!(cache.resident_bytes() <= cap);
        // The second build evicts the first (unpinned) graph.
        drop(cache.get(Dataset::Pokec, Scale::Tiny).unwrap());
        assert!(cache.resident_bytes() <= cap, "cap is a hard invariant");
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.resident(), 1);
        // Re-touching the evicted key rebuilds.
        drop(cache.get(Dataset::RoadNetCa, Scale::Tiny).unwrap());
        assert_eq!(cache.builds(), 3);
    }

    #[test]
    fn pinned_entries_survive_pressure_and_shed_instead() {
        let probe = Arc::new(GraphCache::new());
        let one = probe
            .get(Dataset::RoadNetCa, Scale::Tiny)
            .unwrap()
            .resident_bytes();
        let cache = Arc::new(GraphCache::with_cap(Some(one)));
        let pinned = cache.get(Dataset::RoadNetCa, Scale::Tiny).unwrap();
        // While pinned, a second graph cannot evict it: overflow.
        let err = cache.get(Dataset::Pokec, Scale::Tiny).unwrap_err();
        assert!(err.resident > 0);
        assert_eq!(cache.resident(), 1, "pinned entry stayed");
        assert!(cache.resident_bytes() <= one);
        // Unpinned, the same request succeeds by evicting.
        drop(pinned);
        assert!(cache.get(Dataset::Pokec, Scale::Tiny).is_ok());
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn oversized_graph_is_refused_outright() {
        let cache = Arc::new(GraphCache::with_cap(Some(8)));
        let err = cache.get(Dataset::RoadNetCa, Scale::Tiny).unwrap_err();
        assert_eq!(err.cap, 8);
        assert!(err.needed > 8);
        assert_eq!(cache.resident(), 0, "abandoned build leaves no slot");
        // A later touch retries (and fails the same way) rather than
        // waiting on a dead build cell.
        assert!(cache.get(Dataset::RoadNetCa, Scale::Tiny).is_err());
    }
}
