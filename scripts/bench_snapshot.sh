#!/usr/bin/env bash
# Records a benchmark snapshot: runs the CPU fig8 benches plus the
# pool_dispatch microbenchmark at a fixed seed/scale and writes the JSON
# lines into BENCH_<n>.json at the repo root (the perf trajectory the
# ROADMAP tracks).
#
# Usage: scripts/bench_snapshot.sh [N]
#   N        snapshot number (default 3); output file BENCH_<N>.json
#
# Env:
#   UGC_BENCH_OUT      override the output path entirely (CI smoke runs
#                      point this at target/ so the tracked snapshot is
#                      untouched)
#   UGC_BENCH_SAMPLES  timed iterations per bench (default 7 here)
#   UGC_BENCH_WARMUP   warmup iterations per bench (default 2 here)
set -euo pipefail

cd "$(dirname "$0")/.."

N="${1:-3}"
OUT="${UGC_BENCH_OUT:-BENCH_${N}.json}"
export UGC_BENCH_SAMPLES="${UGC_BENCH_SAMPLES:-7}"
export UGC_BENCH_WARMUP="${UGC_BENCH_WARMUP:-2}"

TMP="$(mktemp)"
RAW="$(mktemp)"
trap 'rm -f "$TMP" "$RAW"' EXIT

# Runs one bench binary and appends its JSON lines to $TMP. Capturing to a
# file first (instead of piping into grep) makes the bench's own exit code
# the one that gates the script — a crashing bench can't hide behind a
# successful grep, and grep can't hand the bench a broken pipe mid-print.
run_bench() {
  local bench="$1"
  shift
  cargo bench --offline -q -p ugc-bench --bench "$bench" -- "$@" >"$RAW"
  grep '^{' "$RAW" >>"$TMP"
}

echo "== fig8 CPU cells (fixed generator seeds, tiny scale)" >&2
run_bench fig8_speedups cpu/

echo "== pool dispatch microbenchmark" >&2
run_bench pool_dispatch

echo "== guided vs blind autotuning (all targets, tiny scale)" >&2
run_bench guided_tuning

# Headline comparison the ROADMAP tracks: at n=1M the persistent pool must
# beat (or at least match) spawn-per-call dispatch. Extract both medians
# from the bench lines so the snapshot itself records the verdict.
spawn_1m=$(awk -F'"median_ns":' \
  '/"group":"pool_dispatch\/n=1048576"/ && /"label":"spawn"/ {split($2,a,","); print a[1]; exit}' "$TMP")
pool_1m=$(awk -F'"median_ns":' \
  '/"group":"pool_dispatch\/n=1048576"/ && /"label":"pool"/ {split($2,a,","); print a[1]; exit}' "$TMP")

# Second headline: across the guided_tuning suite, the cost-model-pruned
# + warm-started search must spend several times fewer measurements than
# the blind greedy search it replaced. Summed over the simulated targets
# only — their cycle counts are deterministic, so the ratio is exactly
# reproducible; the CPU cells (wall-clock, noisy greedy paths) stay in
# the bench lines but out of the headline.
meas_blind=$(awk -F'"measurements":' \
  '/"group":"guided_tuning\// && !/"group":"guided_tuning\/CPU\// && /"label":"blind"/ {split($2,a,","); s+=a[1]} END {print s+0}' "$TMP")
meas_guided=$(awk -F'"measurements":' \
  '/"group":"guided_tuning\// && !/"group":"guided_tuning\/CPU\// && /"label":"guided"/ {split($2,a,","); s+=a[1]} END {print s+0}' "$TMP")

# Assemble a single JSON document: metadata + the individual bench lines.
{
  printf '{\n'
  printf '  "snapshot": %s,\n' "$N"
  printf '  "host_threads": %s,\n' "$(nproc 2>/dev/null || echo 1)"
  printf '  "samples": %s,\n' "$UGC_BENCH_SAMPLES"
  printf '  "warmup": %s,\n' "$UGC_BENCH_WARMUP"
  if [ -n "$spawn_1m" ] && [ -n "$pool_1m" ]; then
    printf '  "pool_vs_spawn_1m": {"spawn_ns": %s, "pool_ns": %s, "pool_wins": %s},\n' \
      "$spawn_1m" "$pool_1m" \
      "$(awk -v s="$spawn_1m" -v p="$pool_1m" 'BEGIN{print (p <= s) ? "true" : "false"}')"
  fi
  if [ "${meas_guided:-0}" -gt 0 ]; then
    printf '  "guided_vs_blind": {"measurements_blind": %s, "measurements_guided": %s, "budget_ratio": %s, "simulated_targets_only": true},\n' \
      "$meas_blind" "$meas_guided" \
      "$(awk -v b="$meas_blind" -v g="$meas_guided" 'BEGIN{printf "%.2f", b / g}')"
  fi
  printf '  "benches": [\n'
  sed '$!s/$/,/; s/^/    /' "$TMP"
  printf '  ]\n'
  printf '}\n'
} >"$OUT"

if [ -n "$spawn_1m" ] && [ -n "$pool_1m" ]; then
  echo "pool vs spawn @1M: pool ${pool_1m} ns vs spawn ${spawn_1m} ns" >&2
fi
if [ "${meas_guided:-0}" -gt 0 ]; then
  echo "guided vs blind tuning (sim targets): ${meas_guided} vs ${meas_blind} measurements" >&2
fi
echo "wrote $OUT ($(grep -c '"group"' "$OUT") bench entries)" >&2
