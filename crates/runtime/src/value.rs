//! The scalar value domain of executing GraphIR programs.

use std::fmt;

use ugc_graphir::types::{BinOp, Type, UnOp};

/// A runtime scalar value. Vertices are represented as `Int` (with `-1`
/// conventionally meaning "none"), matching GraphIt semantics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// 64-bit integer (also vertex ids).
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// The zero/identity value for a GraphIR type.
    pub fn zero_of(ty: Type) -> Value {
        match ty {
            Type::Float => Value::Float(0.0),
            Type::Bool => Value::Bool(false),
            _ => Value::Int(0),
        }
    }

    /// Interprets as integer.
    ///
    /// # Panics
    ///
    /// Panics when the value is a float (programs never implicitly narrow).
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(v) => v,
            Value::Bool(b) => b as i64,
            Value::Float(v) => panic!("expected int value, found float {v}"),
        }
    }

    /// Interprets as float (ints widen).
    pub fn as_float(self) -> f64 {
        match self {
            Value::Float(v) => v,
            Value::Int(v) => v as f64,
            Value::Bool(b) => b as u8 as f64,
        }
    }

    /// Interprets as boolean.
    ///
    /// # Panics
    ///
    /// Panics when the value is not a boolean or integer.
    pub fn as_bool(self) -> bool {
        match self {
            Value::Bool(b) => b,
            Value::Int(v) => v != 0,
            Value::Float(v) => panic!("expected bool value, found float {v}"),
        }
    }

    /// Bit-encodes into a `u64` cell for atomic storage.
    pub fn to_bits(self, ty: Type) -> u64 {
        match ty {
            Type::Float => self.as_float().to_bits(),
            Type::Bool => self.as_bool() as u64,
            _ => self.as_int() as u64,
        }
    }

    /// Decodes from a `u64` cell.
    pub fn from_bits(bits: u64, ty: Type) -> Value {
        match ty {
            Type::Float => Value::Float(f64::from_bits(bits)),
            Type::Bool => Value::Bool(bits != 0),
            _ => Value::Int(bits as i64),
        }
    }

    /// Applies a binary operator. Mixed int/float promotes to float.
    ///
    /// # Panics
    ///
    /// Panics on division/modulo by zero for integers (as C++ would trap),
    /// and on boolean operands to arithmetic operators.
    pub fn bin(op: BinOp, a: Value, b: Value) -> Value {
        use BinOp::*;
        let both_int = matches!(a, Value::Int(_) | Value::Bool(_))
            && matches!(b, Value::Int(_) | Value::Bool(_));
        match op {
            And => Value::Bool(a.as_bool() && b.as_bool()),
            Or => Value::Bool(a.as_bool() || b.as_bool()),
            Eq | Ne | Lt | Le | Gt | Ge => {
                let r = if both_int {
                    let (x, y) = (a.as_int(), b.as_int());
                    match op {
                        Eq => x == y,
                        Ne => x != y,
                        Lt => x < y,
                        Le => x <= y,
                        Gt => x > y,
                        Ge => x >= y,
                        _ => unreachable!(),
                    }
                } else {
                    let (x, y) = (a.as_float(), b.as_float());
                    match op {
                        Eq => x == y,
                        Ne => x != y,
                        Lt => x < y,
                        Le => x <= y,
                        Gt => x > y,
                        Ge => x >= y,
                        _ => unreachable!(),
                    }
                };
                Value::Bool(r)
            }
            Add | Sub | Mul | Div | Mod => {
                if both_int {
                    let (x, y) = (a.as_int(), b.as_int());
                    Value::Int(match op {
                        Add => x.wrapping_add(y),
                        Sub => x.wrapping_sub(y),
                        Mul => x.wrapping_mul(y),
                        Div => x / y,
                        Mod => x % y,
                        _ => unreachable!(),
                    })
                } else {
                    let (x, y) = (a.as_float(), b.as_float());
                    Value::Float(match op {
                        Add => x + y,
                        Sub => x - y,
                        Mul => x * y,
                        Div => x / y,
                        Mod => x % y,
                        _ => unreachable!(),
                    })
                }
            }
        }
    }

    /// Applies a unary operator.
    pub fn un(op: UnOp, a: Value) -> Value {
        match op {
            UnOp::Neg => match a {
                Value::Float(v) => Value::Float(-v),
                other => Value::Int(-other.as_int()),
            },
            UnOp::Not => Value::Bool(!a.as_bool()),
            UnOp::ToFloat => Value::Float(a.as_float()),
            UnOp::ToInt => Value::Int(match a {
                Value::Float(v) => v as i64,
                other => other.as_int(),
            }),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_arithmetic() {
        assert_eq!(Value::bin(BinOp::Add, 2.into(), 3.into()), Value::Int(5));
        assert_eq!(Value::bin(BinOp::Mod, 7.into(), 4.into()), Value::Int(3));
    }

    #[test]
    fn mixed_promotes_to_float() {
        assert_eq!(
            Value::bin(BinOp::Mul, 2.into(), Value::Float(0.5)),
            Value::Float(1.0)
        );
    }

    #[test]
    fn comparisons() {
        assert_eq!(Value::bin(BinOp::Lt, 1.into(), 2.into()), Value::Bool(true));
        assert_eq!(
            Value::bin(BinOp::Eq, Value::Float(1.0), 1.into()),
            Value::Bool(true)
        );
    }

    #[test]
    fn bool_ops() {
        assert_eq!(
            Value::bin(BinOp::And, true.into(), false.into()),
            Value::Bool(false)
        );
        assert_eq!(Value::un(UnOp::Not, false.into()), Value::Bool(true));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::un(UnOp::ToFloat, 3.into()), Value::Float(3.0));
        assert_eq!(Value::un(UnOp::ToInt, Value::Float(3.9)), Value::Int(3));
    }

    #[test]
    fn bits_round_trip() {
        for (v, ty) in [
            (Value::Int(-7), Type::Int),
            (Value::Float(0.25), Type::Float),
            (Value::Bool(true), Type::Bool),
            (Value::Int(42), Type::Vertex),
        ] {
            assert_eq!(Value::from_bits(v.to_bits(ty), ty), v);
        }
    }

    #[test]
    fn zero_values() {
        assert_eq!(Value::zero_of(Type::Float), Value::Float(0.0));
        assert_eq!(Value::zero_of(Type::Vertex), Value::Int(0));
        assert_eq!(Value::zero_of(Type::Bool), Value::Bool(false));
    }

    #[test]
    #[should_panic(expected = "expected int")]
    fn float_does_not_silently_narrow() {
        let _ = Value::Float(1.5).as_int();
    }
}
