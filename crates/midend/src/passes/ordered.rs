//! Ordered-processing lowering (∆-stepping support).
//!
//! For every `EdgeSetIterator` marked [`keys::IS_ORDERED`] (produced by
//! `applyUpdatePriority`), this pass:
//!
//! * discovers which priority queue the apply UDF updates and records it in
//!   [`keys::QUEUE_UPDATED`] (Table II's `queue_updated` argument),
//! * copies the schedule's ∆ onto the queue declaration ("delta" metadata),
//! * marks the enclosing `while (pq.finished() == false)` loop with
//!   `is_ordered_loop` so backends can specialize it (e.g. Swarm converts
//!   the whole loop into timestamped tasks).

use ugc_graphir::ir::{ExprKind, Program, StmtKind};
use ugc_graphir::keys;
use ugc_graphir::types::Intrinsic;
use ugc_graphir::visit::{walk_all_exprs, walk_stmts, walk_stmts_mut};
use ugc_schedule::schedule_of;

use crate::MidendError;

/// Runs the pass. See the module docs.
///
/// # Errors
///
/// Returns an error when an ordered operator's UDF updates no queue.
pub fn run(prog: &mut Program) -> Result<(), MidendError> {
    // Collect (apply fn, schedule delta) per ordered iterator.
    let mut ordered_ops: Vec<(String, Option<i64>)> = Vec::new();
    walk_stmts(&prog.main, &mut |s| {
        if let StmtKind::EdgeSetIterator(d) = &s.kind {
            if s.meta.flag(keys::IS_ORDERED) {
                let delta = schedule_of(s).map(|r| r.representative().delta());
                ordered_ops.push((d.apply.clone(), delta));
            }
        }
    });

    for (apply, delta) in &ordered_ops {
        let queue = {
            let Some(f) = prog.function(apply) else {
                return Err(MidendError::new(format!(
                    "ordered operator applies unknown function `{apply}`"
                )));
            };
            let mut found: Option<String> = None;
            walk_stmts(&f.body, &mut |s| {
                if let StmtKind::UpdatePriority { queue, .. } = &s.kind {
                    found = Some(queue.clone());
                }
            });
            found.ok_or_else(|| {
                MidendError::new(format!(
                    "ordered operator's UDF `{apply}` never updates a priority queue"
                ))
            })?
        };
        // Attach QUEUE_UPDATED to the iterators applying this UDF.
        walk_stmts_mut(&mut prog.main, &mut |s| {
            if let StmtKind::EdgeSetIterator(d) = &s.kind {
                if s.meta.flag(keys::IS_ORDERED) && d.apply == *apply {
                    s.meta.set(keys::QUEUE_UPDATED, queue.clone());
                }
            }
        });
        // Record the schedule delta on the queue declaration.
        if let Some(q) = prog.queues.iter_mut().find(|q| q.name == queue) {
            q.meta.set("delta", delta.unwrap_or(1));
        }
    }

    // Mark ordered while-loops.
    walk_stmts_mut(&mut prog.main, &mut |s| {
        if let StmtKind::While { cond, .. } = &s.kind {
            let mut ordered = false;
            walk_all_exprs(
                std::slice::from_ref(&ugc_graphir::ir::Stmt::new(StmtKind::ExprStmt(
                    cond.clone(),
                ))),
                &mut |e| {
                    if let ExprKind::Intrinsic {
                        kind: Intrinsic::PrioQueueFinished,
                        ..
                    } = &e.kind
                    {
                        ordered = true;
                    }
                },
            );
            if ordered {
                s.meta.set("is_ordered_loop", true);
            }
        }
    });

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use ugc_graphir::visit::find_labeled;
    use ugc_schedule::{apply_schedule, DefaultSchedule, ScheduleRef, SimpleSchedule};

    const SSSP: &str = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex,int) = load("g");
const dist : vector{Vertex}(int) = 2147483647;
const start_vertex : Vertex;
const pq : priority_queue{Vertex}(int) = new priority_queue{Vertex}(int)(dist, start_vertex);
func relax(src : Vertex, dst : Vertex, weight : int)
    var nd : int = dist[src] + weight;
    pq.updatePriorityMin(dst, nd);
end
func main()
    dist[start_vertex] = 0;
    #s0# while (pq.finished() == false)
        var frontier : vertexset{Vertex} = pq.dequeue_ready_set();
        #s1# edges.from(frontier).applyUpdatePriority(relax);
        delete frontier;
    end
end
"#;

    fn lowered() -> Program {
        let ast = ugc_frontend::parse_and_check(SSSP).unwrap();
        lower(&ast).unwrap()
    }

    #[test]
    fn discovers_queue_and_marks_loop() {
        let mut p = lowered();
        run(&mut p).unwrap();
        let s1 = find_labeled(&p, "s1").unwrap();
        assert_eq!(s1.meta.get_str(keys::QUEUE_UPDATED), Some("pq"));
        let s0 = find_labeled(&p, "s0").unwrap();
        assert!(s0.meta.flag("is_ordered_loop"));
        assert_eq!(p.queue("pq").unwrap().meta.get_int("delta"), Some(1));
    }

    #[test]
    fn schedule_delta_copied_to_queue() {
        #[derive(Debug)]
        struct DeltaSched;
        impl SimpleSchedule for DeltaSched {
            fn delta(&self) -> i64 {
                8
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
        }
        let mut p = lowered();
        apply_schedule(&mut p, "s0:s1", ScheduleRef::simple(DeltaSched)).unwrap();
        run(&mut p).unwrap();
        assert_eq!(p.queue("pq").unwrap().meta.get_int("delta"), Some(8));
    }

    #[test]
    fn unordered_program_untouched() {
        let src = r#"
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex,Vertex) = load("g");
const r : vector{Vertex}(float) = 0.0;
func f(src : Vertex, dst : Vertex)
    r[dst] += 1.0;
end
func main()
    #s1# edges.apply(f);
end
"#;
        let ast = ugc_frontend::parse_and_check(src).unwrap();
        let mut p = lower(&ast).unwrap();
        run(&mut p).unwrap();
        let s1 = find_labeled(&p, "s1").unwrap();
        assert!(!s1.meta.contains(keys::QUEUE_UPDATED));
        // Default schedule attach still works after the pass.
        apply_schedule(&mut p, "s1", ScheduleRef::simple(DefaultSchedule)).unwrap();
    }
}
