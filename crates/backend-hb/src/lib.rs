//! The HammerBlade Manycore GraphVM (paper §III-C4).
//!
//! Produces kernel executions for the [`ugc_sim_hb`] manycore model,
//! implementing the paper's HammerBlade-specific optimizations:
//!
//! * **blocked access method**: work is formatted into blocks whose
//!   read-only per-vertex data is prefetched into the core's scratchpad in
//!   one pipelined burst, turning dependent DRAM stalls into bulk
//!   transfers (Table IX measures exactly this),
//! * **alignment-based partitioning**: vertices are split into `V/b` work
//!   blocks aligned to LLC lines, raising hit rates and reducing cache-line
//!   contention without spending scratchpad,
//! * **atomics via locks**: the atomics-insertion results from the shared
//!   compiler are honored by charging lock/unlock traffic per atomic
//!   (HammerBlade has no cheap global atomics for arbitrary reductions),
//! * a **host/device split**: sequential host code coordinates kernel
//!   phases (SPMD groups with barriers).
//!
//! The GraphVM also emits HammerBlade-flavored kernel C++ ([`emitter`]).

pub mod emitter;
pub mod executor;
pub mod schedule;
pub mod vm;

pub use executor::HbExecutor;
pub use schedule::{HbLoadBalance, HbSchedule, HbScheduleSpace};
pub use vm::{HbExecution, HbGraphVm};
