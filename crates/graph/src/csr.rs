//! Compressed sparse row adjacency and the [`Graph`] façade.

use std::fmt;
use std::sync::OnceLock;

use crate::{VertexId, Weight};

/// Compressed sparse row adjacency structure.
///
/// Stores, for each source vertex, a contiguous slice of neighbor ids and
/// (optionally) parallel edge weights. `offsets` has `num_vertices + 1`
/// entries; neighbors of `v` live at `targets[offsets[v]..offsets[v + 1]]`.
///
/// # Example
///
/// ```
/// use ugc_graph::Csr;
///
/// let csr = Csr::from_edges(3, &[(0, 1), (0, 2), (2, 0)]);
/// assert_eq!(csr.neighbors(0), &[1, 2]);
/// assert_eq!(csr.degree(1), 0);
/// assert_eq!(csr.num_edges(), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Csr {
    offsets: Vec<usize>,
    targets: Vec<VertexId>,
    weights: Option<Vec<Weight>>,
}

impl Csr {
    /// Builds a CSR from `(src, dst)` pairs. Neighbor lists are sorted.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= num_vertices`.
    pub fn from_edges(num_vertices: usize, edges: &[(VertexId, VertexId)]) -> Self {
        Self::from_weighted_iter(num_vertices, edges.iter().map(|&(s, d)| (s, d, 1)), false)
    }

    /// Builds a weighted CSR from `(src, dst, weight)` triples.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= num_vertices`.
    pub fn from_weighted_edges(
        num_vertices: usize,
        edges: &[(VertexId, VertexId, Weight)],
    ) -> Self {
        Self::from_weighted_iter(num_vertices, edges.iter().copied(), true)
    }

    fn from_weighted_iter(
        num_vertices: usize,
        edges: impl Iterator<Item = (VertexId, VertexId, Weight)> + Clone,
        weighted: bool,
    ) -> Self {
        let mut degrees = vec![0usize; num_vertices];
        let mut num_edges = 0usize;
        for (s, d, _) in edges.clone() {
            assert!(
                (s as usize) < num_vertices && (d as usize) < num_vertices,
                "edge ({s}, {d}) out of bounds for {num_vertices} vertices"
            );
            degrees[s as usize] += 1;
            num_edges += 1;
        }
        let mut offsets = Vec::with_capacity(num_vertices + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets[..num_vertices].to_vec();
        let mut targets = vec![0 as VertexId; num_edges];
        let mut weights = if weighted {
            vec![0; num_edges]
        } else {
            Vec::new()
        };
        for (s, d, w) in edges {
            let at = cursor[s as usize];
            targets[at] = d;
            if weighted {
                weights[at] = w;
            }
            cursor[s as usize] += 1;
        }
        // Sort each neighbor slice (with weights kept parallel).
        for v in 0..num_vertices {
            let (lo, hi) = (offsets[v], offsets[v + 1]);
            if weighted {
                let mut pairs: Vec<(VertexId, Weight)> = targets[lo..hi]
                    .iter()
                    .copied()
                    .zip(weights[lo..hi].iter().copied())
                    .collect();
                pairs.sort_unstable();
                for (i, (t, w)) in pairs.into_iter().enumerate() {
                    targets[lo + i] = t;
                    weights[lo + i] = w;
                }
            } else {
                targets[lo..hi].sort_unstable();
            }
        }
        Csr {
            offsets,
            targets,
            weights: if weighted { Some(weights) } else { None },
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (directed) edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Neighbor slice of `v`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Size of the sorted-merge intersection of the neighbor lists of `a`
    /// and `b`. Duplicate entries (multi-edges) pair up positionally, so
    /// the count is deterministic for any CSR. This is the single shared
    /// definition of "common neighbors" used by both the triangle-counting
    /// runtime intrinsic and the sequential reference.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of bounds.
    pub fn intersect_count(&self, a: VertexId, b: VertexId) -> usize {
        let (na, nb) = (self.neighbors(a), self.neighbors(b));
        let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
        while i < na.len() && j < nb.len() {
            match na[i].cmp(&nb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// Weight slice parallel to [`Csr::neighbors`], or `None` if unweighted.
    pub fn neighbor_weights(&self, v: VertexId) -> Option<&[Weight]> {
        self.weights
            .as_ref()
            .map(|w| &w[self.offsets[v as usize]..self.offsets[v as usize + 1]])
    }

    /// Offset of the first edge of `v` in the flat edge arrays.
    pub fn edge_offset(&self, v: VertexId) -> usize {
        self.offsets[v as usize]
    }

    /// The full offsets array (`num_vertices + 1` entries).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The flat targets array (one entry per edge).
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// The flat weights array, if weighted.
    pub fn weights(&self) -> Option<&[Weight]> {
        self.weights.as_deref()
    }

    /// Whether edges carry weights.
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Weight of the `i`-th edge in flat order; `1` if unweighted.
    pub fn edge_weight_at(&self, i: usize) -> Weight {
        self.weights.as_ref().map_or(1, |w| w[i])
    }

    /// Heap bytes held by the flat arrays (offsets + targets + weights).
    /// Element counts × element sizes; capacity slack is not counted —
    /// builders shrink-to-fit by construction.
    pub fn resident_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.targets.len() * std::mem::size_of::<VertexId>()
            + self
                .weights
                .as_ref()
                .map_or(0, |w| w.len() * std::mem::size_of::<Weight>())
    }

    /// The reverse graph: every edge `(s, d)` becomes `(d, s)`.
    pub fn transpose(&self) -> Csr {
        let n = self.num_vertices();
        let weighted = self.is_weighted();
        let iter = TransposeIter {
            csr: self,
            v: 0,
            i: 0,
        };
        Csr::from_weighted_iter(n, iter, weighted)
    }

    /// Iterates over all edges as `(src, dst, weight)` (weight 1 if
    /// unweighted) in flat CSR order.
    pub fn iter_edges(&self) -> impl Iterator<Item = (VertexId, VertexId, Weight)> + '_ {
        (0..self.num_vertices() as VertexId).flat_map(move |v| {
            let lo = self.offsets[v as usize];
            self.neighbors(v)
                .iter()
                .enumerate()
                .map(move |(i, &d)| (v, d, self.edge_weight_at(lo + i)))
        })
    }
}

#[derive(Clone)]
struct TransposeIter<'a> {
    csr: &'a Csr,
    v: usize,
    i: usize,
}

impl Iterator for TransposeIter<'_> {
    type Item = (VertexId, VertexId, Weight);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.v >= self.csr.num_vertices() {
                return None;
            }
            let (lo, hi) = (self.csr.offsets[self.v], self.csr.offsets[self.v + 1]);
            if lo + self.i < hi {
                let at = lo + self.i;
                let d = self.csr.targets[at];
                let w = self.csr.edge_weight_at(at);
                self.i += 1;
                return Some((d, self.v as VertexId, w));
            }
            self.v += 1;
            self.i = 0;
        }
    }
}

impl fmt::Debug for Csr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Csr")
            .field("num_vertices", &self.num_vertices())
            .field("num_edges", &self.num_edges())
            .field("weighted", &self.is_weighted())
            .finish()
    }
}

/// A directed graph in CSR form with a lazily materialized transpose.
///
/// Push-direction traversals read out-edges; pull-direction traversals read
/// in-edges, which are materialized on first use and cached.
///
/// # Example
///
/// ```
/// use ugc_graph::Graph;
///
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
/// assert_eq!(g.out_neighbors(0), &[1]);
/// assert_eq!(g.in_neighbors(2), &[1]);
/// ```
#[derive(Debug, Default)]
pub struct Graph {
    out: Csr,
    inn: OnceLock<Csr>,
}

impl Clone for Graph {
    fn clone(&self) -> Self {
        let inn = OnceLock::new();
        if let Some(i) = self.inn.get() {
            let _ = inn.set(i.clone());
        }
        Graph {
            out: self.out.clone(),
            inn,
        }
    }
}

impl Graph {
    /// Wraps an out-edge CSR as a graph.
    pub fn new(out: Csr) -> Self {
        Graph {
            out,
            inn: OnceLock::new(),
        }
    }

    /// Builds a graph from directed `(src, dst)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= num_vertices`.
    pub fn from_edges(num_vertices: usize, edges: &[(VertexId, VertexId)]) -> Self {
        Graph::new(Csr::from_edges(num_vertices, edges))
    }

    /// Builds a weighted graph from `(src, dst, weight)` triples.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= num_vertices`.
    pub fn from_weighted_edges(
        num_vertices: usize,
        edges: &[(VertexId, VertexId, Weight)],
    ) -> Self {
        Graph::new(Csr::from_weighted_edges(num_vertices, edges))
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.out.num_vertices()
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.out.num_edges()
    }

    /// Whether edges carry weights.
    pub fn is_weighted(&self) -> bool {
        self.out.is_weighted()
    }

    /// The out-edge CSR.
    pub fn out_csr(&self) -> &Csr {
        &self.out
    }

    /// The in-edge CSR (transpose), materialized on first call.
    pub fn in_csr(&self) -> &Csr {
        self.inn.get_or_init(|| self.out.transpose())
    }

    /// The worst-case heap bytes this graph can come to hold: out-CSR
    /// plus its (same-sized) transpose, whether or not the transpose is
    /// materialized yet. Cache byte-accounting must use the *eventual*
    /// footprint — the transpose materializes lazily behind a shared
    /// `Arc<Graph>`, long after admission decisions were made.
    pub fn resident_bytes(&self) -> usize {
        2 * self.out.resident_bytes()
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out.degree(v)
    }

    /// In-degree of `v` (materializes the transpose on first call).
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_csr().degree(v)
    }

    /// Out-neighbors of `v`, sorted.
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.out.neighbors(v)
    }

    /// In-neighbors of `v`, sorted (materializes the transpose).
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.in_csr().neighbors(v)
    }

    /// Number of common out-neighbors of `a` and `b` — see
    /// [`Csr::intersect_count`].
    pub fn intersect_count(&self, a: VertexId, b: VertexId) -> usize {
        self.out.intersect_count(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Csr {
        Csr::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn csr_basic_shape() {
        let c = diamond();
        assert_eq!(c.num_vertices(), 4);
        assert_eq!(c.num_edges(), 4);
        assert_eq!(c.neighbors(0), &[1, 2]);
        assert_eq!(c.neighbors(3), &[] as &[VertexId]);
        assert_eq!(c.degree(0), 2);
        assert_eq!(c.offsets(), &[0, 2, 3, 4, 4]);
    }

    #[test]
    fn csr_sorts_neighbors() {
        let c = Csr::from_edges(3, &[(0, 2), (0, 1)]);
        assert_eq!(c.neighbors(0), &[1, 2]);
    }

    #[test]
    fn intersect_count_merges_sorted_lists() {
        let c = diamond();
        // N(0) = {1,2}, N(1) = {3}: disjoint.
        assert_eq!(c.intersect_count(0, 1), 0);
        // N(1) = {3}, N(2) = {3}: one common neighbor.
        assert_eq!(c.intersect_count(1, 2), 1);
        assert_eq!(c.intersect_count(1, 1), 1);
    }

    #[test]
    fn intersect_count_pairs_up_duplicates() {
        // Multi-edges: N(0) = [2,2], N(1) = [2,2,3].
        let c = Csr::from_edges(4, &[(0, 2), (0, 2), (1, 2), (1, 2), (1, 3)]);
        assert_eq!(c.intersect_count(0, 1), 2);
    }

    #[test]
    fn csr_weighted_keeps_weight_parallel() {
        let c = Csr::from_weighted_edges(3, &[(0, 2, 7), (0, 1, 3)]);
        assert_eq!(c.neighbors(0), &[1, 2]);
        assert_eq!(c.neighbor_weights(0).unwrap(), &[3, 7]);
        assert_eq!(c.edge_weight_at(0), 3);
        assert_eq!(c.edge_weight_at(1), 7);
    }

    #[test]
    fn csr_unweighted_weight_is_one() {
        let c = diamond();
        assert!(!c.is_weighted());
        assert_eq!(c.edge_weight_at(2), 1);
        assert!(c.neighbor_weights(0).is_none());
    }

    #[test]
    fn transpose_reverses_edges() {
        let c = diamond();
        let t = c.transpose();
        assert_eq!(t.neighbors(3), &[1, 2]);
        assert_eq!(t.neighbors(0), &[] as &[VertexId]);
        assert_eq!(t.num_edges(), c.num_edges());
    }

    #[test]
    fn transpose_twice_is_identity() {
        let c = diamond();
        assert_eq!(c.transpose().transpose(), c);
    }

    #[test]
    fn transpose_keeps_weights() {
        let c = Csr::from_weighted_edges(3, &[(0, 1, 5), (2, 1, 9)]);
        let t = c.transpose();
        assert_eq!(t.neighbors(1), &[0, 2]);
        assert_eq!(t.neighbor_weights(1).unwrap(), &[5, 9]);
    }

    #[test]
    fn iter_edges_yields_all() {
        let c = diamond();
        let edges: Vec<_> = c.iter_edges().collect();
        assert_eq!(edges, vec![(0, 1, 1), (0, 2, 1), (1, 3, 1), (2, 3, 1)]);
    }

    #[test]
    fn graph_lazy_transpose() {
        let g = Graph::from_edges(3, &[(0, 1), (2, 1)]);
        assert_eq!(g.in_neighbors(1), &[0, 2]);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.out_degree(0), 1);
    }

    #[test]
    fn graph_clone_preserves_transpose() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let _ = g.in_csr();
        let g2 = g.clone();
        assert_eq!(g2.in_neighbors(1), &[0]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_edge_panics() {
        let _ = Csr::from_edges(2, &[(0, 2)]);
    }

    #[test]
    fn self_loops_and_parallel_edges_preserved() {
        let c = Csr::from_edges(2, &[(0, 0), (0, 1), (0, 1)]);
        assert_eq!(c.neighbors(0), &[0, 1, 1]);
        assert_eq!(c.num_edges(), 3);
    }
}
