//! A tour of the code each GraphVM generates for the same BFS source:
//! OpenMP-flavored C++, CUDA, T4 C++ (Swarm), and HammerBlade kernel C++.
//!
//! ```sh
//! cargo run --release --example codegen_tour
//! ```

use ugc::{Algorithm, Compiler, Target};
use ugc_backend_gpu::GpuSchedule;
use ugc_backend_swarm::{Frontiers, SwarmSchedule, TaskGranularity};
use ugc_schedule::ScheduleRef;

fn banner(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("== {title}");
    println!("{}", "=".repeat(72));
}

fn main() {
    banner("CPU GraphVM (OpenMP C++)");
    let cpp = Compiler::new(Algorithm::Bfs).emit(Target::Cpu).unwrap();
    println!("{cpp}");

    banner("GPU GraphVM (CUDA, kernel fusion requested)");
    let cuda = {
        let mut c = Compiler::new(Algorithm::Bfs);
        c.schedule(
            Algorithm::Bfs.schedule_path(),
            ScheduleRef::simple(GpuSchedule::new().with_kernel_fusion(true)),
        );
        c.emit(Target::Gpu).unwrap()
    };
    println!("{cuda}");

    banner("Swarm GraphVM (T4 C++, vertex-set-to-tasks + hints)");
    let t4 = {
        let mut c = Compiler::new(Algorithm::Bfs);
        c.schedule(
            Algorithm::Bfs.schedule_path(),
            ScheduleRef::simple(
                SwarmSchedule::new()
                    .with_frontiers(Frontiers::VertexsetToTasks)
                    .with_task_granularity(TaskGranularity::FineGrained),
            ),
        );
        c.emit(Target::Swarm).unwrap()
    };
    println!("{t4}");

    banner("HammerBlade GraphVM (manycore kernel C++)");
    let hb = Compiler::new(Algorithm::Bfs)
        .emit(Target::HammerBlade)
        .unwrap();
    println!("{hb}");
}
