//! Coordinate-format edge lists.

use crate::{Csr, Graph, VertexId, Weight};

/// An edge list in coordinate (COO) format — the interchange representation
/// between loaders, generators and [`Csr`] construction.
///
/// # Example
///
/// ```
/// use ugc_graph::EdgeList;
///
/// let mut el = EdgeList::new(3);
/// el.push(0, 1);
/// el.push_weighted(1, 2, 4);
/// assert_eq!(el.len(), 2);
/// let g = el.into_graph();
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeList {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId, Weight)>,
    weighted: bool,
}

impl EdgeList {
    /// Creates an empty edge list over `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        EdgeList {
            num_vertices,
            edges: Vec::new(),
            weighted: false,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges collected so far.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges have been collected.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Whether any edge was added with an explicit weight.
    pub fn is_weighted(&self) -> bool {
        self.weighted
    }

    /// Adds an unweighted edge (weight defaults to 1).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= num_vertices`.
    pub fn push(&mut self, src: VertexId, dst: VertexId) {
        self.check(src, dst);
        self.edges.push((src, dst, 1));
    }

    /// Adds a weighted edge and marks the list as weighted.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= num_vertices`.
    pub fn push_weighted(&mut self, src: VertexId, dst: VertexId, w: Weight) {
        self.check(src, dst);
        self.weighted = true;
        self.edges.push((src, dst, w));
    }

    fn check(&self, src: VertexId, dst: VertexId) {
        assert!(
            (src as usize) < self.num_vertices && (dst as usize) < self.num_vertices,
            "edge ({src}, {dst}) out of bounds for {} vertices",
            self.num_vertices
        );
    }

    /// Adds the reverse of every present edge, making the list symmetric.
    pub fn symmetrize(&mut self) {
        let rev: Vec<_> = self.edges.iter().map(|&(s, d, w)| (d, s, w)).collect();
        self.edges.extend(rev);
    }

    /// Removes duplicate `(src, dst)` pairs (keeping the smallest weight)
    /// and self-loops.
    pub fn dedup_and_strip_loops(&mut self) {
        self.edges.retain(|&(s, d, _)| s != d);
        self.edges.sort_unstable_by_key(|&(s, d, w)| (s, d, w));
        self.edges.dedup_by_key(|&mut (s, d, _)| (s, d));
    }

    /// View of the collected `(src, dst, weight)` triples.
    pub fn edges(&self) -> &[(VertexId, VertexId, Weight)] {
        &self.edges
    }

    /// Converts into a CSR, respecting weightedness.
    pub fn into_csr(self) -> Csr {
        if self.weighted {
            Csr::from_weighted_edges(self.num_vertices, &self.edges)
        } else {
            let pairs: Vec<_> = self.edges.iter().map(|&(s, d, _)| (s, d)).collect();
            Csr::from_edges(self.num_vertices, &pairs)
        }
    }

    /// Converts into a [`Graph`].
    pub fn into_graph(self) -> Graph {
        Graph::new(self.into_csr())
    }
}

impl Extend<(VertexId, VertexId)> for EdgeList {
    fn extend<T: IntoIterator<Item = (VertexId, VertexId)>>(&mut self, iter: T) {
        for (s, d) in iter {
            self.push(s, d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetrize_doubles_edges() {
        let mut el = EdgeList::new(3);
        el.push(0, 1);
        el.push(1, 2);
        el.symmetrize();
        assert_eq!(el.len(), 4);
        let g = el.into_graph();
        assert_eq!(g.out_neighbors(1), &[0, 2]);
    }

    #[test]
    fn dedup_removes_duplicates_and_loops() {
        let mut el = EdgeList::new(3);
        el.push(0, 1);
        el.push(0, 1);
        el.push(1, 1);
        el.push(2, 0);
        el.dedup_and_strip_loops();
        assert_eq!(el.len(), 2);
        assert_eq!(el.edges(), &[(0, 1, 1), (2, 0, 1)]);
    }

    #[test]
    fn dedup_keeps_smallest_weight() {
        let mut el = EdgeList::new(2);
        el.push_weighted(0, 1, 9);
        el.push_weighted(0, 1, 3);
        el.dedup_and_strip_loops();
        assert_eq!(el.edges(), &[(0, 1, 3)]);
    }

    #[test]
    fn weighted_round_trip() {
        let mut el = EdgeList::new(2);
        el.push_weighted(0, 1, 5);
        assert!(el.is_weighted());
        let g = el.into_graph();
        assert!(g.is_weighted());
        assert_eq!(g.out_csr().neighbor_weights(0).unwrap(), &[5]);
    }

    #[test]
    fn extend_from_pairs() {
        let mut el = EdgeList::new(4);
        el.extend(vec![(0, 1), (2, 3)]);
        assert_eq!(el.len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_out_of_bounds_panics() {
        let mut el = EdgeList::new(1);
        el.push(0, 1);
    }
}
